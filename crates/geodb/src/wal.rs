//! Write-ahead log, checkpoints and crash recovery for [`DbStore`].
//!
//! The store's epoch publish (`crates/geodb/src/store.rs`) is purely
//! in-memory: correct under concurrency, gone on crash. This module adds
//! the durability half of the write path:
//!
//! * **WAL** — an append-only file of length-prefixed, checksummed
//!   frames. Each frame carries one [`WalRecord::Commit`]-shaped record:
//!   the committed epoch, the OID allocator position, the event batch
//!   the active mechanism saw, and the *redo operations* (post-image
//!   upserts / deletes / schema registrations) that rebuild the commit
//!   on replay. Events alone are not enough — a `DbEvent` names the
//!   touched object but not its values, so the writer captures final
//!   images from its partition mirror at commit time.
//! * **Checkpoints** — the existing `snapshot.rs` JSON serializer,
//!   written atomically (`.tmp` + rename) next to a small meta document
//!   recording the checkpoint epoch and OID allocator. A checkpoint
//!   truncates the log: every record it covers is dropped.
//! * **Recovery** — load the newest checkpoint, replay the WAL tail in
//!   epoch order, truncate any torn or corrupt tail frame (crash while
//!   appending) instead of failing, and resume a [`DbStore`] at the
//!   last durable epoch. Replay is idempotent (upserts write final
//!   images, deletes tolerate absence, duplicate schema registrations
//!   are skipped), so the one benign crash window — between the
//!   checkpoint document rename and the meta rename — only causes a
//!   harmless double-replay, never loss.
//!
//! Crash points are modelled with `faultsim` failpoints (`wal.append`,
//! `wal.fsync`, `db.publish`); see those arms in [`Wal::append_frame`]
//! and [`Wal::sync`] for the exact on-disk state each one leaves behind.

use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::db::Database;
use crate::epoch::Epoch;
use crate::error::{GeoDbError, Result, SnapshotCause};
use crate::instance::{Instance, Oid};
use crate::query::DbEvent;
use crate::schema::SchemaDef;
use crate::snapshot;
use crate::store::DbStore;
use crate::walcodec;

/// Log file name inside a WAL directory.
pub const WAL_FILE: &str = "wal.log";
/// Checkpoint snapshot document (the `snapshot.rs` format, unchanged).
pub const CHECKPOINT_FILE: &str = "checkpoint.json";
/// Checkpoint sidecar: `{version, epoch, next_oid}`.
pub const CHECKPOINT_META_FILE: &str = "checkpoint.meta.json";

const WAL_MAGIC: &[u8; 8] = b"GEODBWAL";
/// Current on-disk version. Version 1 logs held JSON frames only;
/// version 2 adds binary frames (`walcodec`). Frames are sniffed per
/// record, so readers accept both versions and a single log may mix
/// formats (e.g. a v1 log reopened by a binary-writing store).
const WAL_VERSION: u32 = 2;
/// Oldest version this build still reads.
const WAL_MIN_VERSION: u32 = 1;
/// Magic + version.
const FILE_HEADER_LEN: u64 = 12;
/// Payload length (u32 le) + payload checksum (u64 le).
const FRAME_HEADER_LEN: usize = 12;
/// A length prefix beyond this is tail corruption, not an allocation
/// request.
const MAX_PAYLOAD: u32 = 256 * 1024 * 1024;

/// FNV-1a 64 — dependency-free, stable across platforms, strong enough
/// to catch torn writes and bit rot in a length-prefixed frame.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Record format
// ---------------------------------------------------------------------------

/// One redo operation inside a commit record. Ops are *post-images*:
/// replay writes the final state of each touched object, making replay
/// idempotent regardless of how many intra-write mutations produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalOp {
    /// A schema registered during the write.
    Schema { def: SchemaDef },
    /// Final image of an object that exists after the write.
    Upsert { schema: String, instance: Instance },
    /// An object that no longer exists after the write.
    Delete { oid: Oid },
}

/// One committed write, as framed into the log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// Epoch this commit published (or would have published).
    pub epoch: Epoch,
    /// OID allocator position *after* the write — snapshots alone can't
    /// restore it (delete the highest OID, crash, and the counter would
    /// rewind).
    pub next_oid: u64,
    /// The event batch the active mechanism observed.
    pub events: Vec<DbEvent>,
    /// Redo operations rebuilding the commit on replay.
    pub ops: Vec<WalOp>,
}

/// Which encoding newly appended records use. Readers never consult
/// this — each frame's payload is sniffed by its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalFormat {
    /// Human-greppable JSON, the version-1 format.
    Json,
    /// Compact binary frames (`walcodec`): varint integers and an
    /// interned string table, typically 2-4x smaller than JSON.
    #[default]
    Binary,
}

/// Encode a record into a frame payload (JSON bytes).
pub fn encode_payload(rec: &WalRecord) -> Result<Vec<u8>> {
    serde_json::to_string(rec)
        .map(String::into_bytes)
        .map_err(|e| GeoDbError::Storage(format!("encode wal record: {e}")))
}

/// Encode a record into a frame payload in the requested format.
pub fn encode_payload_with(rec: &WalRecord, format: WalFormat) -> Result<Vec<u8>> {
    match format {
        WalFormat::Json => encode_payload(rec),
        WalFormat::Binary => Ok(walcodec::encode_record(rec)),
    }
}

/// Decode one frame payload, sniffing the format from its first byte:
/// `0x01` is a binary frame, anything else is parsed as JSON. `None`
/// means the payload is malformed in either format — the scan treats
/// that as a torn tail.
pub fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    if payload.first() == Some(&walcodec::BINARY_MARKER) {
        walcodec::decode_record(payload)
    } else {
        std::str::from_utf8(payload)
            .ok()
            .and_then(|t| serde_json::from_str::<WalRecord>(t).ok())
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CheckpointMeta {
    pub(crate) version: u32,
    pub(crate) epoch: Epoch,
    pub(crate) next_oid: u64,
}

/// Load and version-check the checkpoint sidecar of a WAL directory
/// (recovery and replica promotion both start here).
pub(crate) fn load_checkpoint_meta(dir: &Path) -> Result<CheckpointMeta> {
    let meta_path = dir.join(CHECKPOINT_META_FILE);
    let meta_json = fs::read_to_string(&meta_path).map_err(|e| {
        GeoDbError::snapshot_load(
            format!("read {meta_path:?}"),
            SnapshotCause::Io(e.to_string()),
        )
    })?;
    let meta: CheckpointMeta = serde_json::from_str(&meta_json).map_err(|e| {
        GeoDbError::snapshot_load(
            format!("parse {meta_path:?}"),
            SnapshotCause::Json(e.to_string()),
        )
    })?;
    if !(WAL_MIN_VERSION..=WAL_VERSION).contains(&meta.version) {
        return Err(GeoDbError::snapshot_load(
            format!("parse {meta_path:?}"),
            SnapshotCause::Format(format!(
                "unsupported checkpoint version {} (expected {WAL_MIN_VERSION}..={WAL_VERSION})",
                meta.version
            )),
        ));
    }
    Ok(meta)
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Durability tuning for one WAL directory.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding `wal.log` + checkpoint files.
    pub dir: PathBuf,
    /// How long a group-commit leader waits for concurrent writers to
    /// join its batch before flushing. Zero flushes immediately; the
    /// leader only waits when other writers are already inside `write`.
    pub group_window: Duration,
    /// fsync on every group commit (disable only in benchmarks that
    /// factor the filesystem out).
    pub fsync: bool,
    /// Auto-checkpoint after this many appended records (0 = manual).
    pub checkpoint_every: u64,
    /// Encoding for newly appended records. Reading always sniffs per
    /// frame, so changing this mid-log is safe.
    pub record_format: WalFormat,
}

impl WalConfig {
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            group_window: Duration::ZERO,
            fsync: true,
            checkpoint_every: 0,
            record_format: WalFormat::default(),
        }
    }

    pub fn group_window(mut self, w: Duration) -> WalConfig {
        self.group_window = w;
        self
    }

    pub fn fsync(mut self, on: bool) -> WalConfig {
        self.fsync = on;
        self
    }

    pub fn checkpoint_every(mut self, n: u64) -> WalConfig {
        self.checkpoint_every = n;
        self
    }

    pub fn record_format(mut self, f: WalFormat) -> WalConfig {
        self.record_format = f;
        self
    }
}

// ---------------------------------------------------------------------------
// Wal — the open log
// ---------------------------------------------------------------------------

/// Counters and positions of an attached WAL, for `:wal` and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalStatus {
    pub path: PathBuf,
    /// Records appended since open (not counting replayed history).
    pub records: u64,
    /// Sum of encoded payload sizes appended since open (frame headers
    /// excluded) — the number the JSON-vs-binary comparison reads.
    pub payload_bytes: u64,
    /// Logical file length (end of the last complete frame).
    pub bytes: u64,
    /// Durable prefix length (confirmed by fsync).
    pub synced_bytes: u64,
    pub fsyncs: u64,
    /// Group commits flushed and the largest batch seen.
    pub groups: u64,
    pub max_group: u64,
    pub checkpoint_epoch: Epoch,
}

/// An open, append-only write-ahead log.
pub struct Wal {
    file: File,
    path: PathBuf,
    dir: PathBuf,
    config: WalConfig,
    len: u64,
    synced_len: u64,
    records: u64,
    payload_bytes: u64,
    records_since_checkpoint: u64,
    fsyncs: u64,
    groups: u64,
    max_group: u64,
    checkpoint_epoch: Epoch,
}

fn io_error(op: &str, path: &Path, e: &std::io::Error) -> GeoDbError {
    GeoDbError::Storage(format!("{op} {path:?}: {e}"))
}

fn write_file_header(path: &Path) -> Result<()> {
    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)
        .map_err(|e| io_error("create", path, &e))?;
    f.write_all(WAL_MAGIC)
        .and_then(|()| f.write_all(&WAL_VERSION.to_le_bytes()))
        .and_then(|()| f.sync_data())
        .map_err(|e| io_error("init", path, &e))
}

/// Write `bytes` to `path` atomically (`.tmp` + fsync + rename).
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp).map_err(|e| io_error("create", &tmp, &e))?;
    f.write_all(bytes)
        .and_then(|()| f.sync_data())
        .map_err(|e| io_error("write", &tmp, &e))?;
    fs::rename(&tmp, path).map_err(|e| io_error("rename", &tmp, &e))
}

impl Wal {
    /// Create a fresh (empty) log in `config.dir`, creating the
    /// directory if needed. Any existing log is truncated — callers
    /// wanting recovery go through [`recover`] / [`open`] instead.
    pub fn create(config: WalConfig) -> Result<Wal> {
        fs::create_dir_all(&config.dir).map_err(|e| io_error("mkdir", &config.dir, &e))?;
        let path = config.dir.join(WAL_FILE);
        write_file_header(&path)?;
        Self::open_at(config, FILE_HEADER_LEN, Epoch::ZERO)
    }

    /// Open an existing, already-validated log for appending at
    /// `valid_len` (recovery truncates to that length first).
    fn open_at(config: WalConfig, valid_len: u64, checkpoint_epoch: Epoch) -> Result<Wal> {
        let path = config.dir.join(WAL_FILE);
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_error("open", &path, &e))?;
        let dir = config.dir.clone();
        Ok(Wal {
            file,
            path,
            dir,
            config,
            len: valid_len,
            synced_len: valid_len,
            records: 0,
            payload_bytes: 0,
            records_since_checkpoint: 0,
            fsyncs: 0,
            groups: 0,
            max_group: 0,
            checkpoint_epoch,
        })
    }

    pub fn config(&self) -> &WalConfig {
        &self.config
    }

    /// Append one framed record. Does *not* sync — the group-commit
    /// leader calls [`Wal::sync`] once per batch.
    pub fn append_frame(&mut self, payload: &[u8]) -> Result<()> {
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&checksum(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        if let Err(f) = faultsim::fire("wal.append") {
            // Crash model: the write was cut mid-frame — half the frame
            // reached disk, the rest never will. Recovery must detect
            // and truncate this torn tail.
            let _ = self.file.write_all(&frame[..frame.len() / 2]);
            let _ = self.file.sync_data();
            return Err(GeoDbError::Storage(f.to_string()));
        }
        self.file
            .write_all(&frame)
            .map_err(|e| io_error("append", &self.path, &e))?;
        self.len += frame.len() as u64;
        self.records += 1;
        self.payload_bytes += payload.len() as u64;
        self.records_since_checkpoint += 1;
        Ok(())
    }

    /// Make everything appended so far durable.
    pub fn sync(&mut self) -> Result<()> {
        if let Err(f) = faultsim::fire("wal.fsync") {
            // Crash model: the process died before fsync — bytes
            // appended since the last sync never became durable. Drop
            // them so recovery sees exactly what a real crash would.
            let _ = self.file.set_len(self.synced_len);
            self.len = self.synced_len;
            return Err(GeoDbError::Storage(f.to_string()));
        }
        if self.config.fsync {
            self.file
                .sync_data()
                .map_err(|e| io_error("fsync", &self.path, &e))?;
        }
        self.synced_len = self.len;
        self.fsyncs += 1;
        Ok(())
    }

    /// Record one flushed group of `n` commits (status/metrics).
    pub fn note_group(&mut self, n: u64) {
        self.groups += 1;
        self.max_group = self.max_group.max(n);
    }

    /// Has `checkpoint_every` elapsed since the last checkpoint?
    pub fn should_checkpoint(&self) -> bool {
        self.config.checkpoint_every > 0
            && self.records_since_checkpoint >= self.config.checkpoint_every
    }

    /// Write a checkpoint (snapshot document + meta) and truncate the
    /// log — every record the checkpoint covers is dropped. The snapshot
    /// document renames *before* the meta: replay is idempotent, so a
    /// crash between the two renames causes harmless double-replay,
    /// never loss.
    pub fn checkpoint(&mut self, snapshot_json: &str, epoch: Epoch, next_oid: u64) -> Result<()> {
        let _span = obs::span("db.checkpoint");
        write_atomic(&self.dir.join(CHECKPOINT_FILE), snapshot_json.as_bytes())?;
        let meta = CheckpointMeta {
            version: WAL_VERSION,
            epoch,
            next_oid,
        };
        let meta_json = serde_json::to_string_pretty(&meta)
            .map_err(|e| GeoDbError::Storage(format!("encode checkpoint meta: {e}")))?;
        write_atomic(&self.dir.join(CHECKPOINT_META_FILE), meta_json.as_bytes())?;
        write_file_header(&self.path)?;
        self.file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| io_error("reopen", &self.path, &e))?;
        self.len = FILE_HEADER_LEN;
        self.synced_len = FILE_HEADER_LEN;
        self.checkpoint_epoch = epoch;
        self.records_since_checkpoint = 0;
        if obs::enabled() {
            obs::counter_add("db.wal_checkpoints", 1);
        }
        Ok(())
    }

    pub fn status(&self) -> WalStatus {
        WalStatus {
            path: self.path.clone(),
            records: self.records,
            payload_bytes: self.payload_bytes,
            bytes: self.len,
            synced_bytes: self.synced_len,
            fsyncs: self.fsyncs,
            groups: self.groups,
            max_group: self.max_group,
            checkpoint_epoch: self.checkpoint_epoch,
        }
    }
}

// ---------------------------------------------------------------------------
// Reading + replay
// ---------------------------------------------------------------------------

/// Result of scanning a log file: every intact record plus where (and
/// why) the valid prefix ends.
#[derive(Debug)]
pub struct WalReadReport {
    pub records: Vec<WalRecord>,
    /// Length of the valid prefix (file header + complete frames). Less
    /// than the file header length means the header itself is torn.
    pub valid_len: u64,
    /// Bytes past the valid prefix (torn/corrupt tail to truncate).
    pub truncated_bytes: u64,
    /// Why the scan stopped early, if it did.
    pub torn: Option<String>,
}

/// Scan a log file. Corruption *in the tail* (short frame, checksum or
/// parse failure) terminates the scan but is not an error — the caller
/// truncates. A well-formed header with the wrong magic or version *is*
/// an error: that file is not ours to truncate.
pub fn read_wal(path: &Path) -> Result<WalReadReport> {
    let bytes = fs::read(path).map_err(|e| {
        GeoDbError::snapshot_load(format!("read {path:?}"), SnapshotCause::Io(e.to_string()))
    })?;
    if bytes.len() < FILE_HEADER_LEN as usize {
        return Ok(WalReadReport {
            records: Vec::new(),
            valid_len: 0,
            truncated_bytes: bytes.len() as u64,
            torn: Some("torn file header".into()),
        });
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(GeoDbError::snapshot_load(
            format!("read {path:?}"),
            SnapshotCause::Format("bad WAL magic".into()),
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if !(WAL_MIN_VERSION..=WAL_VERSION).contains(&version) {
        return Err(GeoDbError::snapshot_load(
            format!("read {path:?}"),
            SnapshotCause::Format(format!(
                "unsupported WAL version {version} (expected {WAL_MIN_VERSION}..={WAL_VERSION})"
            )),
        ));
    }
    let mut off = FILE_HEADER_LEN as usize;
    let mut records = Vec::new();
    let mut torn = None;
    while off < bytes.len() {
        if bytes.len() - off < FRAME_HEADER_LEN {
            torn = Some("short frame header".into());
            break;
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            torn = Some(format!("implausible frame length {len}"));
            break;
        }
        let sum = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().expect("8 bytes"));
        let start = off + FRAME_HEADER_LEN;
        if bytes.len() - start < len as usize {
            torn = Some("short frame payload".into());
            break;
        }
        let payload = &bytes[start..start + len as usize];
        if checksum(payload) != sum {
            torn = Some("frame checksum mismatch".into());
            break;
        }
        match decode_payload(payload) {
            Some(rec) => records.push(rec),
            None => {
                torn = Some("frame payload does not parse".into());
                break;
            }
        }
        off = start + len as usize;
    }
    Ok(WalReadReport {
        records,
        valid_len: off as u64,
        truncated_bytes: (bytes.len() - off) as u64,
        torn,
    })
}

/// Replay one record's redo operations onto a database, then restore
/// its OID allocator position. Idempotent: re-applying a record the
/// state already reflects is a no-op.
pub fn apply_record(db: &mut Database, rec: &WalRecord) -> Result<()> {
    for op in &rec.ops {
        apply_op(db, op)?;
    }
    db.set_next_oid(rec.next_oid);
    Ok(())
}

fn apply_op(db: &mut Database, op: &WalOp) -> Result<()> {
    match op {
        WalOp::Schema { def } => match db.register_schema(def.clone()) {
            // Double replay after a checkpoint crash window.
            Err(GeoDbError::Duplicate(_)) => Ok(()),
            r => r,
        },
        WalOp::Upsert { schema, instance } => {
            // Replace wholesale: `update` merges listed attributes, but
            // the post-image is authoritative (an optional attribute
            // absent from it must end up absent).
            if db.locate(instance.oid).is_some() {
                db.delete(instance.oid)?;
            }
            db.restore_instance(schema, instance.clone())
        }
        WalOp::Delete { oid } => {
            if db.locate(*oid).is_some() {
                db.delete(*oid)
            } else {
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// What a recovery did, for logs, metrics and assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    pub checkpoint_epoch: Epoch,
    pub replayed_records: u64,
    /// The epoch the store resumes at: the last durable commit.
    pub recovered_epoch: Epoch,
    /// Torn/corrupt tail bytes truncated from the log.
    pub truncated_bytes: u64,
    /// Why the tail was cut, when it was.
    pub torn: Option<String>,
    pub next_oid: u64,
}

/// Outcome of [`replay_tail`]: how far the state advanced, what was
/// cut, and the log reopened for appending.
pub(crate) struct TailReplay {
    /// Highest epoch applied (`after` if the tail held nothing newer).
    pub(crate) epoch: Epoch,
    pub(crate) replayed: u64,
    pub(crate) truncated_bytes: u64,
    pub(crate) torn: Option<String>,
    pub(crate) wal: Wal,
}

/// Replay every WAL record with epoch > `after` onto `db`, truncate any
/// torn or corrupt tail, and reopen the log for appending. This is the
/// shared tail machinery of crash recovery (`after` = checkpoint epoch)
/// and replica promotion (`after` = the replica's applied epoch, which
/// may be far past the checkpoint).
pub(crate) fn replay_tail(
    db: &mut Database,
    config: WalConfig,
    after: Epoch,
    checkpoint_epoch: Epoch,
) -> Result<TailReplay> {
    let dir = config.dir.clone();
    let mut epoch = after;
    let mut replayed = 0u64;
    let mut truncated = 0u64;
    let mut torn = None;
    let wal_path = dir.join(WAL_FILE);
    if wal_path.exists() {
        let report = read_wal(&wal_path)?;
        for rec in &report.records {
            // Records at or below `after` are already reflected in the
            // base state (checkpoint document or applied replica epoch —
            // the double-replay window); later ones rebuild the tail.
            if rec.epoch <= after {
                continue;
            }
            apply_record(db, rec)?;
            epoch = rec.epoch;
            replayed += 1;
        }
        truncated = report.truncated_bytes;
        torn = report.torn;
        if report.valid_len < FILE_HEADER_LEN {
            // The header itself was torn (crash during create).
            write_file_header(&wal_path)?;
        } else if truncated > 0 {
            let f = OpenOptions::new()
                .write(true)
                .open(&wal_path)
                .map_err(|e| io_error("open", &wal_path, &e))?;
            f.set_len(report.valid_len)
                .and_then(|()| f.sync_data())
                .map_err(|e| io_error("truncate", &wal_path, &e))?;
        }
    } else {
        // Crash right after a checkpoint truncated-and-not-yet-recreated
        // the log, or a checkpoint-only directory: start a fresh log.
        write_file_header(&wal_path)?;
    }
    db.drain_events();
    let valid_len = fs::metadata(&wal_path)
        .map(|m| m.len())
        .map_err(|e| io_error("stat", &wal_path, &e))?;
    let wal = Wal::open_at(config, valid_len, checkpoint_epoch)?;
    Ok(TailReplay {
        epoch,
        replayed,
        truncated_bytes: truncated,
        torn,
        wal,
    })
}

/// Recover a durable store from `config.dir`: newest checkpoint + WAL
/// tail replay + torn-tail truncation. The returned store resumes at
/// the last durable epoch with the (truncated, reopened) WAL attached.
pub fn recover(config: WalConfig) -> Result<(DbStore, RecoveryReport)> {
    let _span = obs::span("db.recovery");
    let dir = config.dir.clone();
    let meta = load_checkpoint_meta(&dir)?;
    let ckpt_path = dir.join(CHECKPOINT_FILE);
    let ckpt_json = fs::read_to_string(&ckpt_path).map_err(|e| {
        GeoDbError::snapshot_load(
            format!("read {ckpt_path:?}"),
            SnapshotCause::Io(e.to_string()),
        )
    })?;
    let mut db = snapshot::load(&ckpt_json)?;
    db.set_next_oid(meta.next_oid);

    let tail = replay_tail(&mut db, config, meta.epoch, meta.epoch)?;
    let next_oid = db.next_oid();
    if obs::enabled() {
        obs::counter_add("db.recoveries", 1);
        obs::counter_add("db.recovery_replayed_records", tail.replayed);
        obs::counter_add("db.recovery_truncated_bytes", tail.truncated_bytes);
    }
    let report = RecoveryReport {
        checkpoint_epoch: meta.epoch,
        replayed_records: tail.replayed,
        recovered_epoch: tail.epoch,
        truncated_bytes: tail.truncated_bytes,
        torn: tail.torn,
        next_oid,
    };
    let store = DbStore::resume(db, tail.epoch, tail.wal);
    Ok((store, report))
}

/// Open a durable store in `config.dir`: recover if a checkpoint
/// exists (the seed database is ignored — disk wins), otherwise wrap
/// the seed and attach a fresh WAL (initial checkpoint + empty log).
pub fn open(seed: Database, config: WalConfig) -> Result<(DbStore, Option<RecoveryReport>)> {
    if config.dir.join(CHECKPOINT_META_FILE).exists() {
        let (store, report) = recover(config)?;
        Ok((store, Some(report)))
    } else {
        let store = DbStore::new(seed);
        store.attach_wal(config)?;
        Ok((store, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "geodb-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record(epoch: u64) -> WalRecord {
        WalRecord {
            epoch: Epoch(epoch),
            next_oid: epoch + 10,
            events: vec![DbEvent::SchemaRegistered {
                schema: format!("s{epoch}"),
            }],
            ops: vec![WalOp::Schema {
                def: SchemaDef::new(format!("s{epoch}")),
            }],
        }
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let a = checksum(b"hello");
        assert_eq!(a, checksum(b"hello"));
        assert_ne!(a, checksum(b"hellp"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }

    #[test]
    fn frames_round_trip_through_the_log() {
        let dir = tmp_dir("roundtrip");
        let mut wal = Wal::create(WalConfig::new(&dir)).unwrap();
        for e in 2..=4u64 {
            let payload = encode_payload(&record(e)).unwrap();
            wal.append_frame(&payload).unwrap();
        }
        wal.sync().unwrap();
        let report = read_wal(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.records[0], record(2));
        assert_eq!(report.records[2].epoch, 4);
        assert!(report.torn.is_none());
        assert_eq!(report.truncated_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_reported() {
        let dir = tmp_dir("torn");
        let mut wal = Wal::create(WalConfig::new(&dir)).unwrap();
        let p1 = encode_payload(&record(2)).unwrap();
        let p2 = encode_payload(&record(3)).unwrap();
        wal.append_frame(&p1).unwrap();
        wal.append_frame(&p2).unwrap();
        wal.sync().unwrap();
        let path = dir.join(WAL_FILE);
        let full = fs::metadata(&path).unwrap().len();
        // Cut into the middle of the second frame.
        let cut = full - (p2.len() as u64 / 2);
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(cut)
            .unwrap();
        let report = read_wal(&path).unwrap();
        assert_eq!(report.records.len(), 1, "only the intact record survives");
        assert!(report.torn.is_some());
        assert_eq!(report.valid_len + report.truncated_bytes, cut);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_byte_in_tail_frame_fails_checksum() {
        let dir = tmp_dir("flip");
        let mut wal = Wal::create(WalConfig::new(&dir)).unwrap();
        let p1 = encode_payload(&record(2)).unwrap();
        wal.append_frame(&p1).unwrap();
        wal.sync().unwrap();
        let path = dir.join(WAL_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let report = read_wal(&path).unwrap();
        assert!(report.records.is_empty());
        assert_eq!(report.torn.as_deref(), Some("frame checksum mismatch"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_file_is_an_error_not_a_truncation() {
        let dir = tmp_dir("foreign");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(WAL_FILE);
        fs::write(&path, b"definitely not a wal file").unwrap();
        let err = read_wal(&path).unwrap_err();
        assert!(matches!(err, GeoDbError::SnapshotLoad { .. }));
        assert!(std::error::Error::source(&err).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }
}
