//! The database facade: catalog + extents + spatial indexes + buffer pool,
//! with the event stream the active mechanism intercepts.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::catalog::Catalog;
use crate::error::{GeoDbError, Result};
use crate::geometry::Rect;
use crate::index::{GridIndex, RTree, SpatialIndex};
use crate::instance::{Instance, Oid};
use crate::query::{DbEvent, Predicate};
use crate::schema::SchemaDef;
use crate::storage::{
    AnyStore, BufferPool, BufferStats, EvictionPolicy, FileStore, HeapFile, MemStore, RecordId,
};
use crate::value::Value;

/// How a method body fetches the instances its receiver references.
///
/// Method bodies navigate `Ref` attributes (the paper's
/// `get_supplier_name(pole_supplier)`), so they need *some* way to turn
/// an [`Oid`] into an [`Instance`]. Abstracting that behind a trait lets
/// one registered body serve both the mutable write-path [`Database`]
/// (which resolves through the buffer pool) and the immutable
/// [`crate::store::DbSnapshot`] read path (which resolves against the
/// pinned snapshot, lock-free).
pub trait RefResolver {
    /// Fetch an instance by OID without emitting a query event.
    fn resolve(&mut self, oid: Oid) -> Result<Instance>;
}

impl RefResolver for Database {
    fn resolve(&mut self, oid: Oid) -> Result<Instance> {
        self.peek(oid)
    }
}

/// Native implementation of a schema-declared method.
///
/// Methods receive a [`RefResolver`] (so bodies can fetch referenced
/// instances — through the buffer pool on the write path, or from a
/// pinned snapshot on the read path), the receiver instance, and
/// positional arguments — mirroring the paper's
/// `get_supplier_name(pole_supplier)`.
pub type MethodFn =
    Arc<dyn Fn(&mut dyn RefResolver, &Instance, &[Value]) -> Result<Value> + Send + Sync>;

/// Which spatial access method an extent uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IndexKind {
    RTree,
    Grid {
        cell: f64,
    },
    /// Sequential scan only (the baseline in experiment C3).
    None,
}

/// Aggregation functions over class extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    Count,
    Min,
    Max,
    Sum,
    Avg,
}

/// Statistics from the most recent `select`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Instances fetched and tested against the predicate.
    pub candidates: usize,
    /// Instances returned.
    pub returned: usize,
    /// Whether the spatial index pre-filtered the candidates.
    pub index_used: bool,
}

struct Extent {
    heap: HeapFile,
    records: HashMap<Oid, RecordId>,
    /// Insertion order, so extensions list deterministically.
    order: Vec<Oid>,
    spatial: Option<Box<dyn SpatialIndex>>,
    geom_attr: Option<String>,
    /// Index kind chosen at creation; snapshot capture mirrors it.
    kind: IndexKind,
}

impl Extent {
    fn new(geom_attr: Option<String>, kind: IndexKind) -> Extent {
        let spatial: Option<Box<dyn SpatialIndex>> = if geom_attr.is_some() {
            match kind {
                IndexKind::RTree => Some(Box::new(RTree::new())),
                IndexKind::Grid { cell } => Some(Box::new(GridIndex::new(cell))),
                IndexKind::None => None,
            }
        } else {
            None
        };
        Extent {
            heap: HeapFile::new(),
            records: HashMap::new(),
            order: Vec::new(),
            spatial,
            geom_attr,
            kind,
        }
    }
}

/// Per-class capture handed to the versioned store when it (re)builds a
/// [`crate::store::ClassPartition`]: the instances in insertion order
/// plus what the partition needs to mirror the extent's spatial setup.
pub(crate) struct ExtentCapture {
    pub instances: Vec<Instance>,
    pub geom_attr: Option<String>,
    pub kind: IndexKind,
}

/// An object-oriented geographic database.
pub struct Database {
    name: String,
    catalog: Catalog,
    pool: BufferPool<AnyStore>,
    extents: HashMap<(String, String), Extent>,
    /// oid -> (schema, class); the record id lives in the extent.
    locator: HashMap<Oid, (String, String)>,
    next_oid: u64,
    methods: HashMap<(String, String), MethodFn>,
    index_kind: IndexKind,
    events: Vec<DbEvent>,
    subscribers: Vec<Sender<DbEvent>>,
    last_query: QueryStats,
}

impl Database {
    /// Open an in-memory database with a default 256-frame LRU pool.
    pub fn new(name: impl Into<String>) -> Database {
        Database::with_pool(name, 256, EvictionPolicy::Lru)
    }

    /// Open with an explicit buffer-pool configuration.
    pub fn with_pool(name: impl Into<String>, frames: usize, policy: EvictionPolicy) -> Database {
        Database {
            name: name.into(),
            catalog: Catalog::new(),
            pool: BufferPool::new(AnyStore::Mem(MemStore::new()), frames, policy),
            extents: HashMap::new(),
            locator: HashMap::new(),
            next_oid: 1,
            methods: HashMap::new(),
            index_kind: IndexKind::RTree,
            events: Vec::new(),
            subscribers: Vec::new(),
            last_query: QueryStats::default(),
        }
    }

    /// Open a database whose pages live in a file. The file stores the
    /// raw pages; logical state is still checkpointed via
    /// [`crate::snapshot`] (the page file is a cache/working area, so
    /// fresh runs rebuild from the snapshot — see DESIGN.md).
    pub fn on_disk(
        name: impl Into<String>,
        path: impl AsRef<std::path::Path>,
        frames: usize,
        policy: EvictionPolicy,
    ) -> Result<Database> {
        let store = AnyStore::File(FileStore::open(path)?);
        Ok(Database {
            name: name.into(),
            catalog: Catalog::new(),
            pool: BufferPool::new(store, frames, policy),
            extents: HashMap::new(),
            locator: HashMap::new(),
            next_oid: 1,
            methods: HashMap::new(),
            index_kind: IndexKind::RTree,
            events: Vec::new(),
            subscribers: Vec::new(),
            last_query: QueryStats::default(),
        })
    }

    /// Flush dirty buffer-pool pages to the backing store.
    pub fn flush(&mut self) -> Result<()> {
        self.pool.flush_all()
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The OID the next `insert` will allocate. Recorded in WAL commit
    /// records so crash recovery restores the allocator exactly (snapshot
    /// documents alone cannot: deleting the highest OID and crashing
    /// would otherwise rewind the counter).
    pub fn next_oid(&self) -> u64 {
        self.next_oid
    }

    /// Restore the OID allocator (crash-recovery path). Never rewinds
    /// below the highest OID already derived from restored instances.
    pub fn set_next_oid(&mut self, next: u64) {
        self.next_oid = self.next_oid.max(next);
    }

    /// Spatial access method used for extents created afterwards.
    pub fn set_index_kind(&mut self, kind: IndexKind) {
        self.index_kind = kind;
    }

    pub fn buffer_stats(&self) -> BufferStats {
        self.pool.stats()
    }

    pub fn reset_buffer_stats(&mut self) {
        self.pool.reset_stats();
    }

    pub fn last_query_stats(&self) -> QueryStats {
        self.last_query
    }

    // -- events -----------------------------------------------------------

    fn emit(&mut self, e: DbEvent) {
        self.subscribers.retain(|s| s.send(e.clone()).is_ok());
        self.events.push(e);
    }

    /// Events accumulated since the last drain, oldest first.
    pub fn drain_events(&mut self) -> Vec<DbEvent> {
        std::mem::take(&mut self.events)
    }

    /// Subscribe a channel to the live event stream.
    pub fn subscribe(&mut self) -> Receiver<DbEvent> {
        let (tx, rx) = unbounded();
        self.subscribers.push(tx);
        rx
    }

    // -- schema -----------------------------------------------------------

    /// Register a schema and create (empty) extents for its classes.
    pub fn register_schema(&mut self, schema: SchemaDef) -> Result<()> {
        let name = schema.name.clone();
        let class_info: Vec<(String, Option<String>)> = schema
            .classes
            .iter()
            .map(|c| (c.name.clone(), None))
            .collect();
        self.catalog.register(schema)?;
        for (class, _) in class_info {
            // The primary geometry attribute is the first (inherited
            // included) attribute of type Geometry.
            let geom_attr = self
                .catalog
                .effective_attrs(&name, &class)?
                .into_iter()
                .find(|a| a.ty == crate::value::AttrType::Geometry)
                .map(|a| a.name);
            self.extents.insert(
                (name.clone(), class.clone()),
                Extent::new(geom_attr, self.index_kind),
            );
        }
        self.emit(DbEvent::SchemaRegistered { schema: name });
        Ok(())
    }

    /// Register the native body for a schema-declared method.
    pub fn register_method(
        &mut self,
        schema: &str,
        class: &str,
        method: &str,
        f: MethodFn,
    ) -> Result<()> {
        let methods = self.catalog.effective_methods(schema, class)?;
        if !methods.iter().any(|m| m.name == method) {
            return Err(GeoDbError::UnknownMethod {
                class: class.into(),
                method: method.into(),
            });
        }
        self.methods
            .insert((class.to_string(), method.to_string()), f);
        Ok(())
    }

    /// Invoke a method on an instance.
    pub fn call_method(&mut self, inst: &Instance, method: &str, args: &[Value]) -> Result<Value> {
        let f = self
            .methods
            .get(&(inst.class.clone(), method.to_string()))
            .cloned()
            .ok_or_else(|| GeoDbError::UnknownMethod {
                class: inst.class.clone(),
                method: method.to_string(),
            })?;
        f(self, inst, args)
    }

    // -- data -------------------------------------------------------------

    /// Insert a new instance; returns its OID.
    pub fn insert(
        &mut self,
        schema: &str,
        class: &str,
        values: Vec<(String, Value)>,
    ) -> Result<Oid> {
        let oid = Oid(self.next_oid);
        let mut inst = Instance::new(oid, class);
        for (k, v) in values {
            inst.values.insert(k, v);
        }
        self.catalog.validate_instance(schema, &inst)?;

        let bytes = serde_json::to_vec(&inst)
            .map_err(|e| GeoDbError::Storage(format!("serialize {oid}: {e}")))?;
        let geom_bbox = {
            let extent = self
                .extents
                .get(&(schema.to_string(), class.to_string()))
                .ok_or_else(|| GeoDbError::UnknownClass(class.to_string()))?;
            extent
                .geom_attr
                .as_ref()
                .and_then(|a| inst.get(a).as_geometry())
                .map(|g| g.bbox())
        };

        // Split borrows: heap insert needs both extent and pool.
        let pool = &mut self.pool;
        let extent = self
            .extents
            .get_mut(&(schema.to_string(), class.to_string()))
            .expect("checked above");
        let rid = extent.heap.insert(pool, &bytes)?;
        extent.records.insert(oid, rid);
        extent.order.push(oid);
        if let (Some(idx), Some(bbox)) = (extent.spatial.as_mut(), geom_bbox) {
            idx.insert(oid, bbox);
        }

        self.next_oid += 1;
        self.locator
            .insert(oid, (schema.to_string(), class.to_string()));
        self.emit(DbEvent::Insert {
            schema: schema.into(),
            class: class.into(),
            oid,
        });
        Ok(oid)
    }

    /// Buffer-pool page touches (hits + misses) so far. Read-only: the
    /// observability hooks report deltas of this without adding pool
    /// operations of their own.
    fn pool_touches(&self) -> u64 {
        let s = self.pool.stats();
        s.hits + s.misses
    }

    fn fetch(&mut self, schema: &str, class: &str, oid: Oid) -> Result<Instance> {
        let pool = &mut self.pool;
        let extent = self
            .extents
            .get(&(schema.to_string(), class.to_string()))
            .ok_or_else(|| GeoDbError::UnknownClass(class.to_string()))?;
        let rid = *extent
            .records
            .get(&oid)
            .ok_or(GeoDbError::UnknownOid(oid.0))?;
        let bytes = extent.heap.get(pool, rid)?;
        serde_json::from_slice(&bytes)
            .map_err(|e| GeoDbError::Storage(format!("deserialize {oid}: {e}")))
    }

    /// The `geodb.query` failpoint, consulted by every query primitive:
    /// lets the fault harness make queries fail (as a storage error) or
    /// panic without touching real storage.
    fn query_failpoint() -> Result<()> {
        faultsim::fire("geodb.query").map_err(|f| GeoDbError::Storage(f.to_string()))
    }

    /// `Get_Value` primitive: fetch one instance, emitting the event.
    pub fn get_value(&mut self, oid: Oid) -> Result<Instance> {
        let _span = obs::span("geodb.get_value");
        Self::query_failpoint()?;
        let touches0 = self.pool_touches();
        let (schema, class) = self
            .locator
            .get(&oid)
            .cloned()
            .ok_or(GeoDbError::UnknownOid(oid.0))?;
        let inst = self.fetch(&schema, &class, oid)?;
        self.emit(DbEvent::GetValue { schema, class, oid });
        if obs::enabled() {
            obs::counter_add("geodb.queries", 1);
            obs::counter_add("geodb.instances_fetched", 1);
            obs::counter_add(
                "geodb.pages_touched",
                self.pool_touches().saturating_sub(touches0),
            );
        }
        Ok(inst)
    }

    /// Fetch without emitting an event (internal plumbing, rendering).
    pub fn peek(&mut self, oid: Oid) -> Result<Instance> {
        let (schema, class) = self
            .locator
            .get(&oid)
            .cloned()
            .ok_or(GeoDbError::UnknownOid(oid.0))?;
        self.fetch(&schema, &class, oid)
    }

    /// `Get_Schema` primitive: schema metadata, emitting the event.
    pub fn get_schema(&mut self, schema: &str) -> Result<SchemaDef> {
        let _span = obs::span("geodb.get_schema");
        Self::query_failpoint()?;
        let def = self.catalog.schema(schema)?.clone();
        self.emit(DbEvent::GetSchema {
            schema: schema.into(),
        });
        obs::counter_add("geodb.queries", 1);
        Ok(def)
    }

    /// `Get_Class` primitive: the class extension (instances of the class
    /// itself; pass `with_subclasses` for the polymorphic extension).
    pub fn get_class(
        &mut self,
        schema: &str,
        class: &str,
        with_subclasses: bool,
    ) -> Result<Vec<Instance>> {
        let _span = obs::span("geodb.get_class");
        Self::query_failpoint()?;
        let touches0 = self.pool_touches();
        // Validate the class exists even when its extent is empty.
        self.catalog.class(schema, class)?;
        let mut classes = vec![class.to_string()];
        if with_subclasses {
            let mut queue = vec![class.to_string()];
            while let Some(c) = queue.pop() {
                for sub in self.catalog.subclasses(schema, &c)? {
                    classes.push(sub.name.clone());
                    queue.push(sub.name.clone());
                }
            }
        }
        let mut out = Vec::new();
        for c in &classes {
            let oids: Vec<Oid> = self
                .extents
                .get(&(schema.to_string(), c.clone()))
                .map(|e| e.order.clone())
                .unwrap_or_default();
            for oid in oids {
                out.push(self.fetch(schema, c, oid)?);
            }
        }
        self.emit(DbEvent::GetClass {
            schema: schema.into(),
            class: class.into(),
        });
        if obs::enabled() {
            obs::counter_add("geodb.queries", 1);
            obs::counter_add("geodb.instances_fetched", out.len() as u64);
            obs::counter_add(
                "geodb.pages_touched",
                self.pool_touches().saturating_sub(touches0),
            );
        }
        Ok(out)
    }

    /// Selection with optional spatial-index acceleration.
    pub fn select(&mut self, schema: &str, class: &str, pred: &Predicate) -> Result<Vec<Instance>> {
        let _span = obs::span("geodb.select");
        Self::query_failpoint()?;
        let touches0 = self.pool_touches();
        self.catalog.class(schema, class)?;
        let key = (schema.to_string(), class.to_string());
        let window = pred.index_window();

        let (candidates, index_used): (Vec<Oid>, bool) = {
            let extent = self
                .extents
                .get(&key)
                .ok_or_else(|| GeoDbError::UnknownClass(class.to_string()))?;
            match (&extent.spatial, &window) {
                (Some(idx), Some((attr, rect)))
                    if Some(attr.as_str()) == extent.geom_attr.as_deref() =>
                {
                    (idx.query_rect(rect), true)
                }
                _ => (extent.order.clone(), false),
            }
        };

        let mut out = Vec::new();
        let n_candidates = candidates.len();
        for oid in candidates {
            let inst = self.fetch(schema, class, oid)?;
            if pred.eval(&inst) {
                out.push(inst);
            }
        }
        // Deterministic order regardless of index traversal order.
        out.sort_by_key(|i| i.oid);
        self.last_query = QueryStats {
            candidates: n_candidates,
            returned: out.len(),
            index_used,
        };
        if obs::enabled() {
            obs::counter_add("geodb.queries", 1);
            obs::counter_add("geodb.instances_fetched", n_candidates as u64);
            obs::counter_add(
                "geodb.pages_touched",
                self.pool_touches().saturating_sub(touches0),
            );
            obs::counter_add(
                if index_used {
                    "geodb.index_hits"
                } else {
                    "geodb.index_scans"
                },
                1,
            );
        }
        Ok(out)
    }

    /// Aggregate an attribute over the (optionally filtered) extension.
    /// `path` may reach into tuple fields. `Sum`/`Avg` require numeric
    /// values; `Min`/`Max` use the value ordering; `Count` counts
    /// matching instances with a non-null value at `path`.
    pub fn aggregate(
        &mut self,
        schema: &str,
        class: &str,
        path: &str,
        agg: Aggregate,
        pred: &Predicate,
    ) -> Result<Value> {
        let rows = self.select(schema, class, pred)?;
        aggregate_rows(&rows, path, agg)
    }

    /// k-nearest-neighbour query: the `k` instances of `class` whose
    /// geometry is closest to `p` (exact re-ranking after the index's
    /// bbox-distance candidates; falls back to a scan without an index).
    pub fn nearest(
        &mut self,
        schema: &str,
        class: &str,
        p: crate::geometry::Point,
        k: usize,
    ) -> Result<Vec<Instance>> {
        self.catalog.class(schema, class)?;
        let key = (schema.to_string(), class.to_string());
        let extent = self
            .extents
            .get(&key)
            .ok_or_else(|| GeoDbError::UnknownClass(class.to_string()))?;
        let geom_attr = extent.geom_attr.clone().ok_or_else(|| {
            GeoDbError::InvalidQuery(format!("class `{class}` has no geometry attribute"))
        })?;
        // Over-fetch from the index (bbox distance underestimates true
        // distance, so 2k candidates then exact re-rank is safe for point
        // data and a good heuristic otherwise).
        let candidates: Vec<Oid> = match &extent.spatial {
            Some(idx) => idx.nearest(&p, (2 * k).max(8)),
            None => extent.order.clone(),
        };
        let mut ranked: Vec<(f64, Instance)> = Vec::with_capacity(candidates.len());
        for oid in candidates {
            let inst = self.fetch(schema, class, oid)?;
            if let Some(g) = inst.get(&geom_attr).as_geometry() {
                ranked.push((g.distance_to_point(&p), inst));
            }
        }
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
        ranked.truncate(k);
        Ok(ranked.into_iter().map(|(_, i)| i).collect())
    }

    /// Spatial window shortcut: everything whose geometry intersects `rect`.
    pub fn window_query(&mut self, schema: &str, class: &str, rect: Rect) -> Result<Vec<Instance>> {
        let attr = {
            let extent = self
                .extents
                .get(&(schema.to_string(), class.to_string()))
                .ok_or_else(|| GeoDbError::UnknownClass(class.to_string()))?;
            extent.geom_attr.clone().ok_or_else(|| {
                GeoDbError::InvalidQuery(format!("class `{class}` has no geometry attribute"))
            })?
        };
        self.select(schema, class, &Predicate::IntersectsRect { attr, rect })
    }

    /// Update named attributes of an instance.
    pub fn update(&mut self, oid: Oid, changes: Vec<(String, Value)>) -> Result<()> {
        let (schema, class) = self
            .locator
            .get(&oid)
            .cloned()
            .ok_or(GeoDbError::UnknownOid(oid.0))?;
        let mut inst = self.fetch(&schema, &class, oid)?;
        for (k, v) in changes {
            inst.values.insert(k, v);
        }
        self.catalog.validate_instance(&schema, &inst)?;
        let bytes = serde_json::to_vec(&inst)
            .map_err(|e| GeoDbError::Storage(format!("serialize {oid}: {e}")))?;

        let geom_bbox = {
            let extent = self
                .extents
                .get(&(schema.clone(), class.clone()))
                .expect("located extent exists");
            extent
                .geom_attr
                .as_ref()
                .and_then(|a| inst.get(a).as_geometry())
                .map(|g| g.bbox())
        };
        let pool = &mut self.pool;
        let extent = self
            .extents
            .get_mut(&(schema.clone(), class.clone()))
            .expect("located extent exists");
        let rid = *extent
            .records
            .get(&oid)
            .ok_or(GeoDbError::UnknownOid(oid.0))?;
        let new_rid = extent.heap.update(pool, rid, &bytes)?;
        extent.records.insert(oid, new_rid);
        if let Some(idx) = extent.spatial.as_mut() {
            idx.remove(oid);
            if let Some(bbox) = geom_bbox {
                idx.insert(oid, bbox);
            }
        }
        self.emit(DbEvent::Update { schema, class, oid });
        Ok(())
    }

    /// Delete an instance.
    pub fn delete(&mut self, oid: Oid) -> Result<()> {
        let (schema, class) = self
            .locator
            .remove(&oid)
            .ok_or(GeoDbError::UnknownOid(oid.0))?;
        let pool = &mut self.pool;
        let extent = self
            .extents
            .get_mut(&(schema.clone(), class.clone()))
            .expect("located extent exists");
        let rid = extent
            .records
            .remove(&oid)
            .ok_or(GeoDbError::UnknownOid(oid.0))?;
        extent.heap.delete(pool, rid)?;
        extent.order.retain(|o| *o != oid);
        if let Some(idx) = extent.spatial.as_mut() {
            idx.remove(oid);
        }
        self.emit(DbEvent::Delete { schema, class, oid });
        Ok(())
    }

    /// All schema definitions, for snapshots and the weak-integration
    /// protocol.
    pub fn schemas(&self) -> Vec<SchemaDef> {
        self.catalog
            .schema_names()
            .into_iter()
            .map(|n| self.catalog.schema(n).expect("listed schema").clone())
            .collect()
    }

    /// Schema and class of a stored object.
    pub fn locate(&self, oid: Oid) -> Option<(&str, &str)> {
        self.locator
            .get(&oid)
            .map(|(s, c)| (s.as_str(), c.as_str()))
    }

    /// Every stored object with its schema, in OID order (snapshot dump).
    pub fn dump_objects(&mut self) -> Result<Vec<(String, Instance)>> {
        let mut oids: Vec<(Oid, String, String)> = self
            .locator
            .iter()
            .map(|(o, (s, c))| (*o, s.clone(), c.clone()))
            .collect();
        oids.sort_by_key(|(o, _, _)| *o);
        let mut out = Vec::with_capacity(oids.len());
        for (oid, schema, class) in oids {
            let inst = self.fetch(&schema, &class, oid)?;
            out.push((schema, inst));
        }
        Ok(out)
    }

    /// Restore an instance with its original OID (snapshot load path).
    pub fn restore_instance(&mut self, schema: &str, inst: Instance) -> Result<()> {
        if self.locator.contains_key(&inst.oid) {
            return Err(GeoDbError::Duplicate(format!("oid {}", inst.oid)));
        }
        self.catalog.validate_instance(schema, &inst)?;
        let oid = inst.oid;
        let class = inst.class.clone();
        let bytes = serde_json::to_vec(&inst)
            .map_err(|e| GeoDbError::Storage(format!("serialize {oid}: {e}")))?;
        let geom_bbox = {
            let extent = self
                .extents
                .get(&(schema.to_string(), class.clone()))
                .ok_or_else(|| GeoDbError::UnknownClass(class.clone()))?;
            extent
                .geom_attr
                .as_ref()
                .and_then(|a| inst.get(a).as_geometry())
                .map(|g| g.bbox())
        };
        let pool = &mut self.pool;
        let extent = self
            .extents
            .get_mut(&(schema.to_string(), class.clone()))
            .expect("checked above");
        let rid = extent.heap.insert(pool, &bytes)?;
        extent.records.insert(oid, rid);
        extent.order.push(oid);
        if let (Some(idx), Some(bbox)) = (extent.spatial.as_mut(), geom_bbox) {
            idx.insert(oid, bbox);
        }
        self.locator
            .insert(oid, (schema.to_string(), class.clone()));
        self.next_oid = self.next_oid.max(oid.0 + 1);
        Ok(())
    }

    /// Number of stored instances of a class (own extent only).
    pub fn extent_size(&self, schema: &str, class: &str) -> usize {
        self.extents
            .get(&(schema.to_string(), class.to_string()))
            .map(|e| e.records.len())
            .unwrap_or(0)
    }

    // -- versioned-store capture hooks ------------------------------------
    //
    // The COW snapshot layer (`crate::store`) maintains an immutable
    // per-class mirror of this database. These pub(crate) accessors are
    // the only surface it needs: enumerate extents, capture one class,
    // fetch one instance, and clone the method registry.

    /// Keys of every extent, in deterministic order.
    pub(crate) fn extent_keys(&self) -> Vec<(String, String)> {
        let mut keys: Vec<_> = self.extents.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Capture a whole class extent (instances in insertion order plus
    /// the spatial configuration a partition must mirror).
    pub(crate) fn capture_extent(&mut self, schema: &str, class: &str) -> Result<ExtentCapture> {
        let key = (schema.to_string(), class.to_string());
        let (order, geom_attr, kind) = {
            let extent = self
                .extents
                .get(&key)
                .ok_or_else(|| GeoDbError::UnknownClass(class.to_string()))?;
            (extent.order.clone(), extent.geom_attr.clone(), extent.kind)
        };
        let mut instances = Vec::with_capacity(order.len());
        for oid in order {
            instances.push(self.fetch(schema, class, oid)?);
        }
        Ok(ExtentCapture {
            instances,
            geom_attr,
            kind,
        })
    }

    /// Fetch one instance without emitting an event (store sync path).
    pub(crate) fn fetch_instance(
        &mut self,
        schema: &str,
        class: &str,
        oid: Oid,
    ) -> Result<Instance> {
        self.fetch(schema, class, oid)
    }

    /// Clone of the method registry (snapshots share the same bodies).
    pub(crate) fn methods_map(&self) -> HashMap<(String, String), MethodFn> {
        self.methods.clone()
    }
}

/// The aggregation reducer shared by [`Database::aggregate`] and the
/// versioned store's snapshot-side aggregate.
pub(crate) fn aggregate_rows(rows: &[Instance], path: &str, agg: Aggregate) -> Result<Value> {
    let values: Vec<&Value> = rows
        .iter()
        .map(|i| i.get_path(path))
        .filter(|v| !matches!(v, Value::Null))
        .collect();
    match agg {
        Aggregate::Count => Ok(Value::Int(values.len() as i64)),
        Aggregate::Min => Ok(values
            .iter()
            .min_by(|a, b| a.compare(b))
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null)),
        Aggregate::Max => Ok(values
            .iter()
            .max_by(|a, b| a.compare(b))
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null)),
        Aggregate::Sum | Aggregate::Avg => {
            let mut total = 0.0f64;
            let mut n = 0usize;
            for v in &values {
                match v {
                    Value::Int(i) => {
                        total += *i as f64;
                        n += 1;
                    }
                    Value::Float(x) => {
                        total += x;
                        n += 1;
                    }
                    other => {
                        return Err(GeoDbError::InvalidQuery(format!(
                            "cannot sum non-numeric value {} at `{path}`",
                            other.type_name()
                        )))
                    }
                }
            }
            if agg == Aggregate::Sum {
                Ok(Value::Float(total))
            } else if n == 0 {
                Ok(Value::Null)
            } else {
                Ok(Value::Float(total / n as f64))
            }
        }
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("name", &self.name)
            .field("schemas", &self.catalog.schema_names())
            .field("objects", &self.locator.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Geometry, Point};
    use crate::query::{CmpOp, DbEventKind};
    use crate::schema::{ClassDef, MethodDef};
    use crate::value::AttrType;

    fn net_schema() -> SchemaDef {
        SchemaDef::new("net")
            .class(ClassDef::new("Supplier").attr("name", AttrType::Text))
            .class(
                ClassDef::new("Pole")
                    .attr("height", AttrType::Float)
                    .attr("supplier", AttrType::Ref("Supplier".into()))
                    .attr("location", AttrType::Geometry)
                    .method(MethodDef::new(
                        "get_supplier_name",
                        vec![AttrType::Ref("Supplier".into())],
                        AttrType::Text,
                    )),
            )
            .class(ClassDef::new("TallPole").extends("Pole"))
    }

    fn db_with_poles(n: usize) -> Database {
        let mut db = Database::new("test");
        db.register_schema(net_schema()).unwrap();
        let supplier = db
            .insert("net", "Supplier", vec![("name".into(), "Acme".into())])
            .unwrap();
        for i in 0..n {
            db.insert(
                "net",
                "Pole",
                vec![
                    ("height".into(), (5.0 + i as f64).into()),
                    ("supplier".into(), Value::Ref(supplier)),
                    (
                        "location".into(),
                        Geometry::Point(Point::new(i as f64, 0.0)).into(),
                    ),
                ],
            )
            .unwrap();
        }
        db.drain_events();
        db
    }

    #[test]
    fn insert_get_round_trip() {
        let mut db = db_with_poles(3);
        let poles = db.get_class("net", "Pole", false).unwrap();
        assert_eq!(poles.len(), 3);
        let inst = db.get_value(poles[0].oid).unwrap();
        assert_eq!(inst.get("height"), &Value::Float(5.0));
    }

    #[test]
    fn insert_validates_against_catalog() {
        let mut db = Database::new("t");
        db.register_schema(net_schema()).unwrap();
        let err = db.insert("net", "Pole", vec![("height".into(), 5.0.into())]);
        assert!(matches!(err, Err(GeoDbError::MissingAttribute { .. })));
        let err = db.insert("net", "Ghost", vec![]);
        assert!(err.is_err());
    }

    #[test]
    fn events_flow_in_order() {
        let mut db = db_with_poles(1);
        let rx = db.subscribe();
        db.get_schema("net").unwrap();
        let poles = db.get_class("net", "Pole", false).unwrap();
        db.get_value(poles[0].oid).unwrap();
        let kinds: Vec<DbEventKind> = db.drain_events().iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                DbEventKind::GetSchema,
                DbEventKind::GetClass,
                DbEventKind::GetValue
            ]
        );
        // Channel subscriber saw the same stream.
        assert_eq!(rx.try_iter().count(), 3);
    }

    #[test]
    fn select_uses_spatial_index() {
        let mut db = db_with_poles(100);
        let hits = db
            .window_query("net", "Pole", Rect::new(-0.5, -0.5, 9.5, 0.5))
            .unwrap();
        assert_eq!(hits.len(), 10);
        let stats = db.last_query_stats();
        assert!(stats.index_used);
        assert!(stats.candidates < 100, "index should prune candidates");
    }

    #[test]
    fn select_without_index_scans() {
        let mut db = Database::new("t");
        db.set_index_kind(IndexKind::None);
        db.register_schema(net_schema()).unwrap();
        let s = db
            .insert("net", "Supplier", vec![("name".into(), "A".into())])
            .unwrap();
        for i in 0..10 {
            db.insert(
                "net",
                "Pole",
                vec![
                    ("height".into(), (i as f64).into()),
                    ("supplier".into(), Value::Ref(s)),
                    (
                        "location".into(),
                        Geometry::Point(Point::new(i as f64, 0.0)).into(),
                    ),
                ],
            )
            .unwrap();
        }
        let hits = db
            .window_query("net", "Pole", Rect::new(0.0, -1.0, 3.0, 1.0))
            .unwrap();
        assert_eq!(hits.len(), 4);
        let stats = db.last_query_stats();
        assert!(!stats.index_used);
        assert_eq!(stats.candidates, 10);
    }

    #[test]
    fn attribute_predicates_work() {
        let mut db = db_with_poles(10);
        let tall = db
            .select("net", "Pole", &Predicate::cmp("height", CmpOp::Ge, 12.0))
            .unwrap();
        assert_eq!(tall.len(), 3); // heights 12, 13, 14
    }

    #[test]
    fn update_moves_spatial_position() {
        let mut db = db_with_poles(5);
        let poles = db.get_class("net", "Pole", false).unwrap();
        let oid = poles[0].oid;
        db.update(
            oid,
            vec![(
                "location".into(),
                Geometry::Point(Point::new(100.0, 100.0)).into(),
            )],
        )
        .unwrap();
        let near_origin = db
            .window_query("net", "Pole", Rect::new(-0.5, -0.5, 0.5, 0.5))
            .unwrap();
        assert!(near_origin.is_empty());
        let far = db
            .window_query("net", "Pole", Rect::new(99.0, 99.0, 101.0, 101.0))
            .unwrap();
        assert_eq!(far.len(), 1);
        assert_eq!(far[0].oid, oid);
    }

    #[test]
    fn delete_removes_everywhere() {
        let mut db = db_with_poles(3);
        let poles = db.get_class("net", "Pole", false).unwrap();
        let oid = poles[1].oid;
        db.delete(oid).unwrap();
        assert!(db.get_value(oid).is_err());
        assert_eq!(db.extent_size("net", "Pole"), 2);
        assert_eq!(db.get_class("net", "Pole", false).unwrap().len(), 2);
        assert!(db.delete(oid).is_err());
    }

    #[test]
    fn polymorphic_extension_includes_subclasses() {
        let mut db = db_with_poles(2);
        let supplier = db
            .insert("net", "Supplier", vec![("name".into(), "B".into())])
            .unwrap();
        db.insert(
            "net",
            "TallPole",
            vec![
                ("height".into(), 30.0.into()),
                ("supplier".into(), Value::Ref(supplier)),
                (
                    "location".into(),
                    Geometry::Point(Point::new(50.0, 50.0)).into(),
                ),
            ],
        )
        .unwrap();
        assert_eq!(db.get_class("net", "Pole", false).unwrap().len(), 2);
        assert_eq!(db.get_class("net", "Pole", true).unwrap().len(), 3);
    }

    #[test]
    fn methods_resolve_references() {
        let mut db = db_with_poles(1);
        db.register_method(
            "net",
            "Pole",
            "get_supplier_name",
            Arc::new(|db, inst, _args| {
                // The method body navigates the reference through the db.
                let Value::Ref(supplier_oid) = inst.get("supplier") else {
                    return Ok(Value::Null);
                };
                let supplier = db.resolve(*supplier_oid)?;
                Ok(supplier.get("name").clone())
            }),
        )
        .unwrap();
        let poles = db.get_class("net", "Pole", false).unwrap();
        let name = db.call_method(&poles[0], "get_supplier_name", &[]).unwrap();
        assert_eq!(name, Value::Text("Acme".into()));

        assert!(db
            .register_method(
                "net",
                "Pole",
                "no_such",
                Arc::new(|_, _, _| Ok(Value::Null))
            )
            .is_err());
        assert!(db.call_method(&poles[0], "unregistered", &[]).is_err());
    }

    #[test]
    fn buffer_stats_reflect_access() {
        let mut db = db_with_poles(200);
        db.reset_buffer_stats();
        db.get_class("net", "Pole", false).unwrap();
        let s = db.buffer_stats();
        assert!(s.hits + s.misses > 0);
    }
}

#[cfg(test)]
mod nearest_tests {
    use super::*;
    use crate::geometry::{Geometry, Point};
    use crate::schema::{ClassDef, SchemaDef};
    use crate::value::AttrType;

    fn grid_db(kind: IndexKind) -> Database {
        let mut db = Database::new("t");
        db.set_index_kind(kind);
        db.register_schema(
            SchemaDef::new("s").class(
                ClassDef::new("P")
                    .attr("n", AttrType::Int)
                    .attr("loc", AttrType::Geometry),
            ),
        )
        .unwrap();
        for i in 0..10i64 {
            for j in 0..10i64 {
                db.insert(
                    "s",
                    "P",
                    vec![
                        ("n".into(), Value::Int(i * 10 + j)),
                        (
                            "loc".into(),
                            Geometry::Point(Point::new(i as f64, j as f64)).into(),
                        ),
                    ],
                )
                .unwrap();
            }
        }
        db.drain_events();
        db
    }

    #[test]
    fn nearest_matches_brute_force_with_and_without_index() {
        for kind in [
            IndexKind::RTree,
            IndexKind::None,
            IndexKind::Grid { cell: 2.0 },
        ] {
            let mut db = grid_db(kind);
            let q = Point::new(4.3, 6.8);
            let got = db.nearest("s", "P", q, 5).unwrap();
            // Brute force.
            let all = db.get_class("s", "P", false).unwrap();
            let mut ranked: Vec<(f64, &Instance)> = all
                .iter()
                .map(|i| (i.get("loc").as_geometry().unwrap().distance_to_point(&q), i))
                .collect();
            ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
            let expect: Vec<Oid> = ranked[..5].iter().map(|(_, i)| i.oid).collect();
            let got_oids: Vec<Oid> = got.iter().map(|i| i.oid).collect();
            assert_eq!(got_oids, expect, "index kind {kind:?}");
        }
    }

    #[test]
    fn nearest_rejects_nonspatial_classes() {
        let mut db = Database::new("t");
        db.register_schema(
            SchemaDef::new("s").class(ClassDef::new("Plain").attr("n", AttrType::Int)),
        )
        .unwrap();
        assert!(matches!(
            db.nearest("s", "Plain", Point::ORIGIN, 3),
            Err(GeoDbError::InvalidQuery(_))
        ));
    }

    #[test]
    fn nearest_k_zero_and_oversized() {
        let mut db = grid_db(IndexKind::RTree);
        assert!(db.nearest("s", "P", Point::ORIGIN, 0).unwrap().is_empty());
        let all = db.nearest("s", "P", Point::ORIGIN, 1000).unwrap();
        assert!(all.len() <= 100);
        assert!(all.len() >= 8, "over-fetch floor returns at least 8");
    }
}

#[cfg(test)]
mod disk_tests {
    use super::*;
    use crate::geometry::{Geometry, Point};
    use crate::schema::{ClassDef, SchemaDef};
    use crate::value::AttrType;

    #[test]
    fn on_disk_database_round_trips_data() {
        let path = std::env::temp_dir().join(format!(
            "geodb-disk-{}-{}.pages",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_file(&path);
        let mut db = Database::on_disk("disk", &path, 4, EvictionPolicy::Lru).unwrap();
        db.register_schema(
            SchemaDef::new("s").class(
                ClassDef::new("P")
                    .attr("n", AttrType::Int)
                    .attr("loc", AttrType::Geometry),
            ),
        )
        .unwrap();
        // More data than the 4-frame pool holds: pages cycle through disk.
        let mut oids = Vec::new();
        for i in 0..200i64 {
            oids.push(
                db.insert(
                    "s",
                    "P",
                    vec![
                        ("n".into(), Value::Int(i)),
                        (
                            "loc".into(),
                            Geometry::Point(Point::new(i as f64, 0.0)).into(),
                        ),
                    ],
                )
                .unwrap(),
            );
        }
        db.flush().unwrap();
        // Every record reads back correctly through the tiny pool.
        for (i, oid) in oids.iter().enumerate() {
            let inst = db.peek(*oid).unwrap();
            assert_eq!(inst.get("n"), &Value::Int(i as i64));
        }
        assert!(db.buffer_stats().evictions > 0, "pool must have cycled");
        assert!(path.metadata().unwrap().len() > 0);
        std::fs::remove_file(&path).unwrap();
    }
}

#[cfg(test)]
mod aggregate_tests {
    use super::*;
    use crate::gen::{phone_net_db, TelecomConfig};
    use crate::query::CmpOp;

    fn db() -> Database {
        phone_net_db(&TelecomConfig::small()).unwrap().0
    }

    #[test]
    fn count_min_max_sum_avg() {
        let mut db = db();
        let n = db.extent_size("phone_net", "Pole") as i64;
        let count = db
            .aggregate(
                "phone_net",
                "Pole",
                "pole_type",
                Aggregate::Count,
                &Predicate::True,
            )
            .unwrap();
        assert_eq!(count, Value::Int(n));

        let min = db
            .aggregate(
                "phone_net",
                "Pole",
                "pole_composition.pole_height",
                Aggregate::Min,
                &Predicate::True,
            )
            .unwrap();
        let max = db
            .aggregate(
                "phone_net",
                "Pole",
                "pole_composition.pole_height",
                Aggregate::Max,
                &Predicate::True,
            )
            .unwrap();
        let avg = db
            .aggregate(
                "phone_net",
                "Pole",
                "pole_composition.pole_height",
                Aggregate::Avg,
                &Predicate::True,
            )
            .unwrap();
        let (Value::Float(lo), Value::Float(hi), Value::Float(mid)) = (min, max, avg) else {
            panic!("numeric aggregates expected");
        };
        assert!(lo >= 7.0 && hi <= 14.0 && lo <= mid && mid <= hi);
    }

    #[test]
    fn aggregate_respects_predicates() {
        let mut db = db();
        let wood_count = db
            .aggregate(
                "phone_net",
                "Pole",
                "pole_type",
                Aggregate::Count,
                &Predicate::cmp("pole_composition.pole_material", CmpOp::Eq, "wood"),
            )
            .unwrap();
        let all = db
            .aggregate(
                "phone_net",
                "Pole",
                "pole_type",
                Aggregate::Count,
                &Predicate::True,
            )
            .unwrap();
        let (Value::Int(w), Value::Int(a)) = (wood_count, all) else {
            panic!()
        };
        assert!(w > 0 && w < a);
    }

    #[test]
    fn sum_of_text_is_an_error() {
        let mut db = db();
        assert!(matches!(
            db.aggregate(
                "phone_net",
                "Pole",
                "pole_composition.pole_material",
                Aggregate::Sum,
                &Predicate::True
            ),
            Err(GeoDbError::InvalidQuery(_))
        ));
    }

    #[test]
    fn empty_extension_aggregates() {
        let mut db = db();
        let none = &Predicate::cmp("pole_type", CmpOp::Gt, 1_000_000i64);
        assert_eq!(
            db.aggregate("phone_net", "Pole", "pole_type", Aggregate::Count, none)
                .unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            db.aggregate("phone_net", "Pole", "pole_type", Aggregate::Min, none)
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            db.aggregate("phone_net", "Pole", "pole_type", Aggregate::Avg, none)
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            db.aggregate("phone_net", "Pole", "pole_type", Aggregate::Sum, none)
                .unwrap(),
            Value::Float(0.0)
        );
    }
}
