//! Query predicates and the database event vocabulary.
//!
//! The paper restricts exploratory-mode database events to the primitives
//! `Get_Schema`, `Get_Class` and `Get_Value`; those events (plus updates,
//! which its active prototype also intercepts for constraint maintenance)
//! are modelled by [`DbEvent`]. Selection predicates combine attribute
//! comparisons with spatial conditions.

use serde::{Deserialize, Serialize};

use crate::geometry::{Point, Rect};
use crate::instance::{Instance, Oid};
use crate::value::Value;

/// Comparison operators over attribute values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Substring match on text values.
    Contains,
}

impl CmpOp {
    pub fn eval(&self, lhs: &Value, rhs: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Contains => match (lhs, rhs) {
                (Value::Text(a), Value::Text(b)) => a.contains(b.as_str()),
                _ => false,
            },
            _ => {
                let ord = lhs.compare(rhs);
                match self {
                    CmpOp::Eq => ord == Equal,
                    CmpOp::Ne => ord != Equal,
                    CmpOp::Lt => ord == Less,
                    CmpOp::Le => ord != Greater,
                    CmpOp::Gt => ord == Greater,
                    CmpOp::Ge => ord != Less,
                    CmpOp::Contains => unreachable!(),
                }
            }
        }
    }
}

/// A selection predicate over instances of one class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Matches everything.
    True,
    /// Compare an attribute (dotted paths reach into tuples) to a constant.
    Cmp {
        path: String,
        op: CmpOp,
        value: Value,
    },
    /// Geometry attribute entirely within a rectangle.
    Within {
        attr: String,
        rect: Rect,
    },
    /// Geometry attribute intersecting a rectangle (map viewport query).
    IntersectsRect {
        attr: String,
        rect: Rect,
    },
    /// Geometry attribute within `dist` of a point.
    NearPoint {
        attr: String,
        point: Point,
        dist: f64,
    },
    And(Box<Predicate>, Box<Predicate>),
    Or(Box<Predicate>, Box<Predicate>),
    Not(Box<Predicate>),
}

impl Predicate {
    /// Evaluate against one instance.
    pub fn eval(&self, inst: &Instance) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp { path, op, value } => op.eval(inst.get_path(path), value),
            Predicate::Within { attr, rect } => {
                inst.get(attr).as_geometry().is_some_and(|g| g.within(rect))
            }
            Predicate::IntersectsRect { attr, rect } => inst
                .get(attr)
                .as_geometry()
                .is_some_and(|g| g.intersects_rect(rect)),
            Predicate::NearPoint { attr, point, dist } => inst
                .get(attr)
                .as_geometry()
                .is_some_and(|g| g.distance_to_point(point) <= *dist),
            Predicate::And(a, b) => a.eval(inst) && b.eval(inst),
            Predicate::Or(a, b) => a.eval(inst) || b.eval(inst),
            Predicate::Not(p) => !p.eval(inst),
        }
    }

    /// A rectangle that any matching instance's geometry must intersect,
    /// if one can be derived — the spatial index prefilter.
    pub fn index_window(&self) -> Option<(String, Rect)> {
        match self {
            Predicate::Within { attr, rect } => Some((attr.clone(), *rect)),
            Predicate::IntersectsRect { attr, rect } => Some((attr.clone(), *rect)),
            Predicate::NearPoint { attr, point, dist } => {
                Some((attr.clone(), Rect::from_point(*point).inflate(*dist)))
            }
            // A conjunction can be prefiltered by either side's window.
            Predicate::And(a, b) => a.index_window().or_else(|| b.index_window()),
            _ => None,
        }
    }

    // -- combinators ------------------------------------------------------

    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    pub fn cmp(path: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            path: path.into(),
            op,
            value: value.into(),
        }
    }
}

/// Events emitted by the database as user interactions are translated into
/// queries and updates; the active mechanism intercepts these.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DbEvent {
    /// Schema metadata was requested (a `Get_Schema` primitive).
    GetSchema { schema: String },
    /// A class extension was requested (a `Get_Class` primitive).
    GetClass { schema: String, class: String },
    /// A single instance was requested (a `Get_Value` primitive, called
    /// `Get_Instance` in parts of the paper).
    GetValue {
        schema: String,
        class: String,
        oid: Oid,
    },
    /// An instance was inserted.
    Insert {
        schema: String,
        class: String,
        oid: Oid,
    },
    /// An instance was updated.
    Update {
        schema: String,
        class: String,
        oid: Oid,
    },
    /// An instance was deleted.
    Delete {
        schema: String,
        class: String,
        oid: Oid,
    },
    /// A schema was registered in the catalog.
    SchemaRegistered { schema: String },
}

impl DbEvent {
    /// Short tag used by rule-event matching and trace output.
    pub fn kind(&self) -> DbEventKind {
        match self {
            DbEvent::GetSchema { .. } => DbEventKind::GetSchema,
            DbEvent::GetClass { .. } => DbEventKind::GetClass,
            DbEvent::GetValue { .. } => DbEventKind::GetValue,
            DbEvent::Insert { .. } => DbEventKind::Insert,
            DbEvent::Update { .. } => DbEventKind::Update,
            DbEvent::Delete { .. } => DbEventKind::Delete,
            DbEvent::SchemaRegistered { .. } => DbEventKind::SchemaRegistered,
        }
    }

    /// The schema the event concerns.
    pub fn schema(&self) -> &str {
        match self {
            DbEvent::GetSchema { schema }
            | DbEvent::GetClass { schema, .. }
            | DbEvent::GetValue { schema, .. }
            | DbEvent::Insert { schema, .. }
            | DbEvent::Update { schema, .. }
            | DbEvent::Delete { schema, .. }
            | DbEvent::SchemaRegistered { schema } => schema,
        }
    }

    /// The class the event concerns, when class-scoped.
    pub fn class(&self) -> Option<&str> {
        match self {
            DbEvent::GetClass { class, .. }
            | DbEvent::GetValue { class, .. }
            | DbEvent::Insert { class, .. }
            | DbEvent::Update { class, .. }
            | DbEvent::Delete { class, .. } => Some(class),
            _ => None,
        }
    }
}

/// Discriminant-only event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DbEventKind {
    GetSchema,
    GetClass,
    GetValue,
    Insert,
    Update,
    Delete,
    SchemaRegistered,
}

impl std::fmt::Display for DbEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DbEventKind::GetSchema => "Get_Schema",
            DbEventKind::GetClass => "Get_Class",
            DbEventKind::GetValue => "Get_Value",
            DbEventKind::Insert => "Insert",
            DbEventKind::Update => "Update",
            DbEventKind::Delete => "Delete",
            DbEventKind::SchemaRegistered => "Schema_Registered",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;

    fn pole(x: f64, height: f64, material: &str) -> Instance {
        Instance::new(Oid(1), "Pole")
            .with("pole_location", Geometry::Point(Point::new(x, 0.0)))
            .with(
                "pole_composition",
                Value::Tuple(vec![
                    ("pole_material".into(), material.into()),
                    ("pole_height".into(), height.into()),
                ]),
            )
    }

    #[test]
    fn cmp_ops() {
        assert!(CmpOp::Eq.eval(&Value::Int(3), &Value::Int(3)));
        assert!(CmpOp::Lt.eval(&Value::Int(3), &Value::Float(3.5)));
        assert!(CmpOp::Ge.eval(&Value::Float(3.5), &Value::Int(3)));
        assert!(CmpOp::Contains.eval(&"wooden".into(), &"ood".into()));
        assert!(!CmpOp::Contains.eval(&Value::Int(3), &"3".into()));
    }

    #[test]
    fn cmp_predicate_on_nested_path() {
        let p = Predicate::cmp("pole_composition.pole_height", CmpOp::Gt, 8.0);
        assert!(p.eval(&pole(0.0, 9.0, "wood")));
        assert!(!p.eval(&pole(0.0, 7.0, "wood")));
    }

    #[test]
    fn spatial_predicates() {
        let inst = pole(5.0, 9.0, "wood");
        let inside = Predicate::Within {
            attr: "pole_location".into(),
            rect: Rect::new(0.0, -1.0, 10.0, 1.0),
        };
        let outside = Predicate::Within {
            attr: "pole_location".into(),
            rect: Rect::new(10.0, 10.0, 20.0, 20.0),
        };
        assert!(inside.eval(&inst));
        assert!(!outside.eval(&inst));

        let near = Predicate::NearPoint {
            attr: "pole_location".into(),
            point: Point::new(5.0, 3.0),
            dist: 3.0,
        };
        assert!(near.eval(&inst));

        // Predicate on a non-geometry attribute is simply false.
        let bogus = Predicate::Within {
            attr: "pole_composition".into(),
            rect: Rect::new(0.0, 0.0, 10.0, 10.0),
        };
        assert!(!bogus.eval(&inst));
    }

    #[test]
    fn boolean_combinators() {
        let inst = pole(5.0, 9.0, "wood");
        let tall = Predicate::cmp("pole_composition.pole_height", CmpOp::Gt, 8.0);
        let steel = Predicate::cmp("pole_composition.pole_material", CmpOp::Eq, "steel");
        assert!(tall.clone().and(steel.clone().not()).eval(&inst));
        assert!(tall.clone().or(steel.clone()).eval(&inst));
        assert!(!tall.and(steel).eval(&inst));
    }

    #[test]
    fn index_window_derivation() {
        let w = Predicate::IntersectsRect {
            attr: "loc".into(),
            rect: Rect::new(0.0, 0.0, 1.0, 1.0),
        };
        assert_eq!(w.index_window().unwrap().0, "loc");

        let near = Predicate::NearPoint {
            attr: "loc".into(),
            point: Point::new(5.0, 5.0),
            dist: 2.0,
        };
        let (_, rect) = near.index_window().unwrap();
        assert_eq!(rect, Rect::new(3.0, 3.0, 7.0, 7.0));

        // AND propagates a window from either side.
        let conj = Predicate::cmp("a", CmpOp::Eq, 1i64).and(near);
        assert!(conj.index_window().is_some());

        // OR cannot be prefiltered.
        let disj = Predicate::cmp("a", CmpOp::Eq, 1i64).or(Predicate::True);
        assert!(disj.index_window().is_none());
    }

    #[test]
    fn event_accessors() {
        let e = DbEvent::GetClass {
            schema: "phone_net".into(),
            class: "Pole".into(),
        };
        assert_eq!(e.kind(), DbEventKind::GetClass);
        assert_eq!(e.schema(), "phone_net");
        assert_eq!(e.class(), Some("Pole"));
        assert_eq!(e.kind().to_string(), "Get_Class");

        let s = DbEvent::GetSchema {
            schema: "phone_net".into(),
        };
        assert_eq!(s.class(), None);
    }
}
