//! Class and schema definitions of the object-oriented data model,
//! including single inheritance and method signatures (paper Fig. 5 shows
//! `Class Pole` with attributes and a `get_supplier_name` method).

use serde::{Deserialize, Serialize};

use crate::value::AttrType;

/// One declared attribute of a class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrDef {
    pub name: String,
    pub ty: AttrType,
    /// Optional attributes may be absent/`Null` on insert.
    pub optional: bool,
}

impl AttrDef {
    pub fn new(name: impl Into<String>, ty: AttrType) -> AttrDef {
        AttrDef {
            name: name.into(),
            ty,
            optional: false,
        }
    }

    pub fn optional(mut self) -> AttrDef {
        self.optional = true;
        self
    }
}

/// A method signature. Bodies are native Rust callbacks registered on the
/// [`crate::db::Database`]; the schema records only the signature, as the
/// paper's customization language references methods by name
/// (`get_supplier_name(pole_supplier)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodDef {
    pub name: String,
    pub params: Vec<AttrType>,
    pub returns: AttrType,
}

impl MethodDef {
    pub fn new(name: impl Into<String>, params: Vec<AttrType>, returns: AttrType) -> MethodDef {
        MethodDef {
            name: name.into(),
            params,
            returns,
        }
    }
}

/// A class definition: named attributes, methods, and an optional parent
/// class (single inheritance, as in the OMT model the paper adopts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassDef {
    pub name: String,
    pub parent: Option<String>,
    pub attrs: Vec<AttrDef>,
    pub methods: Vec<MethodDef>,
    /// Free-form description shown by the Schema window's metadata pane.
    pub doc: String,
}

impl ClassDef {
    pub fn new(name: impl Into<String>) -> ClassDef {
        ClassDef {
            name: name.into(),
            parent: None,
            attrs: Vec::new(),
            methods: Vec::new(),
            doc: String::new(),
        }
    }

    pub fn extends(mut self, parent: impl Into<String>) -> ClassDef {
        self.parent = Some(parent.into());
        self
    }

    pub fn attr(mut self, name: impl Into<String>, ty: AttrType) -> ClassDef {
        self.attrs.push(AttrDef::new(name, ty));
        self
    }

    pub fn optional_attr(mut self, name: impl Into<String>, ty: AttrType) -> ClassDef {
        self.attrs.push(AttrDef::new(name, ty).optional());
        self
    }

    pub fn method(mut self, m: MethodDef) -> ClassDef {
        self.methods.push(m);
        self
    }

    pub fn doc(mut self, text: impl Into<String>) -> ClassDef {
        self.doc = text.into();
        self
    }

    /// Locally-declared attribute by name (no inheritance).
    pub fn own_attr(&self, name: &str) -> Option<&AttrDef> {
        self.attrs.iter().find(|a| a.name == name)
    }

    /// Locally-declared method by name (no inheritance).
    pub fn own_method(&self, name: &str) -> Option<&MethodDef> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// True if any own attribute is spatial.
    pub fn has_own_geometry(&self) -> bool {
        self.attrs.iter().any(|a| a.ty == AttrType::Geometry)
    }
}

/// A named database schema: an ordered set of class definitions.
///
/// Order is preserved because the generic Schema window lists classes in
/// declaration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaDef {
    pub name: String,
    pub classes: Vec<ClassDef>,
}

impl SchemaDef {
    pub fn new(name: impl Into<String>) -> SchemaDef {
        SchemaDef {
            name: name.into(),
            classes: Vec::new(),
        }
    }

    pub fn class(mut self, c: ClassDef) -> SchemaDef {
        self.classes.push(c);
        self
    }

    pub fn find_class(&self, name: &str) -> Option<&ClassDef> {
        self.classes.iter().find(|c| c.name == name)
    }

    pub fn class_names(&self) -> Vec<&str> {
        self.classes.iter().map(|c| c.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pole_class() -> ClassDef {
        ClassDef::new("Pole")
            .attr("pole_type", AttrType::Int)
            .attr(
                "pole_composition",
                AttrType::Tuple(vec![
                    ("pole_material".into(), AttrType::Text),
                    ("pole_diameter".into(), AttrType::Float),
                    ("pole_height".into(), AttrType::Float),
                ]),
            )
            .attr("pole_supplier", AttrType::Ref("Supplier".into()))
            .attr("pole_location", AttrType::Geometry)
            .optional_attr("pole_picture", AttrType::Bitmap)
            .optional_attr("pole_historic", AttrType::Text)
            .method(MethodDef::new(
                "get_supplier_name",
                vec![AttrType::Ref("Supplier".into())],
                AttrType::Text,
            ))
    }

    #[test]
    fn builder_accumulates_members() {
        let c = pole_class();
        assert_eq!(c.attrs.len(), 6);
        assert_eq!(c.methods.len(), 1);
        assert!(c.own_attr("pole_location").is_some());
        assert!(c.own_attr("nonexistent").is_none());
        assert!(c.own_method("get_supplier_name").is_some());
        assert!(c.has_own_geometry());
    }

    #[test]
    fn optional_flag_is_recorded() {
        let c = pole_class();
        assert!(!c.own_attr("pole_type").unwrap().optional);
        assert!(c.own_attr("pole_picture").unwrap().optional);
    }

    #[test]
    fn schema_preserves_declaration_order() {
        let s = SchemaDef::new("phone_net")
            .class(ClassDef::new("Duct"))
            .class(pole_class())
            .class(ClassDef::new("Supplier"));
        assert_eq!(s.class_names(), vec!["Duct", "Pole", "Supplier"]);
        assert!(s.find_class("Pole").is_some());
        assert!(s.find_class("pole").is_none()); // names are case-sensitive
    }

    #[test]
    fn inheritance_parent_is_stored() {
        let c = ClassDef::new("AerialPole").extends("Pole");
        assert_eq!(c.parent.as_deref(), Some("Pole"));
    }
}
