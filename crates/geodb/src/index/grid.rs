//! A uniform grid index: fixed-size cells hashed by integer coordinates.
//!
//! The baseline spatial access method for experiment C3. Excellent for
//! uniformly distributed point data; degrades on skew and on large
//! rectangles (an object registers in every cell its bbox touches).

use std::collections::HashMap;

use crate::geometry::{Point, Rect};
use crate::instance::Oid;

use super::SpatialIndex;

/// Uniform grid over the plane with square cells of side `cell_size`.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell_size: f64,
    cells: HashMap<(i64, i64), Vec<Oid>>,
    entries: HashMap<Oid, Rect>,
}

impl GridIndex {
    /// Create a grid with the given cell side length (must be > 0).
    pub fn new(cell_size: f64) -> GridIndex {
        assert!(cell_size > 0.0, "cell size must be positive");
        GridIndex {
            cell_size,
            cells: HashMap::new(),
            entries: HashMap::new(),
        }
    }

    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of non-empty cells; exposed for diagnostics and benches.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    fn cell_of(&self, x: f64, y: f64) -> (i64, i64) {
        (
            (x / self.cell_size).floor() as i64,
            (y / self.cell_size).floor() as i64,
        )
    }

    fn cells_for(&self, r: &Rect) -> Vec<(i64, i64)> {
        if r.is_empty() {
            return Vec::new();
        }
        let (x0, y0) = self.cell_of(r.min.x, r.min.y);
        let (x1, y1) = self.cell_of(r.max.x, r.max.y);
        let mut out = Vec::with_capacity(((x1 - x0 + 1) * (y1 - y0 + 1)) as usize);
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                out.push((cx, cy));
            }
        }
        out
    }
}

impl SpatialIndex for GridIndex {
    fn insert(&mut self, oid: Oid, bbox: Rect) {
        if self.entries.contains_key(&oid) {
            self.remove(oid);
        }
        for cell in self.cells_for(&bbox) {
            self.cells.entry(cell).or_default().push(oid);
        }
        self.entries.insert(oid, bbox);
    }

    fn remove(&mut self, oid: Oid) -> bool {
        let Some(bbox) = self.entries.remove(&oid) else {
            return false;
        };
        for cell in self.cells_for(&bbox) {
            if let Some(v) = self.cells.get_mut(&cell) {
                v.retain(|o| *o != oid);
                if v.is_empty() {
                    self.cells.remove(&cell);
                }
            }
        }
        true
    }

    fn query_rect(&self, window: &Rect) -> Vec<Oid> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for cell in self.cells_for(window) {
            if let Some(v) = self.cells.get(&cell) {
                for &oid in v {
                    if seen.insert(oid) {
                        // Filter against the stored bbox: a cell can hold
                        // objects whose boxes don't reach the window.
                        if self.entries[&oid].intersects(window) {
                            out.push(oid);
                        }
                    }
                }
            }
        }
        out
    }

    fn nearest(&self, p: &Point, k: usize) -> Vec<Oid> {
        if k == 0 || self.entries.is_empty() {
            return Vec::new();
        }
        // Expanding ring search: examine cells in growing square rings
        // until we have k candidates and the ring distance exceeds the
        // k-th best distance.
        let (cx, cy) = self.cell_of(p.x, p.y);
        let mut best: Vec<(f64, Oid)> = Vec::new();
        let mut radius: i64 = 0;
        let max_radius = 1 + (self.entries.len() as f64).sqrt() as i64 + 1_000;
        loop {
            let mut any_cell = false;
            for dx in -radius..=radius {
                for dy in -radius..=radius {
                    // Only the new ring, not the interior.
                    if dx.abs() != radius && dy.abs() != radius {
                        continue;
                    }
                    if let Some(v) = self.cells.get(&(cx + dx, cy + dy)) {
                        any_cell = true;
                        for &oid in v {
                            let d = self.entries[&oid].distance_to_point(p);
                            if !best.iter().any(|(_, o)| *o == oid) {
                                best.push((d, oid));
                            }
                        }
                    }
                }
            }
            best.sort_by(|a, b| a.0.total_cmp(&b.0));
            best.truncate(k.max(best.len().min(k)));
            if best.len() >= k {
                // Safe to stop once the ring's minimum possible distance
                // exceeds our k-th best.
                let ring_min = (radius as f64) * self.cell_size - self.cell_size;
                if ring_min > best[k - 1].0 {
                    break;
                }
            }
            radius += 1;
            if radius > max_radius {
                break;
            }
            // Once every entry has been seen there is nothing more to find.
            if best.len() == self.entries.len() {
                break;
            }
            let _ = any_cell;
        }
        best.truncate(k);
        best.into_iter().map(|(_, o)| o).collect()
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn clone_box(&self) -> Box<dyn SpatialIndex> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_panics() {
        GridIndex::new(0.0);
    }

    #[test]
    fn spanning_object_registers_in_all_cells() {
        let mut g = GridIndex::new(1.0);
        g.insert(Oid(1), Rect::new(0.5, 0.5, 2.5, 0.6));
        assert_eq!(g.occupied_cells(), 3);
        // Query touching only the far cell still finds it once.
        let hits = g.query_rect(&Rect::new(2.4, 0.0, 3.0, 1.0));
        assert_eq!(hits, vec![Oid(1)]);
        // Query covering all cells returns it once, not thrice.
        let hits = g.query_rect(&Rect::new(0.0, 0.0, 3.0, 1.0));
        assert_eq!(hits, vec![Oid(1)]);
    }

    #[test]
    fn remove_cleans_all_cells() {
        let mut g = GridIndex::new(1.0);
        g.insert(Oid(1), Rect::new(0.5, 0.5, 2.5, 0.6));
        assert!(g.remove(Oid(1)));
        assert_eq!(g.occupied_cells(), 0);
        assert!(g.is_empty());
    }

    #[test]
    fn bbox_filter_prevents_false_positives() {
        let mut g = GridIndex::new(10.0);
        // Object in a corner of a large cell.
        g.insert(Oid(1), Rect::new(0.0, 0.0, 1.0, 1.0));
        // Window in the opposite corner of the same cell.
        let hits = g.query_rect(&Rect::new(8.0, 8.0, 9.0, 9.0));
        assert!(hits.is_empty());
    }

    #[test]
    fn nearest_on_skewed_data() {
        let mut g = GridIndex::new(1.0);
        g.insert(Oid(1), Rect::from_point(Point::new(0.0, 0.0)));
        g.insert(Oid(2), Rect::from_point(Point::new(50.0, 0.0)));
        g.insert(Oid(3), Rect::from_point(Point::new(51.0, 0.0)));
        let got = g.nearest(&Point::new(49.0, 0.0), 2);
        assert_eq!(got, vec![Oid(2), Oid(3)]);
        // k exceeding population returns all, nearest-first.
        let got = g.nearest(&Point::new(0.0, 0.0), 10);
        assert_eq!(got, vec![Oid(1), Oid(2), Oid(3)]);
    }

    #[test]
    fn negative_coordinates_work() {
        let mut g = GridIndex::new(2.0);
        g.insert(Oid(1), Rect::from_point(Point::new(-3.0, -3.0)));
        let hits = g.query_rect(&Rect::new(-4.0, -4.0, -2.0, -2.0));
        assert_eq!(hits, vec![Oid(1)]);
    }
}
