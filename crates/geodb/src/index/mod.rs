//! Spatial access methods.
//!
//! The Class-set window's presentation area shows "the extension of each
//! selected class in some format (typically allowing the user to grasp the
//! spatial relationships among class instances)". Populating a map viewport
//! is a rectangle query over the class extension; these indexes accelerate
//! it. Two implementations are provided so the benches can compare them
//! against a sequential scan (experiment C3):
//!
//! * [`rtree::RTree`] — a Guttman R-tree with quadratic splits;
//! * [`grid::GridIndex`] — a uniform grid (fixed cell size).

pub mod grid;
pub mod rtree;

pub use grid::GridIndex;
pub use rtree::RTree;

use crate::geometry::{Point, Rect};
use crate::instance::Oid;

/// Common interface of the spatial access methods.
pub trait SpatialIndex: Send + Sync {
    /// Insert an object with its bounding rectangle.
    fn insert(&mut self, oid: Oid, bbox: Rect);

    /// Remove an object; returns true if it was present.
    fn remove(&mut self, oid: Oid) -> bool;

    /// OIDs whose bounding rectangles intersect `window`.
    ///
    /// This is a *filter* step: callers refine against exact geometry.
    fn query_rect(&self, window: &Rect) -> Vec<Oid>;

    /// Up to `k` OIDs nearest to `p` by bounding-rectangle distance.
    fn nearest(&self, p: &Point, k: usize) -> Vec<Oid>;

    /// Number of indexed objects.
    fn len(&self) -> usize;

    /// Deep copy behind the trait object — the versioned store clones a
    /// class partition's index before applying an incremental change, so
    /// published snapshots stay immutable.
    fn clone_box(&self) -> Box<dyn SpatialIndex>;

    /// True when no objects are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod conformance {
    //! The same behavioural suite run against every implementation.
    use super::*;

    fn run_suite(mut idx: impl SpatialIndex) {
        assert!(idx.is_empty());
        // A 10x10 grid of unit points.
        for i in 0..10u64 {
            for j in 0..10u64 {
                idx.insert(
                    Oid(i * 10 + j),
                    Rect::from_point(Point::new(i as f64, j as f64)),
                );
            }
        }
        assert_eq!(idx.len(), 100);

        // Window covering the 3x3 corner.
        let mut hits = idx.query_rect(&Rect::new(-0.5, -0.5, 2.5, 2.5));
        hits.sort();
        let mut expect: Vec<Oid> = (0..3u64)
            .flat_map(|i| (0..3u64).map(move |j| Oid(i * 10 + j)))
            .collect();
        expect.sort();
        assert_eq!(hits, expect);

        // Empty window.
        assert!(idx
            .query_rect(&Rect::new(50.0, 50.0, 60.0, 60.0))
            .is_empty());

        // Nearest to (0,0): the corner point itself first.
        let near = idx.nearest(&Point::new(0.1, 0.1), 3);
        assert_eq!(near.len(), 3);
        assert_eq!(near[0], Oid(0));

        // Removal shrinks results.
        assert!(idx.remove(Oid(0)));
        assert!(!idx.remove(Oid(0)));
        assert_eq!(idx.len(), 99);
        let hits = idx.query_rect(&Rect::new(-0.5, -0.5, 0.5, 0.5));
        assert!(hits.is_empty());
    }

    #[test]
    fn rtree_conforms() {
        run_suite(RTree::new());
    }

    #[test]
    fn grid_conforms() {
        run_suite(GridIndex::new(2.0));
    }
}
