//! A Guttman R-tree with quadratic node splits.
//!
//! Arena-based: nodes live in a `Vec` and link by index, which keeps the
//! structure simple, cache-friendly and free of `unsafe`.

use std::collections::HashMap;

use crate::geometry::{Point, Rect};
use crate::instance::Oid;

use super::SpatialIndex;

/// Maximum entries per node before splitting.
const MAX_ENTRIES: usize = 8;
/// Minimum entries after a split (Guttman recommends M/2 for quadratic).
const MIN_ENTRIES: usize = MAX_ENTRIES / 2;

#[derive(Debug, Clone)]
enum Node {
    /// Children are node indexes with their covering rectangles.
    Internal(Vec<(Rect, usize)>),
    /// Leaf entries are stored objects.
    Leaf(Vec<(Rect, Oid)>),
}

impl Node {
    fn len(&self) -> usize {
        match self {
            Node::Internal(v) => v.len(),
            Node::Leaf(v) => v.len(),
        }
    }

    fn bbox(&self) -> Rect {
        match self {
            Node::Internal(v) => v.iter().fold(Rect::empty(), |a, (r, _)| a.union(r)),
            Node::Leaf(v) => v.iter().fold(Rect::empty(), |a, (r, _)| a.union(r)),
        }
    }
}

/// The R-tree itself.
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<Node>,
    root: usize,
    /// oid -> bbox; supports O(1) membership tests and removal lookups.
    entries: HashMap<Oid, Rect>,
}

impl Default for RTree {
    fn default() -> Self {
        Self::new()
    }
}

impl RTree {
    pub fn new() -> RTree {
        RTree {
            nodes: vec![Node::Leaf(Vec::new())],
            root: 0,
            entries: HashMap::new(),
        }
    }

    /// Bulk-build from an iterator (insertion-based; adequate for the
    /// workload sizes in the benches).
    pub fn from_items(items: impl IntoIterator<Item = (Oid, Rect)>) -> RTree {
        let mut t = RTree::new();
        for (oid, r) in items {
            t.insert(oid, r);
        }
        t
    }

    /// Sort-Tile-Recursive bulk load: packs leaves along x/y tiles,
    /// yielding near-100% node fill and better-clustered rectangles than
    /// insertion builds. Duplicate OIDs keep the last rectangle.
    pub fn bulk_load(items: impl IntoIterator<Item = (Oid, Rect)>) -> RTree {
        let mut entries: HashMap<Oid, Rect> = HashMap::new();
        for (oid, r) in items {
            entries.insert(oid, r);
        }
        if entries.is_empty() {
            return RTree::new();
        }

        // Leaf level via STR tiling.
        let mut leaves: Vec<(Rect, Oid)> = entries.iter().map(|(o, r)| (*r, *o)).collect();
        leaves.sort_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
        let n = leaves.len();
        let leaf_count = n.div_ceil(MAX_ENTRIES);
        let slice_count = (leaf_count as f64).sqrt().ceil() as usize;
        let slice_size = n.div_ceil(slice_count);

        let mut nodes: Vec<Node> = Vec::new();
        let mut level: Vec<(Rect, usize)> = Vec::new();
        for slice in leaves.chunks(slice_size.max(1)) {
            let mut slice: Vec<(Rect, Oid)> = slice.to_vec();
            slice.sort_by(|a, b| a.0.center().y.total_cmp(&b.0.center().y));
            for leaf in slice.chunks(MAX_ENTRIES) {
                let node = Node::Leaf(leaf.to_vec());
                let bbox = node.bbox();
                nodes.push(node);
                level.push((bbox, nodes.len() - 1));
            }
        }

        // Pack upper levels until a single root remains.
        while level.len() > 1 {
            let mut next: Vec<(Rect, usize)> = Vec::new();
            let count = level.len().div_ceil(MAX_ENTRIES);
            let slices = (count as f64).sqrt().ceil() as usize;
            let slice_size = level.len().div_ceil(slices).max(1);
            level.sort_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
            for slice in level.chunks(slice_size) {
                let mut slice: Vec<(Rect, usize)> = slice.to_vec();
                slice.sort_by(|a, b| a.0.center().y.total_cmp(&b.0.center().y));
                for group in slice.chunks(MAX_ENTRIES) {
                    let node = Node::Internal(group.to_vec());
                    let bbox = node.bbox();
                    nodes.push(node);
                    next.push((bbox, nodes.len() - 1));
                }
            }
            level = next;
        }

        RTree {
            root: level[0].1,
            nodes,
            entries,
        }
    }

    /// Average node fill factor (entries per node / MAX); diagnostics for
    /// the bulk-load ablation.
    pub fn fill_factor(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let total: usize = self.nodes.iter().map(Node::len).sum();
        total as f64 / (self.nodes.len() * MAX_ENTRIES) as f64
    }

    /// Height of the tree (leaf = 1); exposed for tests and benches.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut cur = self.root;
        loop {
            match &self.nodes[cur] {
                Node::Leaf(_) => return h,
                Node::Internal(children) => {
                    cur = children.first().map(|&(_, c)| c).unwrap_or(cur);
                    if children.is_empty() {
                        return h;
                    }
                    h += 1;
                }
            }
        }
    }

    /// Choose the leaf whose enlargement is minimal (ties: smaller area).
    fn choose_leaf(&self, bbox: &Rect) -> Vec<usize> {
        let mut path = vec![self.root];
        let mut cur = self.root;
        loop {
            match &self.nodes[cur] {
                Node::Leaf(_) => return path,
                Node::Internal(children) => {
                    let mut best = 0usize;
                    let mut best_enl = f64::INFINITY;
                    let mut best_area = f64::INFINITY;
                    for (i, (r, _)) in children.iter().enumerate() {
                        let enl = r.enlargement(bbox);
                        let area = r.area();
                        if enl < best_enl || (enl == best_enl && area < best_area) {
                            best = i;
                            best_enl = enl;
                            best_area = area;
                        }
                    }
                    cur = children[best].1;
                    path.push(cur);
                }
            }
        }
    }

    /// Quadratic split of a set of rectangles into two groups; returns the
    /// indexes assigned to each group.
    fn quadratic_partition(rects: &[Rect]) -> (Vec<usize>, Vec<usize>) {
        debug_assert!(rects.len() >= 2);
        // Pick seeds: the pair wasting the most area if grouped.
        let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                let waste = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
                if waste > worst {
                    worst = waste;
                    s1 = i;
                    s2 = j;
                }
            }
        }
        let mut g1 = vec![s1];
        let mut g2 = vec![s2];
        let mut bb1 = rects[s1];
        let mut bb2 = rects[s2];
        let mut rest: Vec<usize> = (0..rects.len()).filter(|&i| i != s1 && i != s2).collect();

        while let Some(pos) = {
            // Force-assign when a group must absorb all remaining entries
            // to reach the minimum fill.
            if g1.len() + rest.len() == MIN_ENTRIES {
                g1.append(&mut rest);
                for &i in &g1 {
                    bb1 = bb1.union(&rects[i]);
                }
                None
            } else if g2.len() + rest.len() == MIN_ENTRIES {
                g2.append(&mut rest);
                for &i in &g2 {
                    bb2 = bb2.union(&rects[i]);
                }
                None
            } else if rest.is_empty() {
                None
            } else {
                // PickNext: maximal preference difference.
                let mut best = 0usize;
                let mut best_diff = f64::NEG_INFINITY;
                for (k, &i) in rest.iter().enumerate() {
                    let d1 = bb1.enlargement(&rects[i]);
                    let d2 = bb2.enlargement(&rects[i]);
                    let diff = (d1 - d2).abs();
                    if diff > best_diff {
                        best_diff = diff;
                        best = k;
                    }
                }
                Some(best)
            }
        } {
            let i = rest.swap_remove(pos);
            let d1 = bb1.enlargement(&rects[i]);
            let d2 = bb2.enlargement(&rects[i]);
            let to_g1 = d1 < d2
                || (d1 == d2 && bb1.area() < bb2.area())
                || (d1 == d2 && bb1.area() == bb2.area() && g1.len() <= g2.len());
            if to_g1 {
                g1.push(i);
                bb1 = bb1.union(&rects[i]);
            } else {
                g2.push(i);
                bb2 = bb2.union(&rects[i]);
            }
        }
        (g1, g2)
    }

    /// Split an overfull node, returning the index of the new sibling.
    fn split(&mut self, node_idx: usize) -> usize {
        let sibling = match &mut self.nodes[node_idx] {
            Node::Leaf(entries) => {
                let rects: Vec<Rect> = entries.iter().map(|(r, _)| *r).collect();
                let (g1, g2) = Self::quadratic_partition(&rects);
                let old = std::mem::take(entries);
                let mut keep = Vec::with_capacity(g1.len());
                let mut give = Vec::with_capacity(g2.len());
                for (i, e) in old.into_iter().enumerate() {
                    if g1.contains(&i) {
                        keep.push(e);
                    } else {
                        give.push(e);
                    }
                }
                *entries = keep;
                Node::Leaf(give)
            }
            Node::Internal(children) => {
                let rects: Vec<Rect> = children.iter().map(|(r, _)| *r).collect();
                let (g1, g2) = Self::quadratic_partition(&rects);
                let old = std::mem::take(children);
                let mut keep = Vec::with_capacity(g1.len());
                let mut give = Vec::with_capacity(g2.len());
                for (i, e) in old.into_iter().enumerate() {
                    if g1.contains(&i) {
                        keep.push(e);
                    } else {
                        give.push(e);
                    }
                }
                *children = keep;
                Node::Internal(give)
            }
        };
        self.nodes.push(sibling);
        self.nodes.len() - 1
    }

    fn collect_rect(&self, node: usize, window: &Rect, out: &mut Vec<Oid>) {
        match &self.nodes[node] {
            Node::Leaf(entries) => {
                for (r, oid) in entries {
                    if r.intersects(window) {
                        out.push(*oid);
                    }
                }
            }
            Node::Internal(children) => {
                for (r, c) in children {
                    if r.intersects(window) {
                        self.collect_rect(*c, window, out);
                    }
                }
            }
        }
    }
}

impl SpatialIndex for RTree {
    fn insert(&mut self, oid: Oid, bbox: Rect) {
        // Re-inserting an oid replaces its old entry.
        if self.entries.contains_key(&oid) {
            self.remove(oid);
        }
        self.entries.insert(oid, bbox);

        let path = self.choose_leaf(&bbox);
        let leaf = *path.last().expect("path never empty");
        if let Node::Leaf(entries) = &mut self.nodes[leaf] {
            entries.push((bbox, oid));
        } else {
            unreachable!("choose_leaf returns a leaf");
        }

        // Walk back up, splitting overfull nodes and refreshing rectangles.
        let mut split_of: Option<(usize, usize)> = None; // (node, new sibling)
        for depth in (0..path.len()).rev() {
            let node_idx = path[depth];

            // Install a pending split from the child level.
            if let Some((child, sibling)) = split_of.take() {
                let sib_bbox = self.nodes[sibling].bbox();
                let child_bbox = self.nodes[child].bbox();
                if let Node::Internal(children) = &mut self.nodes[node_idx] {
                    if let Some(slot) = children.iter_mut().find(|(_, c)| *c == child) {
                        slot.0 = child_bbox;
                    }
                    children.push((sib_bbox, sibling));
                }
            }

            if self.nodes[node_idx].len() > MAX_ENTRIES {
                let sibling = self.split(node_idx);
                if depth == 0 {
                    // Root split: grow the tree.
                    let left_bbox = self.nodes[node_idx].bbox();
                    let right_bbox = self.nodes[sibling].bbox();
                    let new_root =
                        Node::Internal(vec![(left_bbox, node_idx), (right_bbox, sibling)]);
                    self.nodes.push(new_root);
                    self.root = self.nodes.len() - 1;
                } else {
                    split_of = Some((node_idx, sibling));
                }
            } else if depth > 0 {
                // Refresh this child's rectangle in its parent.
                let bbox = self.nodes[node_idx].bbox();
                let parent = path[depth - 1];
                if let Node::Internal(children) = &mut self.nodes[parent] {
                    if let Some(slot) = children.iter_mut().find(|(_, c)| *c == node_idx) {
                        slot.0 = bbox;
                    }
                }
            }
        }
    }

    fn remove(&mut self, oid: Oid) -> bool {
        let Some(bbox) = self.entries.remove(&oid) else {
            return false;
        };
        // Find and remove the leaf entry along the bbox path. We do not
        // implement Guttman's CondenseTree re-insertion; under-full nodes
        // are tolerated (queries stay correct, packing degrades slightly),
        // which is the standard trade-off for delete-light workloads.
        fn recurse(nodes: &mut Vec<Node>, node: usize, oid: Oid, bbox: &Rect) -> bool {
            let found = match &mut nodes[node] {
                Node::Leaf(entries) => {
                    let before = entries.len();
                    entries.retain(|(_, o)| *o != oid);
                    entries.len() != before
                }
                Node::Internal(children) => {
                    let kids: Vec<usize> = children
                        .iter()
                        .filter(|(r, _)| r.intersects(bbox))
                        .map(|(_, c)| *c)
                        .collect();
                    let mut hit = false;
                    for c in kids {
                        if recurse(nodes, c, oid, bbox) {
                            hit = true;
                            break;
                        }
                    }
                    hit
                }
            };
            if found {
                // Refresh child rectangles on the way out.
                if let Node::Internal(children) = &nodes[node] {
                    let updated: Vec<(Rect, usize)> = children
                        .iter()
                        .map(|&(_, c)| (nodes[c].bbox(), c))
                        .collect();
                    if let Node::Internal(children) = &mut nodes[node] {
                        *children = updated;
                    }
                }
            }
            found
        }
        recurse(&mut self.nodes, self.root, oid, &bbox)
    }

    fn query_rect(&self, window: &Rect) -> Vec<Oid> {
        let mut out = Vec::new();
        self.collect_rect(self.root, window, &mut out);
        out
    }

    fn nearest(&self, p: &Point, k: usize) -> Vec<Oid> {
        if k == 0 || self.entries.is_empty() {
            return Vec::new();
        }
        // Best-first search over nodes by min-distance.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Cand(f64, Item);
        #[derive(PartialEq, Clone, Copy)]
        enum Item {
            Node(usize),
            Entry(Oid),
        }
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        let mut heap: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
        heap.push(Reverse(Cand(0.0, Item::Node(self.root))));
        let mut out = Vec::with_capacity(k);
        while let Some(Reverse(Cand(_, item))) = heap.pop() {
            match item {
                Item::Entry(oid) => {
                    out.push(oid);
                    if out.len() == k {
                        break;
                    }
                }
                Item::Node(n) => match &self.nodes[n] {
                    Node::Leaf(entries) => {
                        for (r, oid) in entries {
                            heap.push(Reverse(Cand(r.distance_to_point(p), Item::Entry(*oid))));
                        }
                    }
                    Node::Internal(children) => {
                        for (r, c) in children {
                            heap.push(Reverse(Cand(r.distance_to_point(p), Item::Node(*c))));
                        }
                    }
                },
            }
        }
        out
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn clone_box(&self) -> Box<dyn SpatialIndex> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_rects(n: usize, seed: u64) -> Vec<(Oid, Rect)> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x = rng.gen_range(0.0..1000.0);
                let y = rng.gen_range(0.0..1000.0);
                let w = rng.gen_range(0.0..5.0);
                let h = rng.gen_range(0.0..5.0);
                (Oid(i as u64), Rect::new(x, y, x + w, y + h))
            })
            .collect()
    }

    /// Brute-force reference.
    fn scan(items: &[(Oid, Rect)], window: &Rect) -> Vec<Oid> {
        let mut v: Vec<Oid> = items
            .iter()
            .filter(|(_, r)| r.intersects(window))
            .map(|(o, _)| *o)
            .collect();
        v.sort();
        v
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        let items = random_rects(500, 42);
        let tree = RTree::from_items(items.iter().cloned());
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..50 {
            let x = rng.gen_range(0.0..900.0);
            let y = rng.gen_range(0.0..900.0);
            let window = Rect::new(
                x,
                y,
                x + rng.gen_range(1.0..150.0),
                y + rng.gen_range(1.0..150.0),
            );
            let mut got = tree.query_rect(&window);
            got.sort();
            assert_eq!(got, scan(&items, &window));
        }
    }

    #[test]
    fn tree_grows_in_height() {
        let items = random_rects(500, 1);
        let tree = RTree::from_items(items);
        assert!(tree.height() >= 3, "height = {}", tree.height());
        assert_eq!(tree.len(), 500);
    }

    #[test]
    fn reinsert_replaces_entry() {
        let mut tree = RTree::new();
        tree.insert(Oid(1), Rect::new(0.0, 0.0, 1.0, 1.0));
        tree.insert(Oid(1), Rect::new(100.0, 100.0, 101.0, 101.0));
        assert_eq!(tree.len(), 1);
        assert!(tree.query_rect(&Rect::new(0.0, 0.0, 2.0, 2.0)).is_empty());
        assert_eq!(
            tree.query_rect(&Rect::new(99.0, 99.0, 102.0, 102.0)),
            vec![Oid(1)]
        );
    }

    #[test]
    fn remove_after_splits_keeps_queries_exact() {
        let items = random_rects(300, 5);
        let mut tree = RTree::from_items(items.iter().cloned());
        // Remove every third item.
        let mut remaining = Vec::new();
        for (i, (oid, r)) in items.iter().enumerate() {
            if i % 3 == 0 {
                assert!(tree.remove(*oid));
            } else {
                remaining.push((*oid, *r));
            }
        }
        assert_eq!(tree.len(), remaining.len());
        let window = Rect::new(200.0, 200.0, 600.0, 600.0);
        let mut got = tree.query_rect(&window);
        got.sort();
        assert_eq!(got, scan(&remaining, &window));
    }

    #[test]
    fn nearest_returns_true_knn_for_points() {
        // For point data, bbox distance == point distance, so kNN is exact.
        let items: Vec<(Oid, Rect)> = (0..100u64)
            .map(|i| {
                let p = Point::new((i % 10) as f64 * 10.0, (i / 10) as f64 * 10.0);
                (Oid(i), Rect::from_point(p))
            })
            .collect();
        let tree = RTree::from_items(items.iter().cloned());
        let q = Point::new(12.0, 13.0);
        let got = tree.nearest(&q, 4);
        // Brute force.
        let mut all: Vec<(f64, Oid)> = items
            .iter()
            .map(|(o, r)| (r.distance_to_point(&q), *o))
            .collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0));
        let expect: Vec<Oid> = all[..4].iter().map(|(_, o)| *o).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn bulk_load_matches_brute_force() {
        let items = random_rects(777, 99);
        let tree = RTree::bulk_load(items.iter().cloned());
        assert_eq!(tree.len(), 777);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..30 {
            let x = rng.gen_range(0.0..900.0);
            let y = rng.gen_range(0.0..900.0);
            let window = Rect::new(x, y, x + 120.0, y + 120.0);
            let mut got = tree.query_rect(&window);
            got.sort();
            assert_eq!(got, scan(&items, &window));
        }
    }

    #[test]
    fn bulk_load_packs_tighter_than_inserts() {
        let items = random_rects(1000, 4);
        let inserted = RTree::from_items(items.iter().cloned());
        let bulk = RTree::bulk_load(items.iter().cloned());
        assert!(
            bulk.fill_factor() > inserted.fill_factor(),
            "bulk {} <= inserted {}",
            bulk.fill_factor(),
            inserted.fill_factor()
        );
        assert!(bulk.fill_factor() > 0.8, "STR should pack >80% full");
    }

    #[test]
    fn bulk_load_edge_cases() {
        let empty = RTree::bulk_load(std::iter::empty());
        assert!(empty.is_empty());
        assert!(empty.query_rect(&Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());

        let one = RTree::bulk_load([(Oid(1), Rect::from_point(Point::new(1.0, 1.0)))]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.query_rect(&Rect::new(0.0, 0.0, 2.0, 2.0)), vec![Oid(1)]);

        // Duplicate oids: last wins.
        let dup = RTree::bulk_load([
            (Oid(1), Rect::from_point(Point::new(0.0, 0.0))),
            (Oid(1), Rect::from_point(Point::new(9.0, 9.0))),
        ]);
        assert_eq!(dup.len(), 1);
        assert!(dup
            .query_rect(&Rect::new(8.0, 8.0, 10.0, 10.0))
            .contains(&Oid(1)));
    }

    #[test]
    fn bulk_loaded_tree_supports_mutation() {
        let items = random_rects(100, 12);
        let mut tree = RTree::bulk_load(items.iter().cloned());
        tree.insert(Oid(5000), Rect::from_point(Point::new(-50.0, -50.0)));
        assert!(tree.remove(items[0].0));
        assert_eq!(tree.len(), 100);
        let hits = tree.query_rect(&Rect::new(-51.0, -51.0, -49.0, -49.0));
        assert_eq!(hits, vec![Oid(5000)]);
    }

    #[test]
    fn nearest_edge_cases() {
        let tree = RTree::new();
        assert!(tree.nearest(&Point::ORIGIN, 3).is_empty());
        let mut tree = RTree::new();
        tree.insert(Oid(9), Rect::from_point(Point::new(1.0, 1.0)));
        assert_eq!(tree.nearest(&Point::ORIGIN, 0), Vec::<Oid>::new());
        // k larger than population returns everything.
        assert_eq!(tree.nearest(&Point::ORIGIN, 10), vec![Oid(9)]);
    }
}
