//! Whole-database snapshots.
//!
//! Persistence serializes the *logical* state (schemas + instances) as
//! JSON rather than the physical pages: the snapshot stays readable,
//! version-tolerant, and independent of page-layout changes. Loading
//! rebuilds extents, indexes and the buffer pool from scratch.

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::db::Database;
use crate::epoch::Epoch;
use crate::error::{GeoDbError, Result, SnapshotCause};
use crate::instance::Instance;
use crate::schema::SchemaDef;
use crate::store::{DbSnapshot, DbStore};

/// Format version stamped into every snapshot.
const VERSION: u32 = 1;

/// The one full-state document: every save path (database save, pinned
/// snapshot save, WAL checkpoint, replication full sync) builds this
/// struct and every load path decodes it, so the encodings can never
/// drift apart.
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct SnapshotDoc {
    version: u32,
    name: String,
    schemas: Vec<SchemaDef>,
    /// `(schema, instance)` pairs in OID order.
    objects: Vec<(String, Instance)>,
}

/// Build the document from a mutable database (write-side state).
pub(crate) fn doc_from_db(db: &mut Database) -> Result<SnapshotDoc> {
    Ok(SnapshotDoc {
        version: VERSION,
        name: db.name().to_string(),
        schemas: db.schemas(),
        objects: db.dump_objects()?,
    })
}

/// Build the document from a pinned snapshot (read-side state).
pub(crate) fn doc_from_snapshot(snap: &DbSnapshot) -> SnapshotDoc {
    SnapshotDoc {
        version: VERSION,
        name: snap.name().to_string(),
        schemas: snap.schemas(),
        objects: snap.dump_objects(),
    }
}

/// The shared encoder: one JSON shape for every save path.
pub(crate) fn doc_to_json(doc: &SnapshotDoc) -> Result<String> {
    serde_json::to_string_pretty(doc).map_err(|e| GeoDbError::Snapshot(e.to_string()))
}

/// The shared decoder: version-check the document and rebuild a
/// database from it (extents, indexes and the OID allocator included).
pub(crate) fn db_from_doc(doc: SnapshotDoc) -> Result<Database> {
    if doc.version != VERSION {
        return Err(GeoDbError::snapshot_load(
            "check snapshot version",
            SnapshotCause::Format(format!(
                "unsupported snapshot version {} (expected {VERSION})",
                doc.version
            )),
        ));
    }
    let mut db = Database::new(doc.name);
    for schema in doc.schemas {
        db.register_schema(schema)?;
    }
    for (schema, inst) in doc.objects {
        db.restore_instance(&schema, inst)?;
    }
    db.drain_events();
    Ok(db)
}

/// Serialize a database to a JSON string.
pub fn save(db: &mut Database) -> Result<String> {
    doc_to_json(&doc_from_db(db)?)
}

/// Serialize a pinned in-memory snapshot to a JSON string.
///
/// This is the read-path twin of [`save`]: it captures exactly the epoch
/// the caller holds, without touching the store's writer — concurrent
/// writers publishing newer epochs cannot leak into the output.
pub fn save_snapshot(snap: &DbSnapshot) -> Result<String> {
    doc_to_json(&doc_from_snapshot(snap))
}

/// Load a JSON snapshot into an existing store, replacing its contents
/// and publishing a fresh epoch. Returns the new epoch; readers pinned
/// to older epochs keep their view until they re-pin.
pub fn restore_store(store: &DbStore, json: &str) -> Result<Epoch> {
    store.replace(load(json)?)
}

/// Load a JSON snapshot straight into a new versioned store (epoch 1).
pub fn load_store(json: &str) -> Result<DbStore> {
    Ok(DbStore::new(load(json)?))
}

/// Reconstruct a database from a JSON snapshot.
///
/// Malformed input never panics: parse failures, format-version
/// mismatches and file I/O errors all surface as
/// [`GeoDbError::SnapshotLoad`] carrying a typed [`SnapshotCause`]
/// reachable through `Error::source()`.
pub fn load(json: &str) -> Result<Database> {
    let doc: SnapshotDoc = serde_json::from_str(json).map_err(|e| {
        GeoDbError::snapshot_load(
            "parse snapshot document",
            SnapshotCause::Json(e.to_string()),
        )
    })?;
    db_from_doc(doc)
}

/// Save to a file.
pub fn save_to_file(db: &mut Database, path: impl AsRef<Path>) -> Result<()> {
    let json = save(db)?;
    std::fs::write(path.as_ref(), json).map_err(|e| {
        GeoDbError::snapshot_load(
            format!("write {:?}", path.as_ref()),
            SnapshotCause::Io(e.to_string()),
        )
    })
}

/// Load from a file.
pub fn load_from_file(path: impl AsRef<Path>) -> Result<Database> {
    let json = std::fs::read_to_string(path.as_ref()).map_err(|e| {
        GeoDbError::snapshot_load(
            format!("read {:?}", path.as_ref()),
            SnapshotCause::Io(e.to_string()),
        )
    })?;
    load(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Geometry, Point, Rect};
    use crate::schema::ClassDef;
    use crate::value::{AttrType, Value};

    fn sample_db() -> Database {
        let mut db = Database::new("snap");
        db.register_schema(
            SchemaDef::new("s").class(
                ClassDef::new("City")
                    .attr("name", AttrType::Text)
                    .attr("center", AttrType::Geometry),
            ),
        )
        .unwrap();
        for (name, x) in [("Campinas", 0.0), ("Tandil", 10.0)] {
            db.insert(
                "s",
                "City",
                vec![
                    ("name".into(), name.into()),
                    ("center".into(), Geometry::Point(Point::new(x, 0.0)).into()),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn round_trip_preserves_everything() {
        let mut db = sample_db();
        let oids_before: Vec<_> = db
            .get_class("s", "City", false)
            .unwrap()
            .iter()
            .map(|i| i.oid)
            .collect();
        let json = save(&mut db).unwrap();
        let mut db2 = load(&json).unwrap();

        let cities = db2.get_class("s", "City", false).unwrap();
        assert_eq!(cities.len(), 2);
        let oids_after: Vec<_> = cities.iter().map(|i| i.oid).collect();
        assert_eq!(oids_before, oids_after, "OIDs survive the round trip");
        assert_eq!(cities[0].get("name"), &Value::Text("Campinas".into()));

        // Spatial index was rebuilt.
        let hits = db2
            .window_query("s", "City", Rect::new(9.0, -1.0, 11.0, 1.0))
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].get("name"), &Value::Text("Tandil".into()));

        // New inserts do not collide with restored OIDs.
        let new_oid = db2
            .insert(
                "s",
                "City",
                vec![
                    ("name".into(), "Bari".into()),
                    (
                        "center".into(),
                        Geometry::Point(Point::new(5.0, 5.0)).into(),
                    ),
                ],
            )
            .unwrap();
        assert!(!oids_before.contains(&new_oid));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut db = sample_db();
        let json = save(&mut db).unwrap();
        let bad = json.replace("\"version\": 1", "\"version\": 99");
        match load(&bad) {
            Err(GeoDbError::SnapshotLoad { source, .. }) => {
                assert!(matches!(*source, SnapshotCause::Format(_)));
            }
            other => panic!("expected SnapshotLoad, got {other:?}"),
        }
    }

    #[test]
    fn garbage_input_is_rejected_with_a_source_chain() {
        use std::error::Error as _;
        for garbage in ["not json", "{}", "[1,2,3]"] {
            match load(garbage) {
                Err(err @ GeoDbError::SnapshotLoad { .. }) => {
                    let source = err.source().expect("load errors carry a source");
                    assert!(matches!(
                        source.downcast_ref::<SnapshotCause>(),
                        Some(SnapshotCause::Json(_))
                    ));
                }
                other => panic!("expected SnapshotLoad, got {other:?}"),
            }
        }
    }

    #[test]
    fn store_round_trip_bumps_epoch_and_preserves_pins() {
        use crate::store::DbStore;

        let store = DbStore::new(sample_db());
        assert_eq!(store.epoch(), 1);

        // Saving goes through a pinned snapshot: writes racing the save
        // can't change what this epoch serializes.
        let pinned = store.snapshot();
        let json = save_snapshot(&pinned).unwrap();

        // Restoring into the same store publishes a fresh epoch...
        let mut reader = store.reader();
        let before = std::sync::Arc::clone(reader.pin());
        let epoch = restore_store(&store, &json).unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(store.epoch(), 2);
        // ...while the old pin still serves its epoch.
        assert_eq!(before.epoch(), 1);
        assert_eq!(before.get_class("s", "City", false).unwrap().len(), 2);

        // The restored state round-trips byte-identically.
        let json2 = save_snapshot(&store.snapshot()).unwrap();
        assert_eq!(json, json2, "snapshot JSON is stable across a restore");

        // And a standalone load yields an equivalent fresh store.
        let fresh = load_store(&json).unwrap();
        assert_eq!(fresh.epoch(), 1);
        let cities = fresh.snapshot().get_class("s", "City", false).unwrap();
        assert_eq!(cities.len(), 2);
        assert_eq!(cities[0].get("name"), &Value::Text("Campinas".into()));
    }

    #[test]
    fn save_snapshot_matches_database_save() {
        use crate::store::DbStore;

        let mut db = sample_db();
        let via_db = save(&mut db).unwrap();
        db.drain_events();
        let store = DbStore::new(db);
        let via_snap = save_snapshot(&store.snapshot()).unwrap();
        assert_eq!(via_db, via_snap, "both save paths emit the same document");
    }

    #[test]
    fn file_round_trip() {
        let mut db = sample_db();
        let path = std::env::temp_dir().join(format!("geodb-snap-{}.json", std::process::id()));
        save_to_file(&mut db, &path).unwrap();
        let mut db2 = load_from_file(&path).unwrap();
        assert_eq!(db2.get_class("s", "City", false).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
