//! The [`Epoch`] newtype: a published snapshot version.
//!
//! Epochs used to travel through store/WAL/dispatcher plumbing as raw
//! `u64`s, which made them interchangeable with OIDs, rule-base
//! generations and byte counts at type-check time. The newtype keeps
//! the arithmetic that is actually meaningful — ordering, `+ n` steps,
//! and `a - b` *lag* — and nothing else.
//!
//! Serialization is transparent (an `Epoch` is a bare `u64` on the
//! wire), so WAL frames, checkpoint metadata and snapshot documents
//! written before the newtype keep loading unchanged.

use serde::{Deserialize, Serialize};

/// A snapshot version published by a store. Ordered, steppable,
/// serialized as a bare `u64`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The pre-history epoch (no snapshot published yet / volatile
    /// store's durable frontier).
    pub const ZERO: Epoch = Epoch(0);

    /// The raw value (metrics, atomics, wire formats).
    pub fn get(self) -> u64 {
        self.0
    }

    /// The next epoch in sequence.
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }

    /// How far `self` is ahead of `behind` (0 if it is not).
    pub fn lag_from(self, behind: Epoch) -> u64 {
        self.0.saturating_sub(behind.0)
    }
}

impl std::fmt::Display for Epoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl From<u64> for Epoch {
    fn from(v: u64) -> Epoch {
        Epoch(v)
    }
}

impl From<Epoch> for u64 {
    fn from(e: Epoch) -> u64 {
        e.0
    }
}

impl PartialEq<u64> for Epoch {
    fn eq(&self, other: &u64) -> bool {
        self.0 == *other
    }
}

impl PartialEq<Epoch> for u64 {
    fn eq(&self, other: &Epoch) -> bool {
        *self == other.0
    }
}

impl PartialOrd<u64> for Epoch {
    fn partial_cmp(&self, other: &u64) -> Option<std::cmp::Ordering> {
        self.0.partial_cmp(other)
    }
}

impl PartialOrd<Epoch> for u64 {
    fn partial_cmp(&self, other: &Epoch) -> Option<std::cmp::Ordering> {
        self.partial_cmp(&other.0)
    }
}

impl std::ops::Add<u64> for Epoch {
    type Output = Epoch;
    fn add(self, steps: u64) -> Epoch {
        Epoch(self.0 + steps)
    }
}

/// `a - b` is the *lag* between two epochs, saturating at zero — the
/// only subtraction that means anything for versions.
impl std::ops::Sub for Epoch {
    type Output = u64;
    fn sub(self, other: Epoch) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_stepping_and_lag() {
        let e = Epoch(5);
        assert_eq!(e.next(), Epoch(6));
        assert_eq!(e + 3, Epoch(8));
        assert_eq!(Epoch(8) - e, 3);
        assert_eq!(e - Epoch(8), 0, "lag saturates");
        assert!(e > Epoch(4));
        assert!(e > 4u64);
        assert!(4u64 < e);
        assert_eq!(e, 5u64);
        assert_eq!(5u64, e);
        assert_eq!(Epoch::default(), Epoch::ZERO);
    }

    #[test]
    fn serializes_as_bare_u64() {
        let json = serde_json::to_string(&Epoch(42)).unwrap();
        assert_eq!(json, "42");
        let back: Epoch = serde_json::from_str("42").unwrap();
        assert_eq!(back, Epoch(42));
    }
}
