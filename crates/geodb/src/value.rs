//! Attribute types and runtime values of the object-oriented data model.
//!
//! The type system mirrors the paper's `Pole` example (Fig. 5): integers,
//! floats, text, tuples, references to other classes, geometry and bitmap
//! attributes.

use serde::{Deserialize, Serialize};

use crate::geometry::{Geometry, GeometryKind};
use crate::instance::Oid;

/// Declared type of a class attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrType {
    Int,
    Float,
    Text,
    Bool,
    /// Nested record of named fields, e.g. `pole_composition: tuple(...)`.
    Tuple(Vec<(String, AttrType)>),
    /// Reference to an instance of the named class, e.g. `pole_supplier: Supplier`.
    Ref(String),
    /// Spatial attribute, e.g. `pole_location: Geometry`.
    Geometry,
    /// Raster attribute, e.g. `pole_picture: bitmap`.
    Bitmap,
    /// Homogeneous collection.
    List(Box<AttrType>),
}

impl AttrType {
    /// Human-readable name, used in error messages and the Schema window.
    pub fn name(&self) -> String {
        match self {
            AttrType::Int => "int".into(),
            AttrType::Float => "float".into(),
            AttrType::Text => "text".into(),
            AttrType::Bool => "bool".into(),
            AttrType::Tuple(fields) => {
                let inner = fields
                    .iter()
                    .map(|(n, t)| format!("{n}: {}", t.name()))
                    .collect::<Vec<_>>()
                    .join("; ");
                format!("tuple({inner})")
            }
            AttrType::Ref(c) => c.clone(),
            AttrType::Geometry => "Geometry".into(),
            AttrType::Bitmap => "bitmap".into(),
            AttrType::List(t) => format!("list({})", t.name()),
        }
    }
}

/// A runtime value stored in an instance attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Text(String),
    Bool(bool),
    /// Field values in declaration order of the tuple type.
    Tuple(Vec<(String, Value)>),
    Ref(Oid),
    Geometry(Geometry),
    /// Raw raster bytes (kept opaque; renderers show a placeholder).
    Bitmap(Vec<u8>),
    List(Vec<Value>),
}

impl Value {
    /// Short tag naming the value's runtime type.
    pub fn type_name(&self) -> String {
        match self {
            Value::Null => "null".into(),
            Value::Int(_) => "int".into(),
            Value::Float(_) => "float".into(),
            Value::Text(_) => "text".into(),
            Value::Bool(_) => "bool".into(),
            Value::Tuple(_) => "tuple".into(),
            Value::Ref(_) => "ref".into(),
            Value::Geometry(_) => "Geometry".into(),
            Value::Bitmap(_) => "bitmap".into(),
            Value::List(_) => "list".into(),
        }
    }

    /// Structural type check against a declared attribute type.
    ///
    /// `Null` matches every type; optionality is enforced separately at
    /// insert time. Ints are *not* coerced to floats — the catalog insists
    /// on exact kinds so presentation rules can rely on them.
    pub fn matches(&self, ty: &AttrType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Int(_), AttrType::Int) => true,
            (Value::Float(_), AttrType::Float) => true,
            (Value::Text(_), AttrType::Text) => true,
            (Value::Bool(_), AttrType::Bool) => true,
            (Value::Ref(_), AttrType::Ref(_)) => true,
            (Value::Geometry(_), AttrType::Geometry) => true,
            (Value::Bitmap(_), AttrType::Bitmap) => true,
            (Value::Tuple(vals), AttrType::Tuple(fields)) => {
                vals.len() == fields.len()
                    && vals
                        .iter()
                        .zip(fields)
                        .all(|((vn, v), (fn_, ft))| vn == fn_ && v.matches(ft))
            }
            (Value::List(items), AttrType::List(elem)) => items.iter().all(|v| v.matches(elem)),
            _ => false,
        }
    }

    /// Geometry payload if this is a spatial value.
    pub fn as_geometry(&self) -> Option<&Geometry> {
        match self {
            Value::Geometry(g) => Some(g),
            _ => None,
        }
    }

    /// Geometry kind if spatial.
    pub fn geometry_kind(&self) -> Option<GeometryKind> {
        self.as_geometry().map(Geometry::kind)
    }

    /// Look up a field of a tuple value.
    pub fn tuple_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Tuple(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Render the value for the default (generic) presentation.
    pub fn display_text(&self) -> String {
        match self {
            Value::Null => "—".into(),
            Value::Int(i) => i.to_string(),
            Value::Float(x) => format!("{x}"),
            Value::Text(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
            Value::Tuple(fields) => fields
                .iter()
                .map(|(n, v)| format!("{n}={}", v.display_text()))
                .collect::<Vec<_>>()
                .join(", "),
            Value::Ref(oid) => format!("→#{}", oid.0),
            Value::Geometry(g) => crate::geometry::wkt::to_wkt(g),
            Value::Bitmap(b) => format!("[bitmap {} bytes]", b.len()),
            Value::List(items) => format!(
                "[{}]",
                items
                    .iter()
                    .map(Value::display_text)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        }
    }

    /// Total ordering usable for comparison predicates. Values of
    /// different kinds order by kind tag; `Null` sorts first.
    pub fn compare(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 3,
                Value::Text(_) => 4,
                Value::Tuple(_) => 5,
                Value::Ref(_) => 6,
                Value::Geometry(_) => 7,
                Value::Bitmap(_) => 8,
                Value::List(_) => 9,
            }
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            // Mixed numerics compare numerically so `height > 9` works on floats.
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Ref(a), Value::Ref(b)) => a.0.cmp(&b.0),
            (Value::List(a), Value::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.compare(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Tuple(a), Value::Tuple(b)) => {
                for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
                    let o = x.compare(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<Geometry> for Value {
    fn from(v: Geometry) -> Self {
        Value::Geometry(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;

    #[test]
    fn type_names() {
        let ty = AttrType::Tuple(vec![
            ("pole_material".into(), AttrType::Text),
            ("pole_diameter".into(), AttrType::Float),
        ]);
        assert_eq!(
            ty.name(),
            "tuple(pole_material: text; pole_diameter: float)"
        );
        assert_eq!(AttrType::Ref("Supplier".into()).name(), "Supplier");
        assert_eq!(AttrType::List(Box::new(AttrType::Int)).name(), "list(int)");
    }

    #[test]
    fn matches_exact_kinds() {
        assert!(Value::Int(3).matches(&AttrType::Int));
        assert!(!Value::Int(3).matches(&AttrType::Float));
        assert!(Value::Null.matches(&AttrType::Float));
        assert!(Value::Geometry(Geometry::Point(Point::ORIGIN)).matches(&AttrType::Geometry));
    }

    #[test]
    fn tuple_matching_checks_names_and_order() {
        let ty = AttrType::Tuple(vec![
            ("a".into(), AttrType::Int),
            ("b".into(), AttrType::Text),
        ]);
        let ok = Value::Tuple(vec![("a".into(), 1i64.into()), ("b".into(), "x".into())]);
        let wrong_name = Value::Tuple(vec![("z".into(), 1i64.into()), ("b".into(), "x".into())]);
        let wrong_arity = Value::Tuple(vec![("a".into(), 1i64.into())]);
        assert!(ok.matches(&ty));
        assert!(!wrong_name.matches(&ty));
        assert!(!wrong_arity.matches(&ty));
    }

    #[test]
    fn list_matching_is_elementwise() {
        let ty = AttrType::List(Box::new(AttrType::Int));
        assert!(Value::List(vec![1i64.into(), 2i64.into()]).matches(&ty));
        assert!(!Value::List(vec![1i64.into(), "x".into()]).matches(&ty));
        assert!(Value::List(vec![]).matches(&ty));
    }

    #[test]
    fn compare_mixed_numerics() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(2).compare(&Value::Float(2.5)), Less);
        assert_eq!(Value::Float(3.0).compare(&Value::Int(3)), Equal);
        assert_eq!(
            Value::Text("b".into()).compare(&Value::Text("a".into())),
            Greater
        );
        assert_eq!(Value::Null.compare(&Value::Int(0)), Less);
    }

    #[test]
    fn tuple_field_access() {
        let v = Value::Tuple(vec![
            ("material".into(), "wood".into()),
            ("height".into(), 9.5f64.into()),
        ]);
        assert_eq!(v.tuple_field("height"), Some(&Value::Float(9.5)));
        assert_eq!(v.tuple_field("missing"), None);
        assert_eq!(Value::Int(1).tuple_field("x"), None);
    }

    #[test]
    fn display_text_formats() {
        assert_eq!(Value::Null.display_text(), "—");
        assert_eq!(Value::Ref(Oid(42)).display_text(), "→#42");
        assert_eq!(
            Value::Bitmap(vec![0; 16]).display_text(),
            "[bitmap 16 bytes]"
        );
        let t = Value::Tuple(vec![("a".into(), 1i64.into())]);
        assert_eq!(t.display_text(), "a=1");
    }
}
