//! Object instances: OIDs and attribute bindings.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// Database-wide object identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Oid(pub u64);

impl std::fmt::Display for Oid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A stored object: its identity, its class, and attribute values.
///
/// Attribute values are kept in a `BTreeMap` so iteration order is
/// deterministic — window layouts and snapshots must not flap between runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    pub oid: Oid,
    pub class: String,
    pub values: BTreeMap<String, Value>,
}

impl Instance {
    pub fn new(oid: Oid, class: impl Into<String>) -> Instance {
        Instance {
            oid,
            class: class.into(),
            values: BTreeMap::new(),
        }
    }

    /// Builder-style attribute setter.
    pub fn with(mut self, attr: impl Into<String>, value: impl Into<Value>) -> Instance {
        self.values.insert(attr.into(), value.into());
        self
    }

    /// Value of an attribute; `Null` when absent (matching optional attrs).
    pub fn get(&self, attr: &str) -> &Value {
        self.values.get(attr).unwrap_or(&Value::Null)
    }

    /// Resolve a possibly-nested path such as `pole_composition.pole_height`.
    pub fn get_path(&self, path: &str) -> &Value {
        let mut parts = path.split('.');
        let first = match parts.next() {
            Some(p) => p,
            None => return &Value::Null,
        };
        let mut cur = self.get(first);
        for part in parts {
            match cur.tuple_field(part) {
                Some(v) => cur = v,
                None => return &Value::Null,
            }
        }
        cur
    }

    /// The first geometry-valued attribute, if any — used as the object's
    /// cartographic footprint by the map presentation.
    pub fn primary_geometry(&self) -> Option<(&str, &crate::geometry::Geometry)> {
        self.values
            .iter()
            .find_map(|(k, v)| v.as_geometry().map(|g| (k.as_str(), g)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Geometry, Point};

    #[test]
    fn get_returns_null_for_missing() {
        let i = Instance::new(Oid(1), "Pole");
        assert_eq!(i.get("anything"), &Value::Null);
    }

    #[test]
    fn with_sets_values() {
        let i = Instance::new(Oid(1), "Pole").with("pole_type", 3i64);
        assert_eq!(i.get("pole_type"), &Value::Int(3));
        assert_eq!(i.class, "Pole");
    }

    #[test]
    fn get_path_traverses_tuples() {
        let comp = Value::Tuple(vec![
            ("pole_material".into(), "wood".into()),
            ("pole_height".into(), 9.0f64.into()),
        ]);
        let i = Instance::new(Oid(2), "Pole").with("pole_composition", comp);
        assert_eq!(
            i.get_path("pole_composition.pole_height"),
            &Value::Float(9.0)
        );
        assert_eq!(i.get_path("pole_composition.missing"), &Value::Null);
        assert_eq!(i.get_path("missing.path"), &Value::Null);
        assert_eq!(i.get_path("pole_composition").type_name(), "tuple");
    }

    #[test]
    fn primary_geometry_finds_spatial_attr() {
        let i = Instance::new(Oid(3), "Pole")
            .with("pole_type", 1i64)
            .with("pole_location", Geometry::Point(Point::new(4.0, 5.0)));
        let (name, g) = i.primary_geometry().unwrap();
        assert_eq!(name, "pole_location");
        assert_eq!(g.bbox().center(), Point::new(4.0, 5.0));

        let bare = Instance::new(Oid(4), "Supplier").with("name", "Acme");
        assert!(bare.primary_geometry().is_none());
    }

    #[test]
    fn values_iterate_deterministically() {
        let i = Instance::new(Oid(5), "X")
            .with("z", 1i64)
            .with("a", 2i64)
            .with("m", 3i64);
        let keys: Vec<_> = i.values.keys().cloned().collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
    }
}
