//! Synthetic workload generation.
//!
//! The paper's running example is an urban-planning application for
//! telephone utilities: "a telephone network contains aerial and
//! underground network elements, such as ducts and poles". No 1997
//! Brazilian telecom traces survive, so this module generates the closest
//! synthetic equivalent: a street grid with poles along streets, ducts
//! connecting poles, suppliers, and administrative district polygons. The
//! shape matches the paper's browsing workload — mostly points and
//! polylines, spatially clustered, explored by region.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::db::Database;
use crate::error::Result;
use crate::geometry::{Geometry, Point, Polygon, Polyline};
use crate::instance::Oid;
use crate::schema::{ClassDef, MethodDef, SchemaDef};
use crate::value::{AttrType, Value};

/// Parameters of the synthetic telephone network.
#[derive(Debug, Clone)]
pub struct TelecomConfig {
    /// City blocks along each axis (streets = blocks + 1 per axis).
    pub blocks: usize,
    /// Block side length in map units (metres).
    pub block_size: f64,
    /// Poles per street segment.
    pub poles_per_segment: usize,
    /// Fraction of consecutive pole pairs joined by a duct.
    pub duct_fraction: f64,
    /// Number of supplier companies.
    pub suppliers: usize,
    /// Bytes in each pole's bitmap picture (0 disables pictures).
    pub picture_bytes: usize,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for TelecomConfig {
    fn default() -> Self {
        TelecomConfig {
            blocks: 4,
            block_size: 100.0,
            poles_per_segment: 3,
            duct_fraction: 0.5,
            suppliers: 3,
            picture_bytes: 64,
            seed: 1997,
        }
    }
}

impl TelecomConfig {
    /// A small network for unit tests (tens of objects).
    pub fn small() -> TelecomConfig {
        TelecomConfig::default()
    }

    /// Scale the network to roughly `n` poles.
    pub fn with_poles(n: usize) -> TelecomConfig {
        // poles ≈ 2 * blocks * (blocks + 1) * poles_per_segment
        let per_seg = 3usize;
        let mut blocks = 1usize;
        while 2 * blocks * (blocks + 1) * per_seg < n {
            blocks += 1;
        }
        TelecomConfig {
            blocks,
            poles_per_segment: per_seg,
            ..TelecomConfig::default()
        }
    }
}

/// The paper's `phone_net` schema. `Pole` is verbatim Fig. 5; the other
/// classes round out the network the example browses.
pub fn phone_net_schema() -> SchemaDef {
    SchemaDef::new("phone_net")
        .class(
            ClassDef::new("Supplier")
                .attr("supplier_name", AttrType::Text)
                .attr("supplier_city", AttrType::Text)
                .doc("Company providing network elements"),
        )
        .class(
            ClassDef::new("Pole")
                .attr("pole_type", AttrType::Int)
                .attr(
                    "pole_composition",
                    AttrType::Tuple(vec![
                        ("pole_material".into(), AttrType::Text),
                        ("pole_diameter".into(), AttrType::Float),
                        ("pole_height".into(), AttrType::Float),
                    ]),
                )
                .attr("pole_supplier", AttrType::Ref("Supplier".into()))
                .attr("pole_location", AttrType::Geometry)
                .optional_attr("pole_picture", AttrType::Bitmap)
                .optional_attr("pole_historic", AttrType::Text)
                .method(MethodDef::new(
                    "get_supplier_name",
                    vec![AttrType::Ref("Supplier".into())],
                    AttrType::Text,
                ))
                .doc("Aerial network support element (paper Fig. 5)"),
        )
        .class(
            ClassDef::new("Duct")
                .attr("duct_type", AttrType::Int)
                .attr("duct_diameter", AttrType::Float)
                .attr("duct_supplier", AttrType::Ref("Supplier".into()))
                .attr("duct_path", AttrType::Geometry)
                .doc("Underground conduit between network points"),
        )
        .class(
            ClassDef::new("District")
                .attr("district_name", AttrType::Text)
                .attr("district_boundary", AttrType::Geometry)
                .doc("Administrative region polygon"),
        )
}

/// Register the native body of `Pole.get_supplier_name`.
pub fn register_phone_net_methods(db: &mut Database) -> Result<()> {
    db.register_method(
        "phone_net",
        "Pole",
        "get_supplier_name",
        std::sync::Arc::new(|db, inst, _args| {
            let Value::Ref(oid) = inst.get("pole_supplier") else {
                return Ok(Value::Null);
            };
            let supplier = db.resolve(*oid)?;
            Ok(supplier.get("supplier_name").clone())
        }),
    )
}

/// Summary of what [`generate_phone_net`] created.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelecomStats {
    pub suppliers: usize,
    pub poles: usize,
    pub ducts: usize,
    pub districts: usize,
}

/// Populate `db` with a synthetic telephone network.
pub fn generate_phone_net(db: &mut Database, cfg: &TelecomConfig) -> Result<TelecomStats> {
    db.register_schema(phone_net_schema())?;
    register_phone_net_methods(db)?;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    const MATERIALS: &[&str] = &["wood", "concrete", "steel", "fiberglass"];
    const CITIES: &[&str] = &["Campinas", "Tandil", "Bari", "Lisboa"];

    // Suppliers.
    let mut suppliers = Vec::with_capacity(cfg.suppliers);
    for i in 0..cfg.suppliers {
        let oid = db.insert(
            "phone_net",
            "Supplier",
            vec![
                ("supplier_name".into(), format!("Supplier-{i:02}").into()),
                ("supplier_city".into(), CITIES[i % CITIES.len()].into()),
            ],
        )?;
        suppliers.push(oid);
    }

    // Street segments of the grid: horizontal and vertical.
    let n = cfg.blocks;
    let s = cfg.block_size;
    let mut segments: Vec<(Point, Point)> = Vec::new();
    for row in 0..=n {
        for col in 0..n {
            let y = row as f64 * s;
            segments.push((
                Point::new(col as f64 * s, y),
                Point::new((col + 1) as f64 * s, y),
            ));
        }
    }
    for col in 0..=n {
        for row in 0..n {
            let x = col as f64 * s;
            segments.push((
                Point::new(x, row as f64 * s),
                Point::new(x, (row + 1) as f64 * s),
            ));
        }
    }

    // Poles along each segment, jittered off the street line.
    let mut poles: Vec<(Oid, Point)> = Vec::new();
    for (a, b) in &segments {
        for k in 0..cfg.poles_per_segment {
            let t = (k as f64 + 0.5) / cfg.poles_per_segment as f64;
            let base = a.lerp(b, t);
            let loc = Point::new(
                base.x + rng.gen_range(-1.0..1.0),
                base.y + rng.gen_range(-1.0..1.0),
            );
            let material = MATERIALS[rng.gen_range(0..MATERIALS.len())];
            let supplier = suppliers[rng.gen_range(0..suppliers.len())];
            let diameter = (rng.gen_range(0.2..0.6_f64) * 100.0).round() / 100.0;
            let height = (rng.gen_range(7.0..14.0_f64) * 10.0).round() / 10.0;
            let mut values = vec![
                ("pole_type".into(), Value::Int(rng.gen_range(1..=4))),
                (
                    "pole_composition".into(),
                    Value::Tuple(vec![
                        ("pole_material".into(), material.into()),
                        ("pole_diameter".into(), Value::Float(diameter)),
                        ("pole_height".into(), Value::Float(height)),
                    ]),
                ),
                ("pole_supplier".into(), Value::Ref(supplier)),
                ("pole_location".into(), Geometry::Point(loc).into()),
                (
                    "pole_historic".into(),
                    format!("installed 19{}", rng.gen_range(70..97)).into(),
                ),
            ];
            if cfg.picture_bytes > 0 {
                let mut pic = vec![0u8; cfg.picture_bytes];
                rng.fill(&mut pic[..]);
                values.push(("pole_picture".into(), Value::Bitmap(pic)));
            }
            let oid = db.insert("phone_net", "Pole", values)?;
            poles.push((oid, loc));
        }
    }

    // Ducts join some consecutive pole pairs.
    let mut ducts = 0;
    for pair in poles.windows(2) {
        if rng.gen_bool(cfg.duct_fraction) {
            let path = Polyline::new(vec![pair[0].1, pair[1].1])?;
            let supplier = suppliers[rng.gen_range(0..suppliers.len())];
            db.insert(
                "phone_net",
                "Duct",
                vec![
                    ("duct_type".into(), Value::Int(rng.gen_range(1..=3))),
                    (
                        "duct_diameter".into(),
                        Value::Float((rng.gen_range(0.05..0.3_f64) * 100.0).round() / 100.0),
                    ),
                    ("duct_supplier".into(), Value::Ref(supplier)),
                    ("duct_path".into(), Geometry::Polyline(path).into()),
                ],
            )?;
            ducts += 1;
        }
    }

    // Districts: quadrants of the grid.
    let half = n as f64 * s / 2.0;
    let mut districts = 0;
    for (name, x0, y0) in [
        ("Centro", 0.0, 0.0),
        ("Norte", 0.0, half),
        ("Leste", half, 0.0),
        ("Industrial", half, half),
    ] {
        let ring = vec![
            Point::new(x0, y0),
            Point::new(x0 + half, y0),
            Point::new(x0 + half, y0 + half),
            Point::new(x0, y0 + half),
        ];
        db.insert(
            "phone_net",
            "District",
            vec![
                ("district_name".into(), name.into()),
                (
                    "district_boundary".into(),
                    Geometry::Polygon(Polygon::new(ring)?).into(),
                ),
            ],
        )?;
        districts += 1;
    }

    db.drain_events();
    Ok(TelecomStats {
        suppliers: suppliers.len(),
        poles: poles.len(),
        ducts,
        districts,
    })
}

/// Build a ready-to-browse phone-net database.
pub fn phone_net_db(cfg: &TelecomConfig) -> Result<(Database, TelecomStats)> {
    let mut db = Database::new("GEO");
    let stats = generate_phone_net(&mut db, cfg)?;
    Ok((db, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;

    #[test]
    fn generation_is_deterministic() {
        let cfg = TelecomConfig::small();
        let (mut a, sa) = phone_net_db(&cfg).unwrap();
        let (mut b, sb) = phone_net_db(&cfg).unwrap();
        assert_eq!(sa, sb);
        let pa = a.get_class("phone_net", "Pole", false).unwrap();
        let pb = b.get_class("phone_net", "Pole", false).unwrap();
        assert_eq!(pa, pb);
    }

    #[test]
    fn counts_match_config() {
        let cfg = TelecomConfig::small();
        let (db, stats) = phone_net_db(&cfg).unwrap();
        // 2 * blocks * (blocks+1) segments, poles_per_segment each.
        let segs = 2 * cfg.blocks * (cfg.blocks + 1);
        assert_eq!(stats.poles, segs * cfg.poles_per_segment);
        assert_eq!(stats.suppliers, cfg.suppliers);
        assert_eq!(stats.districts, 4);
        assert_eq!(db.extent_size("phone_net", "Pole"), stats.poles);
        assert_eq!(db.extent_size("phone_net", "Duct"), stats.ducts);
    }

    #[test]
    fn with_poles_scales() {
        let cfg = TelecomConfig::with_poles(500);
        let (_, stats) = phone_net_db(&cfg).unwrap();
        assert!(stats.poles >= 500, "got {}", stats.poles);
        assert!(stats.poles < 1000, "got {}", stats.poles);
    }

    #[test]
    fn poles_lie_within_the_grid() {
        let cfg = TelecomConfig::small();
        let (mut db, _) = phone_net_db(&cfg).unwrap();
        let extent = cfg.blocks as f64 * cfg.block_size;
        let bounds = Rect::new(-2.0, -2.0, extent + 2.0, extent + 2.0);
        for pole in db.get_class("phone_net", "Pole", false).unwrap() {
            let g = pole.get("pole_location").as_geometry().unwrap();
            assert!(bounds.contains_rect(&g.bbox()));
        }
    }

    #[test]
    fn supplier_method_works_on_generated_data() {
        let (mut db, _) = phone_net_db(&TelecomConfig::small()).unwrap();
        let poles = db.get_class("phone_net", "Pole", false).unwrap();
        let name = db.call_method(&poles[0], "get_supplier_name", &[]).unwrap();
        assert!(matches!(name, Value::Text(s) if s.starts_with("Supplier-")));
    }

    #[test]
    fn spatial_browse_finds_district_poles() {
        let cfg = TelecomConfig::small();
        let (mut db, stats) = phone_net_db(&cfg).unwrap();
        let half = cfg.blocks as f64 * cfg.block_size / 2.0;
        let quadrant = Rect::new(0.0, 0.0, half, half);
        let hits = db.window_query("phone_net", "Pole", quadrant).unwrap();
        assert!(!hits.is_empty());
        assert!(hits.len() < stats.poles);
    }
}
