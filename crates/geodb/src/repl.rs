//! Epoch replication: delta shipping, follower reads, WAL-tail failover.
//!
//! A [`ReplicaStore`] mirrors a primary [`DbStore`] epoch by epoch. The
//! structural sharing the COW store already maintains *is* the delta:
//! two snapshots share untouched partitions by `Arc`, so the partitions
//! whose `Arc`s differ between the replica's applied epoch and the
//! primary's published epoch are exactly what that span of writes
//! touched. The shipper serializes those partitions wholesale into a
//! [`walcodec`] binary frame, and the replica applies them to its own
//! [`Database`] + partition mirror and publishes the primary's epoch on
//! its own read core. Readers pin a replica exactly like they pin a
//! primary — [`DbReader`] is role-agnostic.
//!
//! ## GC coupling
//!
//! An attached replica holds one pin in the primary's pin registry at
//! its applied epoch, so its delta base stays retained while it lags —
//! up to the primary's hard retention cap. A replica stalled past the
//! cap finds its base trimmed ([`DbStore::snapshot_at`] returns `None`)
//! and falls back to a full-snapshot sync; the primary's memory stays
//! bounded either way.
//!
//! ## Failover
//!
//! [`ReplicaStore::promote`] turns a replica into a primary by replaying
//! the (dead) primary's WAL **tail** over the replica's applied epoch —
//! the same torn-tail machinery crash recovery uses, but starting from
//! the applied epoch instead of the last checkpoint, so promotion work
//! is proportional to replication lag, not to log length. Every epoch
//! the old primary acknowledged was fsynced before it published, so the
//! promoted store serves read-your-writes for every durable commit.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::Sender;
use serde::{Deserialize, Serialize};

use crate::db::{Database, MethodFn};
use crate::epoch::Epoch;
use crate::error::{GeoDbError, Result};
use crate::instance::Instance;
use crate::schema::SchemaDef;
use crate::snapshot::{self, SnapshotDoc};
use crate::store::{DbReader, DbSnapshot, DbStore, Mirror, ReadCore};
use crate::wal::{self, WalConfig};
use crate::walcodec;

/// Epoch value reserved as the streaming shutdown sentinel; no store
/// ever publishes it.
const STOP_SENTINEL: Epoch = Epoch(u64::MAX);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn fault(name: &'static str) -> Result<()> {
    faultsim::fire(name).map_err(|f| GeoDbError::Storage(f.to_string()))
}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

/// One touched partition, shipped wholesale in the primary's insertion
/// order (the replica's extent order must match the primary's).
#[derive(Debug, Serialize, Deserialize)]
struct PartitionImage {
    schema: String,
    class: String,
    instances: Vec<Instance>,
}

/// One replication frame, encoded with the same binary codec WAL
/// records use ([`walcodec::encode_value`]).
#[derive(Debug, Serialize, Deserialize)]
enum ReplFrame {
    /// Partitions touched between `base` (the replica's applied epoch,
    /// still retained on the primary) and `epoch`.
    Delta {
        base: Epoch,
        epoch: Epoch,
        next_oid: u64,
        /// The full schema set, shipped only when the catalog changed
        /// within the span (schemas are append-only).
        schemas: Vec<SchemaDef>,
        parts: Vec<PartitionImage>,
    },
    /// The whole snapshot document — attach, or a stalled replica whose
    /// delta base was trimmed.
    Full {
        epoch: Epoch,
        next_oid: u64,
        doc: SnapshotDoc,
    },
}

fn decode_frame(bytes: &[u8]) -> Result<ReplFrame> {
    let content = walcodec::decode_content(bytes)
        .ok_or_else(|| GeoDbError::Storage("malformed replication frame".into()))?;
    ReplFrame::from_content(&content)
        .map_err(|e| GeoDbError::Storage(format!("decode replication frame: {e}")))
}

/// Build and encode the frame carrying `target` to a replica whose
/// applied state is `base` (`None` ⇒ full sync). Fires the `repl.ship`
/// failpoint and records shipping metrics.
fn ship_frame(
    primary: &DbStore,
    base: Option<&Arc<DbSnapshot>>,
    target: &Arc<DbSnapshot>,
) -> Result<Vec<u8>> {
    let _span = obs::span("repl.ship");
    fault("repl.ship")?;
    let next_oid = primary.next_oid_hint();
    let frame = match base.and_then(|b| delta_between(b, target, next_oid)) {
        Some(delta) => delta,
        None => ReplFrame::Full {
            epoch: target.epoch(),
            next_oid,
            doc: snapshot::doc_from_snapshot(target),
        },
    };
    let bytes = walcodec::encode_value(&frame);
    if obs::enabled() {
        let kind = match &frame {
            ReplFrame::Delta { .. } => "delta",
            ReplFrame::Full { .. } => "full",
        };
        obs::counter_add_labeled("repl.frames_shipped", &[("kind", kind)], 1);
        obs::counter_add_labeled("repl.bytes_shipped", &[("kind", kind)], bytes.len() as u64);
        obs::record_value("repl.frame_bytes", bytes.len() as u64);
    }
    Ok(bytes)
}

/// The delta frame between two retained snapshots, or `None` when only
/// a full sync can express the change (a partition present in `base`
/// vanished — a store restore replaced the world).
fn delta_between(
    base: &Arc<DbSnapshot>,
    target: &Arc<DbSnapshot>,
    next_oid: u64,
) -> Option<ReplFrame> {
    if base
        .partitions()
        .keys()
        .any(|k| !target.partitions().contains_key(k))
    {
        return None;
    }
    let mut parts: Vec<PartitionImage> = target
        .partitions()
        .iter()
        .filter(|(key, part)| match base.partitions().get(*key) {
            Some(bp) => !Arc::ptr_eq(bp, part),
            None => true,
        })
        .map(|((schema, class), part)| PartitionImage {
            schema: schema.clone(),
            class: class.clone(),
            instances: part.instances_ordered(),
        })
        .collect();
    // Deterministic frame bytes (partition maps iterate in hash order).
    parts.sort_by(|a, b| (&a.schema, &a.class).cmp(&(&b.schema, &b.class)));
    let schemas = if Arc::ptr_eq(base.catalog_arc(), target.catalog_arc()) {
        Vec::new()
    } else {
        target.schemas()
    };
    Some(ReplFrame::Delta {
        base: base.epoch(),
        epoch: target.epoch(),
        next_oid,
        schemas,
        parts,
    })
}

// ---------------------------------------------------------------------------
// ReplicaStore
// ---------------------------------------------------------------------------

/// Outcome of one [`ReplicaStore::sync_once`] round trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncOutcome {
    /// Already at the primary's published epoch; nothing shipped.
    CaughtUp,
    /// Applied a delta frame.
    Delta {
        epoch: Epoch,
        bytes: u64,
        partitions: usize,
    },
    /// Applied a full-snapshot frame (attach, or base trimmed).
    Full { epoch: Epoch, bytes: u64 },
}

/// A point-in-time health report of one replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    pub id: String,
    /// Epoch of the replica's published snapshot.
    pub applied: Epoch,
    /// The primary's published epoch at report time.
    pub primary_epoch: Epoch,
    /// `primary_epoch - applied`.
    pub lag: u64,
    pub delta_syncs: u64,
    pub full_syncs: u64,
    pub delta_bytes: u64,
    pub full_bytes: u64,
    /// Is the background shipper thread running?
    pub streaming: bool,
}

/// What [`ReplicaStore::promote`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromotionReport {
    /// The replica's applied epoch when promotion began.
    pub replica_applied: Epoch,
    /// The epoch the promoted store serves (the dead primary's durable
    /// frontier).
    pub promoted_epoch: Epoch,
    /// WAL records replayed over the applied state.
    pub replayed_records: u64,
    /// Torn/corrupt tail bytes truncated from the log.
    pub truncated_bytes: u64,
    /// Why the tail was cut, when it was.
    pub torn: Option<String>,
    /// The WAL checkpoint was newer than the replica's applied state
    /// (possible only after a long stall), so promotion fell back to a
    /// full disk recovery instead of a tail replay.
    pub via_full_recovery: bool,
}

struct ReplicaState {
    db: Database,
    mirror: Mirror,
    /// Method bodies, shared with the primary at attach (code does not
    /// travel in frames).
    methods: Arc<HashMap<(String, String), MethodFn>>,
    /// Epoch of the last applied (published) frame.
    applied: Epoch,
    /// The replica's own last published snapshot — the source of the
    /// previous OID set a delta apply must clear per partition.
    last: Option<Arc<DbSnapshot>>,
    /// The epoch currently pinned in the primary's pin registry.
    pin: Option<Epoch>,
    promoted: bool,
    delta_syncs: u64,
    full_syncs: u64,
    delta_bytes: u64,
    full_bytes: u64,
}

/// Apply one decoded frame to the replica's database + mirror and build
/// the resulting snapshot. The caller publishes it.
fn apply_frame(state: &mut ReplicaState, frame: ReplFrame, bytes: u64) -> Result<Arc<DbSnapshot>> {
    let _span = obs::span("repl.apply");
    fault("repl.apply")?;
    let t0 = Instant::now();
    let epoch = match frame {
        ReplFrame::Full {
            epoch,
            next_oid,
            doc,
        } => {
            let mut db = snapshot::db_from_doc(doc)?;
            db.set_next_oid(next_oid);
            let mut mirror = Mirror::new();
            mirror.capture_all(&mut db)?;
            db.drain_events();
            state.db = db;
            state.mirror = mirror;
            state.full_syncs += 1;
            state.full_bytes += bytes;
            epoch
        }
        ReplFrame::Delta {
            base,
            epoch,
            next_oid,
            schemas,
            parts,
        } => {
            if base != state.applied {
                return Err(GeoDbError::Storage(format!(
                    "replication delta base {base} does not match applied epoch {}",
                    state.applied
                )));
            }
            let ReplicaState {
                db, mirror, last, ..
            } = &mut *state;
            if !schemas.is_empty() {
                let have: HashSet<String> = db.schemas().into_iter().map(|s| s.name).collect();
                for def in schemas {
                    if !have.contains(&def.name) {
                        db.register_schema(def)?;
                    }
                }
                mirror.capture_new_extents(db)?;
            }
            for img in parts {
                let key = (img.schema.clone(), img.class.clone());
                // Clear the extent's previous contents, then restore the
                // shipped image in the primary's insertion order.
                if let Some(prev) = last.as_ref().and_then(|s| s.partitions().get(&key)) {
                    for oid in prev.oids().to_vec() {
                        db.delete(oid)?;
                    }
                }
                for inst in img.instances {
                    db.restore_instance(&img.schema, inst)?;
                }
                mirror.recapture(db, &key)?;
            }
            db.set_next_oid(next_oid);
            db.drain_events();
            state.delta_syncs += 1;
            state.delta_bytes += bytes;
            epoch
        }
    };
    let snap = Arc::new(state.mirror.build_snapshot(epoch, state.methods.clone()));
    state.applied = epoch;
    state.last = Some(snap.clone());
    if obs::enabled() {
        obs::record_nanos("repl.apply_latency", t0.elapsed().as_nanos() as u64);
    }
    Ok(snap)
}

struct Shipper {
    /// Handle into the epoch-subscription channel, for the shutdown
    /// sentinel (the vendored channel has no select or timeout).
    tx: Sender<Epoch>,
    handle: JoinHandle<()>,
}

struct ReplicaShared {
    id: Arc<str>,
    primary: DbStore,
    core: Arc<ReadCore>,
    state: Mutex<ReplicaState>,
    shipper: Mutex<Option<Shipper>>,
}

impl Drop for ReplicaShared {
    fn drop(&mut self) {
        // Wake the shipper thread so it notices the failed upgrade and
        // exits (no join from drop — it may be the thread running us).
        if let Some(s) = lock(&self.shipper).take() {
            let _ = s.tx.send(STOP_SENTINEL);
        }
        let mut state = lock(&self.state);
        if let Some(pin) = state.pin.take() {
            self.primary.core().pin_release(pin);
        }
    }
}

/// A follower store: applies frames shipped from one primary and
/// publishes them on its own read surface. Cheap to clone; all clones
/// share the applied state. Obtain readers with [`ReplicaStore::reader`]
/// — they behave exactly like primary readers, at most `lag` epochs
/// behind.
#[derive(Clone)]
pub struct ReplicaStore {
    shared: Arc<ReplicaShared>,
}

impl ReplicaStore {
    /// Attach a new replica to `primary`, syncing it to the primary's
    /// published epoch via a full-snapshot frame (the same wire path
    /// steady-state syncs use) and registering its pin in the primary's
    /// retention watermark.
    pub fn attach(primary: &DbStore, id: impl Into<String>) -> Result<ReplicaStore> {
        let id: Arc<str> = Arc::from(id.into());
        let target = primary.snapshot();
        let mut state = ReplicaState {
            db: Database::new(target.name()),
            mirror: Mirror::new(),
            methods: target.methods_arc(),
            applied: Epoch::ZERO,
            last: None,
            pin: None,
            promoted: false,
            delta_syncs: 0,
            full_syncs: 0,
            delta_bytes: 0,
            full_bytes: 0,
        };
        let bytes = ship_frame(primary, None, &target)?;
        let frame = decode_frame(&bytes)?;
        let snap = apply_frame(&mut state, frame, bytes.len() as u64)?;
        let applied = snap.epoch();
        primary.core().pin_add(applied);
        state.pin = Some(applied);
        if obs::enabled() {
            obs::counter_add("repl.attached", 1);
        }
        Ok(ReplicaStore {
            shared: Arc::new(ReplicaShared {
                id,
                primary: primary.clone(),
                core: Arc::new(ReadCore::new(snap)),
                state: Mutex::new(state),
                shipper: Mutex::new(None),
            }),
        })
    }

    /// This replica's identifier.
    pub fn id(&self) -> &str {
        &self.shared.id
    }

    /// The replica's published (applied) epoch.
    pub fn epoch(&self) -> Epoch {
        self.shared.core.epoch()
    }

    /// The replica's published snapshot.
    pub fn snapshot(&self) -> Arc<DbSnapshot> {
        self.shared.core.snapshot()
    }

    /// A pinned reader over the replica's published snapshot — same
    /// semantics as [`DbStore::reader`].
    pub fn reader(&self) -> DbReader {
        self.shared.core.reader()
    }

    /// The primary this replica follows.
    pub fn primary(&self) -> &DbStore {
        &self.shared.primary
    }

    /// Ship and apply at most one frame. Returns what (if anything)
    /// moved; callers loop via [`ReplicaStore::sync_to_latest`] or let
    /// the streaming shipper drive this.
    pub fn sync_once(&self) -> Result<SyncOutcome> {
        let mut state = lock(&self.shared.state);
        if state.promoted {
            return Err(GeoDbError::Storage("replica has been promoted".into()));
        }
        let target = self.shared.primary.snapshot();
        if target.epoch() <= state.applied {
            self.note_lag(&state);
            return Ok(SyncOutcome::CaughtUp);
        }
        // A stalled replica's base may have been trimmed by the
        // primary's hard retention cap — `None` falls back to full sync.
        let base = self.shared.primary.snapshot_at(state.applied);
        let bytes = ship_frame(&self.shared.primary, base.as_ref(), &target)?;
        let frame = decode_frame(&bytes)?;
        let (is_delta, partitions) = match &frame {
            ReplFrame::Delta { parts, .. } => (true, parts.len()),
            ReplFrame::Full { .. } => (false, 0),
        };
        let len = bytes.len() as u64;
        let snap = match apply_frame(&mut state, frame, len) {
            Ok(snap) => snap,
            Err(e) => {
                // A partial apply can't be trusted as a delta base;
                // force a full resync next round.
                state.last = None;
                state.applied = Epoch::ZERO;
                return Err(e);
            }
        };
        let epoch = snap.epoch();
        self.shared.core.publish(snap);
        match state.pin.replace(epoch) {
            Some(old) => self.shared.primary.core().pin_move(old, epoch),
            None => self.shared.primary.core().pin_add(epoch),
        }
        self.note_lag(&state);
        Ok(if is_delta {
            SyncOutcome::Delta {
                epoch,
                bytes: len,
                partitions,
            }
        } else {
            SyncOutcome::Full { epoch, bytes: len }
        })
    }

    /// Sync until caught up with the primary's published epoch; returns
    /// the applied epoch.
    pub fn sync_to_latest(&self) -> Result<Epoch> {
        while !matches!(self.sync_once()?, SyncOutcome::CaughtUp) {}
        Ok(self.epoch())
    }

    fn note_lag(&self, state: &ReplicaState) {
        if obs::enabled() {
            obs::gauge_set(
                "repl.lag",
                self.shared.primary.epoch().lag_from(state.applied),
            );
        }
    }

    /// Point-in-time health report.
    pub fn status(&self) -> ReplicaStatus {
        let streaming = lock(&self.shared.shipper).is_some();
        let state = lock(&self.shared.state);
        let primary_epoch = self.shared.primary.epoch();
        ReplicaStatus {
            id: self.shared.id.to_string(),
            applied: state.applied,
            primary_epoch,
            lag: primary_epoch.lag_from(state.applied),
            delta_syncs: state.delta_syncs,
            full_syncs: state.full_syncs,
            delta_bytes: state.delta_bytes,
            full_bytes: state.full_bytes,
            streaming,
        }
    }

    /// Start the background shipper: a thread subscribed to the
    /// primary's epoch publishes that syncs on every publish (coalescing
    /// bursts into one frame). Errors if already streaming.
    pub fn start_streaming(&self) -> Result<()> {
        let mut slot = lock(&self.shared.shipper);
        if slot.is_some() {
            return Err(GeoDbError::Storage("replica is already streaming".into()));
        }
        let (tx, rx) = self.shared.primary.subscribe_epochs();
        let weak: Weak<ReplicaShared> = Arc::downgrade(&self.shared);
        let handle = std::thread::Builder::new()
            .name(format!("repl-{}", self.shared.id))
            .spawn(move || {
                while let Ok(epoch) = rx.recv() {
                    if epoch == STOP_SENTINEL {
                        break;
                    }
                    // Coalesce queued publishes into one sync.
                    let mut stop = false;
                    while let Ok(e) = rx.try_recv() {
                        if e == STOP_SENTINEL {
                            stop = true;
                            break;
                        }
                    }
                    let Some(shared) = weak.upgrade() else { break };
                    let replica = ReplicaStore { shared };
                    if replica.sync_once().is_err() {
                        obs::counter_add("repl.sync_errors", 1);
                    }
                    drop(replica);
                    if stop {
                        break;
                    }
                }
            })
            .map_err(|e| GeoDbError::Storage(format!("spawn replication shipper: {e}")))?;
        *slot = Some(Shipper { tx, handle });
        Ok(())
    }

    /// Stop the background shipper, joining its thread. Idempotent.
    pub fn stop_streaming(&self) {
        let shipper = lock(&self.shared.shipper).take();
        if let Some(s) = shipper {
            let _ = s.tx.send(STOP_SENTINEL);
            let _ = s.handle.join();
        }
    }

    /// Promote this replica to a primary over the (dead) primary's WAL
    /// directory: replay the log tail past the applied epoch, truncate
    /// any torn tail, and resume as a durable [`DbStore`]. The replica
    /// handle is consumed logically — further syncs error.
    ///
    /// If the old primary checkpointed *past* the replica's applied
    /// epoch (a long stall), the tail no longer reaches back to the
    /// applied state and promotion falls back to a full disk recovery.
    pub fn promote(&self, config: WalConfig) -> Result<(DbStore, PromotionReport)> {
        let _span = obs::span("repl.promote");
        self.stop_streaming();
        fault("repl.promote")?;
        let t0 = Instant::now();
        let mut state = lock(&self.shared.state);
        if state.promoted {
            return Err(GeoDbError::Storage(
                "replica has already been promoted".into(),
            ));
        }
        let applied = state.applied;
        let meta = wal::load_checkpoint_meta(&config.dir)?;
        if let Some(pin) = state.pin.take() {
            self.shared.primary.core().pin_release(pin);
        }
        state.promoted = true;
        let report;
        let store;
        if meta.epoch > applied {
            let (recovered, rec) = wal::recover(config)?;
            store = recovered;
            report = PromotionReport {
                replica_applied: applied,
                promoted_epoch: rec.recovered_epoch,
                replayed_records: rec.replayed_records,
                truncated_bytes: rec.truncated_bytes,
                torn: rec.torn,
                via_full_recovery: true,
            };
        } else {
            let mut db = std::mem::replace(&mut state.db, Database::new("promoted"));
            state.last = None;
            let tail = wal::replay_tail(&mut db, config, applied, meta.epoch)?;
            report = PromotionReport {
                replica_applied: applied,
                promoted_epoch: tail.epoch,
                replayed_records: tail.replayed,
                truncated_bytes: tail.truncated_bytes,
                torn: tail.torn,
                via_full_recovery: false,
            };
            store = DbStore::resume(db, tail.epoch, tail.wal);
        }
        if obs::enabled() {
            obs::counter_add("repl.promotions", 1);
            obs::record_nanos("repl.promotion_latency", t0.elapsed().as_nanos() as u64);
        }
        Ok((store, report))
    }
}

impl std::fmt::Debug for ReplicaStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaStore")
            .field("id", &self.shared.id)
            .field("epoch", &self.epoch())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// ReadRouter
// ---------------------------------------------------------------------------

/// Where a routed read was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSource {
    Primary,
    Replica,
}

impl ReadSource {
    /// Metric/display label.
    pub fn as_str(self) -> &'static str {
        match self {
            ReadSource::Primary => "primary",
            ReadSource::Replica => "replica",
        }
    }
}

/// Routes one session's reads between a primary reader and (optionally)
/// a replica reader under a staleness bound. With a replica and
/// `max_lag = Some(n)`, a pinned read is served from the replica only
/// when its epoch is at most `n` behind the primary's frontier —
/// otherwise the read transparently falls back to the primary, so no
/// routed read ever observes state older than the bound.
#[derive(Clone)]
pub struct ReadRouter {
    primary: DbReader,
    replica: Option<DbReader>,
    /// Max tolerated epochs behind the primary's frontier; `None`
    /// serves the replica unconditionally.
    max_lag: Option<u64>,
}

impl ReadRouter {
    /// Route everything to the primary (the non-replicated default).
    pub fn primary_only(primary: DbReader) -> ReadRouter {
        ReadRouter {
            primary,
            replica: None,
            max_lag: None,
        }
    }

    /// Serve reads from `replica` while it is within `max_lag` epochs
    /// of the primary's frontier (`None` = serve it unconditionally).
    pub fn with_replica(primary: DbReader, replica: DbReader, max_lag: Option<u64>) -> ReadRouter {
        ReadRouter {
            primary,
            replica: Some(replica),
            max_lag,
        }
    }

    /// Does this router have a replica to serve from?
    pub fn has_replica(&self) -> bool {
        self.replica.is_some()
    }

    /// The configured staleness bound.
    pub fn max_lag(&self) -> Option<u64> {
        self.max_lag
    }

    /// Pin a snapshot for one read: the replica's if it is within the
    /// staleness bound, the primary's otherwise. Returns the snapshot,
    /// where it came from, and the replica's lag at pin time (0 without
    /// a replica).
    pub fn pin(&mut self) -> (&Arc<DbSnapshot>, ReadSource, u64) {
        let mut lag = 0;
        let mut from_replica = false;
        if let Some(r) = &mut self.replica {
            r.pin();
            lag = self.primary.latest_epoch().lag_from(r.epoch());
            from_replica = self.max_lag.is_none_or(|bound| lag <= bound);
        }
        if from_replica {
            if obs::enabled() {
                obs::counter_add_labeled("repl.reads", &[("source", "replica")], 1);
            }
            let r = self.replica.as_ref().expect("replica present");
            (r.pinned(), ReadSource::Replica, lag)
        } else {
            if self.replica.is_some() && obs::enabled() {
                obs::counter_add_labeled("repl.reads", &[("source", "primary_fallback")], 1);
            }
            self.primary.pin();
            (self.primary.pinned(), ReadSource::Primary, lag)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Geometry, Point};
    use crate::schema::{ClassDef, SchemaDef};
    use crate::snapshot::save_snapshot;
    use crate::value::{AttrType, Value};

    fn sample_db() -> Database {
        let mut db = Database::new("repl-test");
        db.register_schema(
            SchemaDef::new("net")
                .class(ClassDef::new("Supplier").attr("name", AttrType::Text))
                .class(
                    ClassDef::new("Pole")
                        .attr("height", AttrType::Float)
                        .attr("location", AttrType::Geometry),
                ),
        )
        .unwrap();
        db.insert("net", "Supplier", vec![("name".into(), "Acme".into())])
            .unwrap();
        for i in 0..8 {
            db.insert(
                "net",
                "Pole",
                vec![
                    ("height".into(), (5.0 + i as f64).into()),
                    (
                        "location".into(),
                        Geometry::Point(Point::new(i as f64, 0.0)).into(),
                    ),
                ],
            )
            .unwrap();
        }
        db.drain_events();
        db
    }

    fn insert_pole(store: &DbStore, x: f64) {
        store
            .write(|db| {
                db.insert(
                    "net",
                    "Pole",
                    vec![
                        ("height".into(), Value::Float(x)),
                        (
                            "location".into(),
                            Geometry::Point(Point::new(x, 0.0)).into(),
                        ),
                    ],
                )
            })
            .unwrap();
    }

    fn assert_identical(a: &DbStore, b: &ReplicaStore) {
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(
            save_snapshot(&a.snapshot()).unwrap(),
            save_snapshot(&b.snapshot()).unwrap(),
            "replica snapshot must be byte-identical to the primary's"
        );
    }

    #[test]
    fn attach_full_sync_is_byte_identical() {
        let store = DbStore::new(sample_db());
        let replica = ReplicaStore::attach(&store, "r1").unwrap();
        assert_identical(&store, &replica);
        let status = replica.status();
        assert_eq!(status.full_syncs, 1);
        assert_eq!(status.delta_syncs, 0);
        assert_eq!(status.lag, 0);
        assert!(status.full_bytes > 0);
    }

    #[test]
    fn delta_sync_ships_only_touched_partitions() {
        let store = DbStore::new(sample_db());
        let replica = ReplicaStore::attach(&store, "r1").unwrap();
        insert_pole(&store, 40.0);
        match replica.sync_once().unwrap() {
            SyncOutcome::Delta { partitions, .. } => {
                assert_eq!(partitions, 1, "only the Pole partition was touched")
            }
            other => panic!("expected delta, got {other:?}"),
        }
        assert_identical(&store, &replica);
        assert!(matches!(
            replica.sync_once().unwrap(),
            SyncOutcome::CaughtUp
        ));
    }

    #[test]
    fn deletes_travel_in_deltas() {
        let store = DbStore::new(sample_db());
        let replica = ReplicaStore::attach(&store, "r1").unwrap();
        let oid = store.snapshot().get_class("net", "Pole", false).unwrap()[0].oid;
        store.write(|db| db.delete(oid)).unwrap();
        replica.sync_to_latest().unwrap();
        assert_identical(&store, &replica);
        assert!(replica.snapshot().peek(oid).is_err());
        assert_eq!(replica.snapshot().extent_size("net", "Pole"), 7);
    }

    #[test]
    fn schema_changes_travel_in_deltas() {
        let store = DbStore::new(sample_db());
        let replica = ReplicaStore::attach(&store, "r1").unwrap();
        store
            .write(|db| {
                db.register_schema(
                    SchemaDef::new("admin")
                        .class(ClassDef::new("District").attr("name", AttrType::Text)),
                )?;
                db.insert("admin", "District", vec![("name".into(), "centro".into())])
            })
            .unwrap();
        match replica.sync_once().unwrap() {
            SyncOutcome::Delta { .. } => {}
            other => panic!("expected delta, got {other:?}"),
        }
        assert_identical(&store, &replica);
        assert_eq!(replica.snapshot().extent_size("admin", "District"), 1);
    }

    #[test]
    fn stalled_replica_falls_back_to_full_sync_and_gc_stays_capped() {
        let store = DbStore::new(sample_db());
        let replica = ReplicaStore::attach(&store, "r1").unwrap();
        let attach_epoch = replica.epoch();
        assert_eq!(store.pin_watermark(), Some(attach_epoch));
        // Inside the cap the replica's pin holds the delta base alive.
        for i in 0..3 {
            insert_pole(&store, 50.0 + i as f64);
        }
        assert!(store.snapshot_at(attach_epoch).is_some());
        assert!(matches!(
            replica.sync_once().unwrap(),
            SyncOutcome::Delta { .. }
        ));
        // Stall past the hard cap: the ring stays bounded (the pin does
        // NOT grow it), the base is trimmed, and sync degrades to full.
        for i in 0..20 {
            insert_pole(&store, 100.0 + i as f64);
        }
        assert!(
            store.epochs_retained() <= 8,
            "stalled replica must not grow retention past the hard cap (got {})",
            store.epochs_retained()
        );
        assert!(store.snapshot_at(replica.epoch()).is_none());
        match replica.sync_once().unwrap() {
            SyncOutcome::Full { .. } => {}
            other => panic!("expected full fallback, got {other:?}"),
        }
        assert_identical(&store, &replica);
    }

    #[test]
    fn dropping_replica_releases_primary_pin() {
        let store = DbStore::new(sample_db());
        let replica = ReplicaStore::attach(&store, "r1").unwrap();
        assert_eq!(store.pin_count(), 1);
        drop(replica);
        assert_eq!(store.pin_count(), 0);
        assert_eq!(store.pin_watermark(), None);
    }

    #[test]
    fn router_bounded_staleness_falls_back_to_primary() {
        let store = DbStore::new(sample_db());
        let replica = ReplicaStore::attach(&store, "r1").unwrap();
        let mut router = ReadRouter::with_replica(store.reader(), replica.reader(), Some(1));
        let (_, source, lag) = router.pin();
        assert_eq!(source, ReadSource::Replica);
        assert_eq!(lag, 0);
        // Two epochs behind, bound 1: the read falls back to the primary
        // and never observes state older than the bound.
        insert_pole(&store, 1.0);
        insert_pole(&store, 2.0);
        let (snap, source, lag) = router.pin();
        assert_eq!(source, ReadSource::Primary);
        assert_eq!(lag, 2);
        assert_eq!(snap.epoch(), store.epoch());
        // Caught up again: back to the replica.
        replica.sync_to_latest().unwrap();
        let (snap, source, _) = router.pin();
        assert_eq!(source, ReadSource::Replica);
        assert_eq!(snap.epoch(), store.epoch());
    }

    #[test]
    fn streaming_shipper_applies_in_background() {
        let store = DbStore::new(sample_db());
        let replica = ReplicaStore::attach(&store, "r1").unwrap();
        replica.start_streaming().unwrap();
        assert!(replica.status().streaming);
        assert!(replica.start_streaming().is_err());
        insert_pole(&store, 9.0);
        insert_pole(&store, 10.0);
        for _ in 0..400 {
            if replica.epoch() == store.epoch() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_identical(&store, &replica);
        replica.stop_streaming();
        assert!(!replica.status().streaming);
    }

    #[test]
    fn promotion_replays_the_wal_tail() {
        let dir = std::env::temp_dir().join(format!(
            "geodb-repl-promote-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (store, _) = wal::open(sample_db(), WalConfig::new(&dir)).unwrap();
        let replica = ReplicaStore::attach(&store, "r1").unwrap();
        insert_pole(&store, 1.0);
        replica.sync_to_latest().unwrap();
        let synced = replica.epoch();
        // Two durable writes the replica never sees.
        insert_pole(&store, 2.0);
        insert_pole(&store, 3.0);
        let frontier = store.durable_epoch();
        drop(store); // the primary "dies"

        let (promoted, report) = replica.promote(WalConfig::new(&dir)).unwrap();
        assert!(!report.via_full_recovery);
        assert_eq!(report.replica_applied, synced);
        assert_eq!(report.replayed_records, 2);
        assert_eq!(report.promoted_epoch, frontier);
        assert_eq!(promoted.epoch(), frontier);
        // Read-your-writes: every durable commit is visible.
        assert_eq!(promoted.snapshot().extent_size("net", "Pole"), 11);
        // The promoted store accepts new durable writes.
        insert_pole(&promoted, 4.0);
        assert!(promoted.durable_epoch() > frontier);
        // The old replica handle is dead.
        assert!(replica.sync_once().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
