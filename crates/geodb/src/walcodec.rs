//! Compact binary encoding for WAL record frames.
//!
//! JSON frames spend most of their bytes on repeated field names,
//! variant tags and stringified numbers. This codec serializes the same
//! self-describing [`Content`] tree the JSON path serializes — so the
//! two formats are interchangeable record-for-record — but encodes it
//! as tagged binary nodes with varint integers and an interned string
//! table:
//!
//! ```text
//! payload := MARKER(0x01)
//!            varint(dyn_count) { varint(len) utf8-bytes }*   string table
//!            node                                            record tree
//!
//! node    := 0                        null
//!          | 1 | 2                    false | true
//!          | 3 zigzag-varint          signed integer
//!          | 4 varint                 unsigned integer
//!          | 5 f64-le-bits            float (exact, NaN-safe)
//!          | 6 varint(sid)            string
//!          | 7 varint(n) node*        sequence
//!          | 8 varint(n) {node node}* map (key, value pairs)
//! ```
//!
//! String ids below [`STATIC_VOCAB`]`.len()` name well-known strings
//! (field names, enum variants) and cost one or two bytes; the rest
//! index the per-frame dynamic table in first-appearance order, so
//! repeated schema/class names are written once per frame. The vocab is
//! append-only: ids are part of the on-disk format.
//!
//! The marker byte `0x01` can never start a JSON record (those begin
//! with `{`, 0x7B), which is how [`crate::wal::decode_payload`] tells
//! the formats apart per frame — a log may freely mix them.
//!
//! Decoding is strict: unknown tags, out-of-range string ids, short
//! buffers or trailing bytes all return `None`, which WAL recovery
//! treats exactly like any other torn tail.

use std::collections::HashMap;
use std::sync::OnceLock;

use serde::content::Content;
use serde::{Deserialize, Serialize};

use crate::wal::WalRecord;

/// First payload byte of every binary frame.
pub const BINARY_MARKER: u8 = 0x01;

/// Well-known strings with fixed ids. **Append-only** — reordering or
/// removing an entry changes the meaning of every log written so far.
const STATIC_VOCAB: &[&str] = &[
    // WalRecord fields
    "epoch",
    "next_oid",
    "events",
    "ops",
    // WalOp variants + payload fields
    "Schema",
    "Upsert",
    "Delete",
    "def",
    "schema",
    "instance",
    "oid",
    "class",
    "values",
    // DbEvent variants
    "GetSchema",
    "GetClass",
    "GetValue",
    "Insert",
    "Update",
    "SchemaRegistered",
    // Value / AttrType variants
    "Null",
    "Int",
    "Float",
    "Text",
    "Bool",
    "Tuple",
    "Ref",
    "Geometry",
    "Bitmap",
    "List",
    // Geometry variants + fields
    "Point",
    "Polyline",
    "Polygon",
    "x",
    "y",
    "points",
    "ring",
    // Schema definition fields
    "name",
    "classes",
    "parent",
    "attrs",
    "methods",
    "doc",
    "ty",
    "optional",
    "params",
    "returns",
];

fn static_ids() -> &'static HashMap<&'static str, u32> {
    static IDS: OnceLock<HashMap<&'static str, u32>> = OnceLock::new();
    IDS.get_or_init(|| {
        STATIC_VOCAB
            .iter()
            .enumerate()
            .map(|(i, s)| (*s, i as u32))
            .collect()
    })
}

// Node tags.
const T_NULL: u8 = 0;
const T_FALSE: u8 = 1;
const T_TRUE: u8 = 2;
const T_I64: u8 = 3;
const T_U64: u8 = 4;
const T_F64: u8 = 5;
const T_STR: u8 = 6;
const T_SEQ: u8 = 7;
const T_MAP: u8 = 8;

/// Nesting deeper than any real record; a backstop against corrupt
/// frames recursing the decoder off the stack.
const MAX_DEPTH: u32 = 64;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(n: u64) -> i64 {
    ((n >> 1) as i64) ^ -((n & 1) as i64)
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

struct Encoder {
    /// Node bytes (assembled after the string table, which is only
    /// complete once the whole tree has been walked).
    buf: Vec<u8>,
    dyn_ids: HashMap<String, u32>,
    dyn_strings: Vec<String>,
}

impl Encoder {
    fn sid(&mut self, s: &str) -> u32 {
        if let Some(&id) = static_ids().get(s) {
            return id;
        }
        if let Some(&id) = self.dyn_ids.get(s) {
            return id;
        }
        let id = (STATIC_VOCAB.len() + self.dyn_strings.len()) as u32;
        self.dyn_ids.insert(s.to_string(), id);
        self.dyn_strings.push(s.to_string());
        id
    }

    fn node(&mut self, c: &Content) {
        match c {
            Content::Null => self.buf.push(T_NULL),
            Content::Bool(false) => self.buf.push(T_FALSE),
            Content::Bool(true) => self.buf.push(T_TRUE),
            Content::I64(n) => {
                self.buf.push(T_I64);
                put_varint(&mut self.buf, zigzag(*n));
            }
            Content::U64(n) => {
                self.buf.push(T_U64);
                put_varint(&mut self.buf, *n);
            }
            Content::F64(f) => {
                self.buf.push(T_F64);
                self.buf.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Content::Str(s) => {
                let id = self.sid(s);
                self.buf.push(T_STR);
                put_varint(&mut self.buf, id as u64);
            }
            Content::Seq(items) => {
                self.buf.push(T_SEQ);
                put_varint(&mut self.buf, items.len() as u64);
                for item in items {
                    self.node(item);
                }
            }
            Content::Map(entries) => {
                self.buf.push(T_MAP);
                put_varint(&mut self.buf, entries.len() as u64);
                for (k, v) in entries {
                    self.node(k);
                    self.node(v);
                }
            }
        }
    }
}

/// Encode any serializable value as a binary frame payload. Total —
/// unlike JSON this handles non-finite floats and non-string map keys.
pub fn encode_value<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut enc = Encoder {
        buf: Vec::new(),
        dyn_ids: HashMap::new(),
        dyn_strings: Vec::new(),
    };
    enc.node(&value.to_content());
    let mut out = Vec::with_capacity(enc.buf.len() + 16);
    out.push(BINARY_MARKER);
    put_varint(&mut out, enc.dyn_strings.len() as u64);
    for s in &enc.dyn_strings {
        put_varint(&mut out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }
    out.extend_from_slice(&enc.buf);
    out
}

/// Encode one WAL record as a binary frame payload.
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    encode_value(rec)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    dyn_strings: Vec<String>,
}

impl<'a> Decoder<'a> {
    fn byte(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn varint(&mut self) -> Option<u64> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            let bits = (b & 0x7f) as u64;
            if shift == 63 && bits > 1 {
                return None; // overflow past 64 bits
            }
            v |= bits << shift;
            if b & 0x80 == 0 {
                return Some(v);
            }
        }
        None
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn string(&self, sid: u64) -> Option<String> {
        let sid = usize::try_from(sid).ok()?;
        if sid < STATIC_VOCAB.len() {
            return Some(STATIC_VOCAB[sid].to_string());
        }
        self.dyn_strings.get(sid - STATIC_VOCAB.len()).cloned()
    }

    fn node(&mut self, depth: u32) -> Option<Content> {
        if depth > MAX_DEPTH {
            return None;
        }
        Some(match self.byte()? {
            T_NULL => Content::Null,
            T_FALSE => Content::Bool(false),
            T_TRUE => Content::Bool(true),
            T_I64 => Content::I64(unzigzag(self.varint()?)),
            T_U64 => Content::U64(self.varint()?),
            T_F64 => {
                let bits = u64::from_le_bytes(self.take(8)?.try_into().ok()?);
                Content::F64(f64::from_bits(bits))
            }
            T_STR => {
                let sid = self.varint()?;
                Content::Str(self.string(sid)?)
            }
            T_SEQ => {
                let n = self.varint()?;
                // Each element costs at least one byte: a count beyond
                // the remaining buffer is corruption, not a request to
                // preallocate.
                if n > (self.bytes.len() - self.pos) as u64 {
                    return None;
                }
                let mut items = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    items.push(self.node(depth + 1)?);
                }
                Content::Seq(items)
            }
            T_MAP => {
                let n = self.varint()?;
                if n > (self.bytes.len() - self.pos) as u64 {
                    return None;
                }
                let mut entries = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let k = self.node(depth + 1)?;
                    let v = self.node(depth + 1)?;
                    entries.push((k, v));
                }
                Content::Map(entries)
            }
            _ => return None,
        })
    }
}

/// Decode a binary frame payload into a [`Content`] tree. `None` on any
/// malformation (wrong marker, short buffer, bad tag or string id,
/// trailing bytes).
pub fn decode_content(payload: &[u8]) -> Option<Content> {
    let mut dec = Decoder {
        bytes: payload,
        pos: 0,
        dyn_strings: Vec::new(),
    };
    if dec.byte()? != BINARY_MARKER {
        return None;
    }
    let count = dec.varint()?;
    if count > (payload.len() - dec.pos) as u64 {
        return None;
    }
    for _ in 0..count {
        let len = usize::try_from(dec.varint()?).ok()?;
        let s = std::str::from_utf8(dec.take(len)?).ok()?;
        dec.dyn_strings.push(s.to_string());
    }
    let root = dec.node(0)?;
    if dec.pos != payload.len() {
        return None;
    }
    Some(root)
}

/// Decode a binary frame payload into a WAL record. `None` on any
/// malformation — recovery treats that as a torn tail.
pub fn decode_record(payload: &[u8]) -> Option<WalRecord> {
    WalRecord::from_content(&decode_content(payload)?).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::Epoch;
    use crate::instance::{Instance, Oid};
    use crate::query::DbEvent;
    use crate::schema::{ClassDef, SchemaDef};
    use crate::value::{AttrType, Value};
    use crate::wal::WalOp;

    fn sample() -> WalRecord {
        let def = SchemaDef::new("utility").class(
            ClassDef::new("Pole")
                .attr("pole_height", AttrType::Float)
                .optional_attr("pole_note", AttrType::Text),
        );
        let mut inst = Instance::new(Oid(42), "Pole");
        inst.values.insert("pole_height".into(), Value::Float(9.5));
        inst.values.insert(
            "pole_tags".into(),
            Value::List(vec![Value::Text("wood".into()), Value::Int(-3)]),
        );
        WalRecord {
            epoch: Epoch(7),
            next_oid: 43,
            events: vec![DbEvent::Insert {
                schema: "utility".into(),
                class: "Pole".into(),
                oid: Oid(42),
            }],
            ops: vec![
                WalOp::Schema { def },
                WalOp::Upsert {
                    schema: "utility".into(),
                    instance: inst,
                },
            ],
        }
    }

    #[test]
    fn binary_round_trips_and_matches_json() {
        let rec = sample();
        let bin = encode_record(&rec);
        assert_eq!(bin[0], BINARY_MARKER);
        assert_eq!(decode_record(&bin).unwrap(), rec);
        let json = serde_json::to_vec(&rec).unwrap();
        let via_json: WalRecord = serde_json::from_slice(&json).unwrap();
        assert_eq!(decode_record(&bin).unwrap(), via_json);
        assert!(
            bin.len() < json.len(),
            "binary ({}) should beat JSON ({})",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        let bin = encode_record(&sample());
        for cut in 0..bin.len() {
            assert!(decode_record(&bin[..cut]).is_none(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bin = encode_record(&sample());
        bin.push(0);
        assert!(decode_record(&bin).is_none());
    }

    #[test]
    fn unknown_tag_and_bad_sid_are_rejected() {
        // Marker, empty string table, bogus tag.
        assert!(decode_content(&[BINARY_MARKER, 0, 9]).is_none());
        // String id past both tables.
        assert!(decode_content(&[BINARY_MARKER, 0, T_STR, 0xff, 0x7f]).is_none());
    }

    #[test]
    fn nan_floats_survive_binary() {
        let c = Content::F64(f64::NAN);
        let mut enc = Encoder {
            buf: Vec::new(),
            dyn_ids: HashMap::new(),
            dyn_strings: Vec::new(),
        };
        enc.node(&c);
        let mut payload = vec![BINARY_MARKER, 0];
        payload.extend_from_slice(&enc.buf);
        match decode_content(&payload).unwrap() {
            Content::F64(f) => assert!(f.is_nan()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn repeated_strings_are_interned_once() {
        let v = vec!["a-long-dynamic-string".to_string(); 16];
        let bin = encode_value(&v);
        // One table entry + 16 two-byte string nodes, far below 16 copies.
        assert!(bin.len() < 2 + 22 + 16 * 3 + 2);
        match decode_content(&bin).unwrap() {
            Content::Seq(items) => assert_eq!(items.len(), 16),
            other => panic!("expected seq, got {other:?}"),
        }
    }

    #[test]
    fn varint_overflow_is_rejected() {
        // 10 continuation bytes with high bits that overflow 64 bits.
        let mut payload = vec![BINARY_MARKER, 0, T_U64];
        payload.extend_from_slice(&[0xff; 9]);
        payload.push(0x7f);
        assert!(decode_content(&payload).is_none());
    }
}
