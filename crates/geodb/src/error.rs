//! Error type shared by every `geodb` module.

use std::fmt;
use std::sync::Arc;

/// The underlying cause of a snapshot/WAL load failure, preserved so
/// callers can walk [`std::error::Error::source`] instead of parsing a
/// flattened message. Kept as owned strings (not the originating error
/// types) so [`GeoDbError`] stays `Clone + PartialEq + Eq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotCause {
    /// JSON (de)serialization failed — truncated or corrupted document.
    Json(String),
    /// Filesystem I/O failed (read/write/rename/fsync).
    Io(String),
    /// The bytes parsed but violate the format contract (bad version,
    /// bad checksum, short frame).
    Format(String),
}

impl fmt::Display for SnapshotCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotCause::Json(m) => write!(f, "json: {m}"),
            SnapshotCause::Io(m) => write!(f, "io: {m}"),
            SnapshotCause::Format(m) => write!(f, "format: {m}"),
        }
    }
}

impl std::error::Error for SnapshotCause {}

/// Errors produced by the geographic DBMS substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeoDbError {
    /// A named schema does not exist in the catalog.
    UnknownSchema(String),
    /// A named class does not exist in the given schema.
    UnknownClass(String),
    /// A named attribute does not exist on the given class.
    UnknownAttribute { class: String, attribute: String },
    /// A named method does not exist on the given class.
    UnknownMethod { class: String, method: String },
    /// An object id does not resolve to a stored instance.
    UnknownOid(u64),
    /// A schema/class/attribute with this name already exists.
    Duplicate(String),
    /// A value did not match the declared attribute type.
    TypeMismatch {
        class: String,
        attribute: String,
        expected: String,
        got: String,
    },
    /// A required (non-optional) attribute was missing on insert.
    MissingAttribute { class: String, attribute: String },
    /// Inheritance cycle detected while resolving a class.
    InheritanceCycle(String),
    /// A geometry was structurally invalid (e.g. polygon with < 3 points).
    InvalidGeometry(String),
    /// WKT text could not be parsed.
    WktParse(String),
    /// A storage-layer failure (page full, bad record id, I/O).
    Storage(String),
    /// Snapshot (de)serialization failure.
    Snapshot(String),
    /// Snapshot/WAL load failure with its structured cause preserved for
    /// `Error::source()` chains. `context` says what was being loaded;
    /// `source` says why it failed.
    SnapshotLoad {
        context: String,
        source: Arc<SnapshotCause>,
    },
    /// A query referenced something inconsistent (e.g. spatial predicate on
    /// a non-geometry attribute).
    InvalidQuery(String),
}

impl fmt::Display for GeoDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoDbError::UnknownSchema(s) => write!(f, "unknown schema `{s}`"),
            GeoDbError::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            GeoDbError::UnknownAttribute { class, attribute } => {
                write!(f, "unknown attribute `{attribute}` on class `{class}`")
            }
            GeoDbError::UnknownMethod { class, method } => {
                write!(f, "unknown method `{method}` on class `{class}`")
            }
            GeoDbError::UnknownOid(o) => write!(f, "unknown object id {o}"),
            GeoDbError::Duplicate(n) => write!(f, "duplicate definition `{n}`"),
            GeoDbError::TypeMismatch {
                class,
                attribute,
                expected,
                got,
            } => write!(
                f,
                "type mismatch on `{class}.{attribute}`: expected {expected}, got {got}"
            ),
            GeoDbError::MissingAttribute { class, attribute } => {
                write!(
                    f,
                    "missing required attribute `{attribute}` on class `{class}`"
                )
            }
            GeoDbError::InheritanceCycle(c) => {
                write!(f, "inheritance cycle through class `{c}`")
            }
            GeoDbError::InvalidGeometry(m) => write!(f, "invalid geometry: {m}"),
            GeoDbError::WktParse(m) => write!(f, "WKT parse error: {m}"),
            GeoDbError::Storage(m) => write!(f, "storage error: {m}"),
            GeoDbError::Snapshot(m) => write!(f, "snapshot error: {m}"),
            GeoDbError::SnapshotLoad { context, source } => {
                write!(f, "snapshot load failed: {context}: {source}")
            }
            GeoDbError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
        }
    }
}

impl std::error::Error for GeoDbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GeoDbError::SnapshotLoad { source, .. } => {
                Some(source.as_ref() as &(dyn std::error::Error + 'static))
            }
            _ => None,
        }
    }
}

impl GeoDbError {
    /// Build a [`GeoDbError::SnapshotLoad`] with its cause attached.
    pub fn snapshot_load(context: impl Into<String>, cause: SnapshotCause) -> GeoDbError {
        GeoDbError::SnapshotLoad {
            context: context.into(),
            source: Arc::new(cause),
        }
    }
}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, GeoDbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GeoDbError::TypeMismatch {
            class: "Pole".into(),
            attribute: "pole_height".into(),
            expected: "float".into(),
            got: "text".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("Pole.pole_height"));
        assert!(msg.contains("float"));
        assert!(msg.contains("text"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&GeoDbError::UnknownOid(7));
    }

    #[test]
    fn snapshot_load_exposes_a_source_chain() {
        use std::error::Error;
        let e = GeoDbError::snapshot_load(
            "parse snapshot document",
            SnapshotCause::Json("unexpected end of input".into()),
        );
        let msg = e.to_string();
        assert!(msg.contains("parse snapshot document"));
        let src = e.source().expect("source attached");
        assert!(src.to_string().contains("unexpected end of input"));
        assert!(src.source().is_none());
        // The error stays comparable and cloneable.
        assert_eq!(e.clone(), e);
    }
}
