//! Error type shared by every `geodb` module.

use std::fmt;

/// Errors produced by the geographic DBMS substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeoDbError {
    /// A named schema does not exist in the catalog.
    UnknownSchema(String),
    /// A named class does not exist in the given schema.
    UnknownClass(String),
    /// A named attribute does not exist on the given class.
    UnknownAttribute { class: String, attribute: String },
    /// A named method does not exist on the given class.
    UnknownMethod { class: String, method: String },
    /// An object id does not resolve to a stored instance.
    UnknownOid(u64),
    /// A schema/class/attribute with this name already exists.
    Duplicate(String),
    /// A value did not match the declared attribute type.
    TypeMismatch {
        class: String,
        attribute: String,
        expected: String,
        got: String,
    },
    /// A required (non-optional) attribute was missing on insert.
    MissingAttribute { class: String, attribute: String },
    /// Inheritance cycle detected while resolving a class.
    InheritanceCycle(String),
    /// A geometry was structurally invalid (e.g. polygon with < 3 points).
    InvalidGeometry(String),
    /// WKT text could not be parsed.
    WktParse(String),
    /// A storage-layer failure (page full, bad record id, I/O).
    Storage(String),
    /// Snapshot (de)serialization failure.
    Snapshot(String),
    /// A query referenced something inconsistent (e.g. spatial predicate on
    /// a non-geometry attribute).
    InvalidQuery(String),
}

impl fmt::Display for GeoDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoDbError::UnknownSchema(s) => write!(f, "unknown schema `{s}`"),
            GeoDbError::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            GeoDbError::UnknownAttribute { class, attribute } => {
                write!(f, "unknown attribute `{attribute}` on class `{class}`")
            }
            GeoDbError::UnknownMethod { class, method } => {
                write!(f, "unknown method `{method}` on class `{class}`")
            }
            GeoDbError::UnknownOid(o) => write!(f, "unknown object id {o}"),
            GeoDbError::Duplicate(n) => write!(f, "duplicate definition `{n}`"),
            GeoDbError::TypeMismatch {
                class,
                attribute,
                expected,
                got,
            } => write!(
                f,
                "type mismatch on `{class}.{attribute}`: expected {expected}, got {got}"
            ),
            GeoDbError::MissingAttribute { class, attribute } => {
                write!(
                    f,
                    "missing required attribute `{attribute}` on class `{class}`"
                )
            }
            GeoDbError::InheritanceCycle(c) => {
                write!(f, "inheritance cycle through class `{c}`")
            }
            GeoDbError::InvalidGeometry(m) => write!(f, "invalid geometry: {m}"),
            GeoDbError::WktParse(m) => write!(f, "WKT parse error: {m}"),
            GeoDbError::Storage(m) => write!(f, "storage error: {m}"),
            GeoDbError::Snapshot(m) => write!(f, "snapshot error: {m}"),
            GeoDbError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
        }
    }
}

impl std::error::Error for GeoDbError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, GeoDbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GeoDbError::TypeMismatch {
            class: "Pole".into(),
            attribute: "pole_height".into(),
            expected: "float".into(),
            got: "text".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("Pole.pole_height"));
        assert!(msg.contains("float"));
        assert!(msg.contains("text"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&GeoDbError::UnknownOid(7));
    }
}
