//! F6 — the Fig. 6 customization program and its rule pipeline.
//!
//! Measures the verbatim paper program through every stage: parse,
//! compile to rules (R1/R2/R3), install into a live engine, and the
//! atomic replace-on-recompile path the dispatcher uses.
//!
//! Expected shape: whole pipeline in microseconds — installing a user's
//! customization is interactive-speed, versus a recompile/redeploy cycle
//! under the toolkit approach.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use active::Engine;
use custlang::{compile, parse, Customization, FIG6_PROGRAM};

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_pipeline");

    group.bench_function("parse", |b| {
        b.iter(|| black_box(parse(FIG6_PROGRAM).unwrap()));
    });

    let program = parse(FIG6_PROGRAM).unwrap();
    group.bench_function("compile", |b| {
        b.iter(|| black_box(compile(&program, "fig6")));
    });

    group.bench_function("install_fresh_engine", |b| {
        b.iter(|| {
            let mut engine: Engine<Customization> = Engine::new();
            engine.add_rules(compile(&program, "fig6")).unwrap();
            black_box(engine.len())
        });
    });

    // Live replacement in an engine that already holds 100 other programs.
    group.bench_function("replace_among_100_programs", |b| {
        let mut engine: Engine<Customization> = Engine::new();
        for i in 0..100 {
            let src =
                format!("for user u{i} schema phone_net display as default class Pole display");
            let p = parse(&src).unwrap();
            engine.add_rules(compile(&p, &format!("p{i}"))).unwrap();
        }
        engine.add_rules(compile(&program, "fig6")).unwrap();
        b.iter(|| {
            engine.remove_rules_with_prefix("fig6/");
            engine.add_rules(compile(&program, "fig6")).unwrap();
            black_box(engine.len())
        });
    });

    // Static conflict analysis over the compiled rule set.
    group.bench_function("conflict_analysis", |b| {
        let rules = compile(&program, "fig6");
        b.iter(|| black_box(active::analyze(&rules)));
    });

    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
