//! C1 — rule selection scaling and the most-specific-wins ablation.
//!
//! The paper's execution model fires exactly one customization rule per
//! event, the most specific. This bench measures dispatch latency as the
//! rule population grows (10 → 10 000 rules across a user/category/
//! application lattice) and compares the paper's `MostSpecific` policy
//! against the `FireAll` ablation.
//!
//! Expected shape: dispatch linear in matching-candidate count for both
//! policies (every rule's pattern must be tested), but `FireAll` also
//! pays per-firing action costs and produces conflicting payloads —
//! the qualitative argument for the paper's policy is output size:
//! 1 payload vs. hundreds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use active::{
    ContextPattern, Engine, EngineConfig, Event, EventPattern, Rule, SelectionPolicy,
    SessionContext,
};
use geodb::query::{DbEvent, DbEventKind};

/// Build an engine with `n` customization rules over a context lattice:
/// one third generic-application, one third per-category, one third
/// per-user.
fn engine_with_rules(n: usize, policy: SelectionPolicy) -> Engine<usize> {
    let mut engine = Engine::with_config(EngineConfig {
        selection: policy,
        tracing: false,
        ..Default::default()
    });
    for i in 0..n {
        let ctx = match i % 3 {
            0 => ContextPattern::for_application("pole_manager"),
            1 => ContextPattern::for_category(format!("cat{}", i % 7)).application("pole_manager"),
            _ => ContextPattern::for_user(format!("user{i}")).application("pole_manager"),
        };
        engine
            .add_rule(Rule::customization(
                format!("r{i}"),
                EventPattern::db(DbEventKind::GetClass),
                ctx,
                i,
            ))
            .unwrap();
    }
    engine
}

fn event() -> Event {
    Event::Db(DbEvent::GetClass {
        schema: "phone_net".into(),
        class: "Pole".into(),
    })
}

fn bench_rule_selection(c: &mut Criterion) {
    let session = SessionContext::new("user5", "cat5", "pole_manager");

    let mut group = c.benchmark_group("c1_most_specific");
    for &n in &[10usize, 100, 1000, 10_000] {
        let mut engine = engine_with_rules(n, SelectionPolicy::MostSpecific);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(engine.dispatch(event(), &session).unwrap()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("c1_fire_all_ablation");
    for &n in &[10usize, 100, 1000, 10_000] {
        let mut engine = engine_with_rules(n, SelectionPolicy::FireAll);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(engine.dispatch(event(), &session).unwrap()));
        });
    }
    group.finish();

    // The qualitative difference the latency numbers hide: payload counts.
    let mut most = engine_with_rules(1000, SelectionPolicy::MostSpecific);
    let mut all = engine_with_rules(1000, SelectionPolicy::FireAll);
    let n_most = most
        .dispatch(event(), &session)
        .unwrap()
        .customizations
        .len();
    let n_all = all
        .dispatch(event(), &session)
        .unwrap()
        .customizations
        .len();
    eprintln!(
        "\n[c1] at 1000 rules: MostSpecific selects {n_most} customization, \
         FireAll produces {n_all} conflicting customizations\n"
    );

    // Non-matching dispatch (different application) — the common case in
    // a multi-application deployment.
    let mut group = c.benchmark_group("c1_no_match");
    let other = SessionContext::new("user5", "cat5", "other_app");
    let mut engine = engine_with_rules(1000, SelectionPolicy::MostSpecific);
    group.bench_function("1000_rules_no_context_match", |b| {
        b.iter(|| black_box(engine.dispatch(event(), &other).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_rule_selection);
criterion_main!(benches);
