//! C1 — rule selection scaling, dispatch-strategy comparison, and the
//! most-specific-wins ablation.
//!
//! The paper's execution model fires exactly one customization rule per
//! event, the most specific. This bench measures dispatch latency as the
//! rule population grows (10 → 10 000 rules across a user/category/
//! application lattice), compares the paper's `MostSpecific` policy
//! against the `FireAll` ablation, and — since PR 2 — pits the indexed
//! dispatch path (discrimination index + winner cache) against the
//! `Linear` full-scan oracle it replaced.
//!
//! Expected shape: linear dispatch is O(rules) (every rule's pattern must
//! be tested); the discrimination index is O(candidates in the event's
//! bucket); the winner cache answers repeat dispatches in O(1). The
//! machine-readable comparison lands in `BENCH_dispatch.json` at the
//! repo root. Set `BENCH_QUICK=1` to run a reduced smoke version (CI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use active::{
    ContextPattern, DispatchStrategy, Engine, EngineConfig, Event, EventPattern, Rule,
    SelectionPolicy, SessionContext,
};
use geodb::query::{DbEvent, DbEventKind};

/// Build an engine with `n` customization rules over a context lattice:
/// one third generic-application, one third per-category, one third
/// per-user.
fn engine_with_rules(
    n: usize,
    policy: SelectionPolicy,
    strategy: DispatchStrategy,
) -> Engine<usize> {
    let mut engine = Engine::with_config(EngineConfig {
        selection: policy,
        strategy,
        tracing: false,
        ..Default::default()
    });
    for i in 0..n {
        let ctx = match i % 3 {
            0 => ContextPattern::for_application("pole_manager"),
            1 => ContextPattern::for_category(format!("cat{}", i % 7)).application("pole_manager"),
            _ => ContextPattern::for_user(format!("user{i}")).application("pole_manager"),
        };
        engine
            .add_rule(Rule::customization(
                format!("r{i}"),
                EventPattern::db(DbEventKind::GetClass),
                ctx,
                i,
            ))
            .unwrap();
    }
    engine
}

/// Like [`engine_with_rules`], but the event patterns rotate over five
/// event families (three db kinds, interface gestures, external events),
/// so only ~1/5 of the rules share the dispatched event's bucket — the
/// shape the discrimination index is built for.
fn mixed_engine(n: usize, strategy: DispatchStrategy) -> Engine<usize> {
    let mut engine = Engine::with_config(EngineConfig {
        selection: SelectionPolicy::MostSpecific,
        strategy,
        tracing: false,
        ..Default::default()
    });
    for i in 0..n {
        let pattern = match i % 5 {
            0 => EventPattern::db(DbEventKind::GetClass),
            1 => EventPattern::db(DbEventKind::GetSchema),
            2 => EventPattern::db(DbEventKind::Insert),
            3 => EventPattern::Interface {
                name: Some("click".into()),
                source_prefix: None,
            },
            _ => EventPattern::External {
                name: Some(format!("ext{}", i % 7)),
            },
        };
        let ctx = match i % 3 {
            0 => ContextPattern::for_application("pole_manager"),
            1 => ContextPattern::for_category(format!("cat{}", i % 7)).application("pole_manager"),
            _ => ContextPattern::for_user(format!("user{i}")).application("pole_manager"),
        };
        engine
            .add_rule(Rule::customization(format!("r{i}"), pattern, ctx, i))
            .unwrap();
    }
    engine
}

fn event() -> Event {
    Event::Db(DbEvent::GetClass {
        schema: "phone_net".into(),
        class: "Pole".into(),
    })
}

/// Mean ns/call of `f`, measured with a warm-up and a wall-clock target.
fn measure_ns<F: FnMut()>(mut f: F, quick: bool) -> f64 {
    let warmup = if quick { 5 } else { 50 };
    for _ in 0..warmup {
        f();
    }
    let target_ns: u128 = if quick { 2_000_000 } else { 200_000_000 };
    let mut iters: u64 = 0;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        // Check the clock only every 64 calls so the probe cost does not
        // distort sub-microsecond measurements.
        if iters & 63 == 0 {
            let elapsed = start.elapsed().as_nanos();
            if elapsed >= target_ns {
                return elapsed as f64 / iters as f64;
            }
        }
    }
}

/// Dispatch-strategy comparison rows, written to `BENCH_dispatch.json`.
///
/// Five variants per rule-set size, all repeat-dispatching the same
/// `Get_Class` event under the same session:
/// - `linear`: the full-scan oracle (`DispatchStrategy::Linear`);
/// - `indexed`: the discrimination index with the winner cache forced
///   off (a guard-bearing rule makes the set uncacheable), i.e. the
///   index-walk cost alone;
/// - `indexed_hot`: index + winner cache, where every dispatch after the
///   first is a cache hit — the steady state of an interactive session
///   replaying the same gesture;
/// - `compiled`: the compiled tier (jump tables + interned contexts)
///   with the cache forced off the same way — the table-walk cost alone;
/// - `compiled_hot`: compiled tier + packed winner cache (u64 keys).
///
/// With `DISPATCH_GATE=1`, a row of ≥ 1000 rules where the cold compiled
/// walk is slower than the cold index walk fails the run — the CI
/// regression gate for the compiled tier.
fn dispatch_strategy_comparison(quick: bool) -> serde_json::Value {
    let mut rows = Vec::new();
    rows.extend(scenario_rows(
        "uniform",
        &|n, s| engine_with_rules(n, SelectionPolicy::MostSpecific, s),
        quick,
    ));
    rows.extend(scenario_rows("mixed_kinds", &mixed_engine, quick));

    serde_json::Value::Object(vec![
        (
            "bench".into(),
            serde_json::Value::String("c1_dispatch_strategy".into()),
        ),
        ("quick".into(), serde_json::Value::Bool(quick)),
        (
            "event".into(),
            serde_json::Value::String("Db::Get_Class phone_net/Pole (repeat-dispatch)".into()),
        ),
        (
            "session".into(),
            serde_json::Value::String("user5/cat5/pole_manager".into()),
        ),
        ("rows".into(), serde_json::Value::Array(rows)),
    ])
}

/// One scenario's worth of comparison rows. `uniform` puts every rule in
/// the dispatched event's bucket (the index cannot prune; the cache does
/// all the work); `mixed_kinds` spreads rules over five event families
/// (the index prunes ~80% of candidates before pattern matching).
fn scenario_rows(
    scenario: &str,
    build: &dyn Fn(usize, DispatchStrategy) -> Engine<usize>,
    quick: bool,
) -> Vec<serde_json::Value> {
    let session = SessionContext::new("user5", "cat5", "pole_manager");
    // Quick mode keeps the 1000-rule size: it is the population the
    // compiled-vs-indexed CI gate is defined on.
    let sizes: &[usize] = if quick {
        &[10, 100, 1000]
    } else {
        &[10, 100, 1000, 10_000]
    };
    let gate = std::env::var("DISPATCH_GATE").is_ok();

    // A guarded rule (never matching: external pattern) disables the
    // winner cache for the whole set, isolating the cold walk.
    let cache_off_sentinel = || {
        Rule::customization(
            "cache_off_sentinel",
            EventPattern::External {
                name: Some("never".into()),
            },
            ContextPattern::any(),
            usize::MAX,
        )
        .with_guard(Arc::new(|_, _| false))
    };

    let mut rows = Vec::new();
    for &n in sizes {
        let mut linear = build(n, DispatchStrategy::Linear);
        let mut indexed = build(n, DispatchStrategy::Indexed);
        let mut hot = build(n, DispatchStrategy::Indexed);
        let mut compiled = build(n, DispatchStrategy::Compiled);
        let mut compiled_hot = build(n, DispatchStrategy::Compiled);
        indexed.add_rule(cache_off_sentinel()).unwrap();
        compiled.add_rule(cache_off_sentinel()).unwrap();

        // Compile off the timed path, and capture the one-off cost.
        let compile_ns = compiled.precompile().compile_ns;
        compiled_hot.precompile();

        // The strategies must agree before we time them.
        let a = linear.dispatch(event(), &session).unwrap();
        let b = indexed.dispatch(event(), &session).unwrap();
        let c = hot.dispatch(event(), &session).unwrap();
        let d = compiled.dispatch(event(), &session).unwrap();
        let e = compiled_hot.dispatch(event(), &session).unwrap();
        assert_eq!(a.customization(), b.customization());
        assert_eq!(a.customization(), c.customization());
        assert_eq!(a.customization(), d.customization());
        assert_eq!(a.customization(), e.customization());

        let linear_ns = measure_ns(
            || {
                black_box(linear.dispatch(event(), &session).unwrap());
            },
            quick,
        );
        let indexed_ns = measure_ns(
            || {
                black_box(indexed.dispatch(event(), &session).unwrap());
            },
            quick,
        );
        let hot_ns = measure_ns(
            || {
                black_box(hot.dispatch(event(), &session).unwrap());
            },
            quick,
        );
        let compiled_ns = measure_ns(
            || {
                black_box(compiled.dispatch(event(), &session).unwrap());
            },
            quick,
        );
        let compiled_hot_ns = measure_ns(
            || {
                black_box(compiled_hot.dispatch(event(), &session).unwrap());
            },
            quick,
        );
        let stats = hot.cache_stats();
        assert!(
            stats.hits > stats.misses,
            "hot variant was not cache-hot: {stats:?}"
        );
        let pstats = compiled_hot.cache_stats();
        assert!(
            pstats.hits > pstats.misses,
            "compiled_hot variant was not cache-hot: {pstats:?}"
        );

        // Which matching arm the hybrid picks for this population size
        // (sentinel included): at or below the threshold the index and
        // the compiled tables are skipped and the cold path IS the
        // linear scan.
        let threshold = EngineConfig::default().hybrid_linear_threshold;
        let arm = if n < threshold { "scan" } else { "index" };
        let compiled_arm = if n < threshold { "scan" } else { "compiled" };
        eprintln!(
            "[c1 strategy/{scenario}] {n:>6} rules: linear {linear_ns:>12.1} ns, cold indexed \
             ({arm}) {indexed_ns:>12.1} ns ({:>6.2}x), cold compiled ({compiled_arm}) \
             {compiled_ns:>10.1} ns ({:>6.2}x, {:>6.2}x vs index, compile {:>8.1} µs), \
             cache-hot {hot_ns:>10.1} ns ({:>6.1}x), packed-hot {compiled_hot_ns:>10.1} ns \
             ({:>6.1}x)",
            linear_ns / indexed_ns,
            linear_ns / compiled_ns,
            indexed_ns / compiled_ns,
            compile_ns as f64 / 1e3,
            linear_ns / hot_ns,
            linear_ns / compiled_hot_ns,
        );
        if n >= 1000 && compiled_ns > indexed_ns {
            let msg = format!(
                "[c1 strategy/{scenario}] DISPATCH GATE: cold compiled ({compiled_ns:.1} ns) is \
                 slower than cold indexed ({indexed_ns:.1} ns) at {n} rules"
            );
            if gate {
                panic!("{msg}");
            }
            eprintln!("{msg} (set DISPATCH_GATE=1 to fail)");
        }

        rows.push(serde_json::Value::Object(vec![
            (
                "scenario".into(),
                serde_json::Value::String(scenario.into()),
            ),
            ("rules".into(), serde_json::Value::U64(n as u64)),
            ("arm".into(), serde_json::Value::String(arm.into())),
            (
                "compiled_arm".into(),
                serde_json::Value::String(compiled_arm.into()),
            ),
            ("linear_ns".into(), serde_json::Value::F64(linear_ns)),
            ("indexed_ns".into(), serde_json::Value::F64(indexed_ns)),
            ("indexed_hot_ns".into(), serde_json::Value::F64(hot_ns)),
            ("compiled_ns".into(), serde_json::Value::F64(compiled_ns)),
            (
                "compiled_hot_ns".into(),
                serde_json::Value::F64(compiled_hot_ns),
            ),
            ("compile_ns".into(), serde_json::Value::U64(compile_ns)),
            (
                "speedup_indexed".into(),
                serde_json::Value::F64(linear_ns / indexed_ns),
            ),
            (
                "speedup_hot".into(),
                serde_json::Value::F64(linear_ns / hot_ns),
            ),
            (
                "speedup_compiled".into(),
                serde_json::Value::F64(linear_ns / compiled_ns),
            ),
            (
                "speedup_compiled_vs_indexed".into(),
                serde_json::Value::F64(indexed_ns / compiled_ns),
            ),
        ]));
    }
    rows
}

fn bench_rule_selection(c: &mut Criterion) {
    let quick = std::env::var("BENCH_QUICK").is_ok();
    let session = SessionContext::new("user5", "cat5", "pole_manager");
    let sizes: &[usize] = if quick {
        &[10, 100]
    } else {
        &[10, 100, 1000, 10_000]
    };

    let mut group = c.benchmark_group("c1_most_specific");
    for &n in sizes {
        let mut engine =
            engine_with_rules(n, SelectionPolicy::MostSpecific, DispatchStrategy::Indexed);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(engine.dispatch(event(), &session).unwrap()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("c1_linear_oracle");
    for &n in sizes {
        let mut engine =
            engine_with_rules(n, SelectionPolicy::MostSpecific, DispatchStrategy::Linear);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(engine.dispatch(event(), &session).unwrap()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("c1_fire_all_ablation");
    for &n in sizes {
        let mut engine = engine_with_rules(n, SelectionPolicy::FireAll, DispatchStrategy::Indexed);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(engine.dispatch(event(), &session).unwrap()));
        });
    }
    group.finish();

    // The qualitative difference the latency numbers hide: payload counts.
    let mut most = engine_with_rules(
        1000,
        SelectionPolicy::MostSpecific,
        DispatchStrategy::Indexed,
    );
    let mut all = engine_with_rules(1000, SelectionPolicy::FireAll, DispatchStrategy::Indexed);
    let n_most = most
        .dispatch(event(), &session)
        .unwrap()
        .customizations
        .len();
    let n_all = all
        .dispatch(event(), &session)
        .unwrap()
        .customizations
        .len();
    eprintln!(
        "\n[c1] at 1000 rules: MostSpecific selects {n_most} customization, \
         FireAll produces {n_all} conflicting customizations\n"
    );

    // Non-matching dispatch (different application) — the common case in
    // a multi-application deployment.
    let mut group = c.benchmark_group("c1_no_match");
    let other = SessionContext::new("user5", "cat5", "other_app");
    let mut engine = engine_with_rules(
        1000,
        SelectionPolicy::MostSpecific,
        DispatchStrategy::Indexed,
    );
    group.bench_function("1000_rules_no_context_match", |b| {
        b.iter(|| black_box(engine.dispatch(event(), &other).unwrap()));
    });
    group.finish();

    // Machine-readable strategy comparison: indexed vs the linear oracle,
    // written to the repo root for the perf acceptance gate.
    let summary = dispatch_strategy_comparison(quick);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dispatch.json");
    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    std::fs::write(path, json + "\n").expect("BENCH_dispatch.json is writable");
    eprintln!("[c1 strategy] wrote {path}");
}

criterion_group!(benches, bench_rule_selection);
criterion_main!(benches);
