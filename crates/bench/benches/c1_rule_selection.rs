//! C1 — rule selection scaling, dispatch-strategy comparison, and the
//! most-specific-wins ablation.
//!
//! The paper's execution model fires exactly one customization rule per
//! event, the most specific. This bench measures dispatch latency as the
//! rule population grows (10 → 10 000 rules across a user/category/
//! application lattice), compares the paper's `MostSpecific` policy
//! against the `FireAll` ablation, and — since PR 2 — pits the indexed
//! dispatch path (discrimination index + winner cache) against the
//! `Linear` full-scan oracle it replaced.
//!
//! Expected shape: linear dispatch is O(rules) (every rule's pattern must
//! be tested); the discrimination index is O(candidates in the event's
//! bucket); the winner cache answers repeat dispatches in O(1). The
//! machine-readable comparison lands in `BENCH_dispatch.json` at the
//! repo root. Set `BENCH_QUICK=1` to run a reduced smoke version (CI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use active::{
    ContextPattern, DispatchStrategy, Engine, EngineConfig, Event, EventPattern, Rule,
    SelectionPolicy, SessionContext,
};
use geodb::query::{DbEvent, DbEventKind};

/// Build an engine with `n` customization rules over a context lattice:
/// one third generic-application, one third per-category, one third
/// per-user.
fn engine_with_rules(
    n: usize,
    policy: SelectionPolicy,
    strategy: DispatchStrategy,
) -> Engine<usize> {
    let mut engine = Engine::with_config(EngineConfig {
        selection: policy,
        strategy,
        tracing: false,
        ..Default::default()
    });
    for i in 0..n {
        let ctx = match i % 3 {
            0 => ContextPattern::for_application("pole_manager"),
            1 => ContextPattern::for_category(format!("cat{}", i % 7)).application("pole_manager"),
            _ => ContextPattern::for_user(format!("user{i}")).application("pole_manager"),
        };
        engine
            .add_rule(Rule::customization(
                format!("r{i}"),
                EventPattern::db(DbEventKind::GetClass),
                ctx,
                i,
            ))
            .unwrap();
    }
    engine
}

/// Like [`engine_with_rules`], but the event patterns rotate over five
/// event families (three db kinds, interface gestures, external events),
/// so only ~1/5 of the rules share the dispatched event's bucket — the
/// shape the discrimination index is built for.
fn mixed_engine(n: usize, strategy: DispatchStrategy) -> Engine<usize> {
    let mut engine = Engine::with_config(EngineConfig {
        selection: SelectionPolicy::MostSpecific,
        strategy,
        tracing: false,
        ..Default::default()
    });
    for i in 0..n {
        let pattern = match i % 5 {
            0 => EventPattern::db(DbEventKind::GetClass),
            1 => EventPattern::db(DbEventKind::GetSchema),
            2 => EventPattern::db(DbEventKind::Insert),
            3 => EventPattern::Interface {
                name: Some("click".into()),
                source_prefix: None,
            },
            _ => EventPattern::External {
                name: Some(format!("ext{}", i % 7)),
            },
        };
        let ctx = match i % 3 {
            0 => ContextPattern::for_application("pole_manager"),
            1 => ContextPattern::for_category(format!("cat{}", i % 7)).application("pole_manager"),
            _ => ContextPattern::for_user(format!("user{i}")).application("pole_manager"),
        };
        engine
            .add_rule(Rule::customization(format!("r{i}"), pattern, ctx, i))
            .unwrap();
    }
    engine
}

fn event() -> Event {
    Event::Db(DbEvent::GetClass {
        schema: "phone_net".into(),
        class: "Pole".into(),
    })
}

/// Mean ns/call of `f`, measured with a warm-up and a wall-clock target.
fn measure_ns<F: FnMut()>(mut f: F, quick: bool) -> f64 {
    let warmup = if quick { 5 } else { 50 };
    for _ in 0..warmup {
        f();
    }
    let target_ns: u128 = if quick { 2_000_000 } else { 200_000_000 };
    let mut iters: u64 = 0;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        // Check the clock only every 64 calls so the probe cost does not
        // distort sub-microsecond measurements.
        if iters & 63 == 0 {
            let elapsed = start.elapsed().as_nanos();
            if elapsed >= target_ns {
                return elapsed as f64 / iters as f64;
            }
        }
    }
}

/// Dispatch-strategy comparison rows, written to `BENCH_dispatch.json`.
///
/// Five variants per rule-set size, all repeat-dispatching the same
/// `Get_Class` event under the same session:
/// - `linear`: the full-scan oracle (`DispatchStrategy::Linear`);
/// - `indexed`: the discrimination index with the winner cache forced
///   off (a guard-bearing rule makes the set uncacheable), i.e. the
///   index-walk cost alone;
/// - `indexed_hot`: index + winner cache, where every dispatch after the
///   first is a cache hit — the steady state of an interactive session
///   replaying the same gesture;
/// - `compiled`: the compiled tier (jump tables + interned contexts)
///   with the cache forced off the same way — the table-walk cost alone;
/// - `compiled_hot`: compiled tier + packed winner cache (u64 keys).
///
/// With `DISPATCH_GATE=1`, a row of ≥ 1000 rules where the cold compiled
/// walk is slower than the cold index walk fails the run — the CI
/// regression gate for the compiled tier.
fn dispatch_strategy_comparison(quick: bool) -> serde_json::Value {
    let mut rows = Vec::new();
    rows.extend(scenario_rows(
        "uniform",
        &|n, s| engine_with_rules(n, SelectionPolicy::MostSpecific, s),
        quick,
    ));
    rows.extend(scenario_rows("mixed_kinds", &mixed_engine, quick));

    serde_json::Value::Object(vec![
        (
            "bench".into(),
            serde_json::Value::String("c1_dispatch_strategy".into()),
        ),
        ("quick".into(), serde_json::Value::Bool(quick)),
        (
            "event".into(),
            serde_json::Value::String("Db::Get_Class phone_net/Pole (repeat-dispatch)".into()),
        ),
        (
            "session".into(),
            serde_json::Value::String("user5/cat5/pole_manager".into()),
        ),
        ("rows".into(), serde_json::Value::Array(rows)),
    ])
}

/// One scenario's worth of comparison rows. `uniform` puts every rule in
/// the dispatched event's bucket (the index cannot prune; the cache does
/// all the work); `mixed_kinds` spreads rules over five event families
/// (the index prunes ~80% of candidates before pattern matching).
fn scenario_rows(
    scenario: &str,
    build: &dyn Fn(usize, DispatchStrategy) -> Engine<usize>,
    quick: bool,
) -> Vec<serde_json::Value> {
    let session = SessionContext::new("user5", "cat5", "pole_manager");
    // Quick mode keeps the 1000-rule size: it is the population the
    // compiled-vs-indexed CI gate is defined on.
    let sizes: &[usize] = if quick {
        &[10, 100, 1000]
    } else {
        &[10, 100, 1000, 10_000]
    };
    let gate = std::env::var("DISPATCH_GATE").is_ok();

    // A guarded rule (never matching: external pattern) disables the
    // winner cache for the whole set, isolating the cold walk.
    let cache_off_sentinel = || {
        Rule::customization(
            "cache_off_sentinel",
            EventPattern::External {
                name: Some("never".into()),
            },
            ContextPattern::any(),
            usize::MAX,
        )
        .with_guard(Arc::new(|_, _| false))
    };

    let mut rows = Vec::new();
    for &n in sizes {
        let mut linear = build(n, DispatchStrategy::Linear);
        let mut indexed = build(n, DispatchStrategy::Indexed);
        let mut hot = build(n, DispatchStrategy::Indexed);
        let mut compiled = build(n, DispatchStrategy::Compiled);
        let mut compiled_hot = build(n, DispatchStrategy::Compiled);
        indexed.add_rule(cache_off_sentinel()).unwrap();
        compiled.add_rule(cache_off_sentinel()).unwrap();

        // Compile off the timed path, and capture the one-off cost.
        let compile_ns = compiled.precompile().compile_ns;
        compiled_hot.precompile();

        // The strategies must agree before we time them.
        let a = linear.dispatch(event(), &session).unwrap();
        let b = indexed.dispatch(event(), &session).unwrap();
        let c = hot.dispatch(event(), &session).unwrap();
        let d = compiled.dispatch(event(), &session).unwrap();
        let e = compiled_hot.dispatch(event(), &session).unwrap();
        assert_eq!(a.customization(), b.customization());
        assert_eq!(a.customization(), c.customization());
        assert_eq!(a.customization(), d.customization());
        assert_eq!(a.customization(), e.customization());

        let linear_ns = measure_ns(
            || {
                black_box(linear.dispatch(event(), &session).unwrap());
            },
            quick,
        );
        let indexed_ns = measure_ns(
            || {
                black_box(indexed.dispatch(event(), &session).unwrap());
            },
            quick,
        );
        let hot_ns = measure_ns(
            || {
                black_box(hot.dispatch(event(), &session).unwrap());
            },
            quick,
        );
        let compiled_ns = measure_ns(
            || {
                black_box(compiled.dispatch(event(), &session).unwrap());
            },
            quick,
        );
        let compiled_hot_ns = measure_ns(
            || {
                black_box(compiled_hot.dispatch(event(), &session).unwrap());
            },
            quick,
        );
        let stats = hot.cache_stats();
        assert!(
            stats.hits > stats.misses,
            "hot variant was not cache-hot: {stats:?}"
        );
        let pstats = compiled_hot.cache_stats();
        assert!(
            pstats.hits > pstats.misses,
            "compiled_hot variant was not cache-hot: {pstats:?}"
        );

        // Which matching arm the hybrid picks for this population size
        // (sentinel included): at or below the threshold the index and
        // the compiled tables are skipped and the cold path IS the
        // linear scan.
        let threshold = EngineConfig::default().hybrid_linear_threshold;
        let arm = if n < threshold { "scan" } else { "index" };
        let compiled_arm = if n < threshold { "scan" } else { "compiled" };
        eprintln!(
            "[c1 strategy/{scenario}] {n:>6} rules: linear {linear_ns:>12.1} ns, cold indexed \
             ({arm}) {indexed_ns:>12.1} ns ({:>6.2}x), cold compiled ({compiled_arm}) \
             {compiled_ns:>10.1} ns ({:>6.2}x, {:>6.2}x vs index, compile {:>8.1} µs), \
             cache-hot {hot_ns:>10.1} ns ({:>6.1}x), packed-hot {compiled_hot_ns:>10.1} ns \
             ({:>6.1}x)",
            linear_ns / indexed_ns,
            linear_ns / compiled_ns,
            indexed_ns / compiled_ns,
            compile_ns as f64 / 1e3,
            linear_ns / hot_ns,
            linear_ns / compiled_hot_ns,
        );
        if n >= 1000 && compiled_ns > indexed_ns {
            let msg = format!(
                "[c1 strategy/{scenario}] DISPATCH GATE: cold compiled ({compiled_ns:.1} ns) is \
                 slower than cold indexed ({indexed_ns:.1} ns) at {n} rules"
            );
            if gate {
                panic!("{msg}");
            }
            eprintln!("{msg} (set DISPATCH_GATE=1 to fail)");
        }

        rows.push(serde_json::Value::Object(vec![
            (
                "scenario".into(),
                serde_json::Value::String(scenario.into()),
            ),
            ("rules".into(), serde_json::Value::U64(n as u64)),
            ("arm".into(), serde_json::Value::String(arm.into())),
            (
                "compiled_arm".into(),
                serde_json::Value::String(compiled_arm.into()),
            ),
            ("linear_ns".into(), serde_json::Value::F64(linear_ns)),
            ("indexed_ns".into(), serde_json::Value::F64(indexed_ns)),
            ("indexed_hot_ns".into(), serde_json::Value::F64(hot_ns)),
            ("compiled_ns".into(), serde_json::Value::F64(compiled_ns)),
            (
                "compiled_hot_ns".into(),
                serde_json::Value::F64(compiled_hot_ns),
            ),
            ("compile_ns".into(), serde_json::Value::U64(compile_ns)),
            (
                "speedup_indexed".into(),
                serde_json::Value::F64(linear_ns / indexed_ns),
            ),
            (
                "speedup_hot".into(),
                serde_json::Value::F64(linear_ns / hot_ns),
            ),
            (
                "speedup_compiled".into(),
                serde_json::Value::F64(linear_ns / compiled_ns),
            ),
            (
                "speedup_compiled_vs_indexed".into(),
                serde_json::Value::F64(indexed_ns / compiled_ns),
            ),
        ]));
    }
    rows
}

/// Batch-lane rows: the same cache-hot `Get_Class` stream dispatched one
/// event at a time vs through `dispatch_batch`, which packs the context,
/// classifies the route and resolves the selection memo once per lane
/// instead of once per event. With `DISPATCH_GATE=1`, a batch of ≥ 16
/// events dispatching slower per event than the per-event loop fails the
/// run.
fn batch_section(quick: bool) -> serde_json::Value {
    let session = SessionContext::new("user5", "cat5", "pole_manager");
    let n = 1000;
    let batch_sizes: &[usize] = if quick { &[16, 64] } else { &[16, 64, 256] };
    let gate = std::env::var("DISPATCH_GATE").is_ok();

    let mut per_event =
        engine_with_rules(n, SelectionPolicy::MostSpecific, DispatchStrategy::Compiled);
    let mut batched =
        engine_with_rules(n, SelectionPolicy::MostSpecific, DispatchStrategy::Compiled);
    per_event.precompile();
    batched.precompile();

    let mut rows = Vec::new();
    for &len in batch_sizes {
        let events: Vec<Event> = (0..len).map(|_| event()).collect();
        // Equivalence before timing.
        let outs = batched.dispatch_batch(events.iter().cloned(), &session);
        let want = per_event.dispatch(event(), &session).unwrap();
        assert_eq!(outs.len(), len);
        for o in &outs {
            assert_eq!(o.as_ref().unwrap().customization(), want.customization());
        }

        let per_event_ns = measure_ns(
            || {
                for e in &events {
                    black_box(per_event.dispatch(e.clone(), &session).unwrap());
                }
            },
            quick,
        ) / len as f64;
        let batch_ns = measure_ns(
            || {
                black_box(batched.dispatch_batch(events.iter().cloned(), &session));
            },
            quick,
        ) / len as f64;
        let speedup = per_event_ns / batch_ns;
        eprintln!(
            "[c1 batch] {n} rules, batch {len:>4}: per-event {per_event_ns:>8.1} ns/ev, \
             batch lane {batch_ns:>8.1} ns/ev ({speedup:>5.2}x)"
        );
        if batch_ns > per_event_ns {
            let msg = format!(
                "[c1 batch] DISPATCH GATE: batch lane ({batch_ns:.1} ns/ev) is slower \
                 than the per-event loop ({per_event_ns:.1} ns/ev) at batch {len}"
            );
            if gate {
                panic!("{msg}");
            }
            eprintln!("{msg} (set DISPATCH_GATE=1 to fail)");
        }
        rows.push(serde_json::Value::Object(vec![
            ("rules".into(), serde_json::Value::U64(n as u64)),
            ("batch_len".into(), serde_json::Value::U64(len as u64)),
            (
                "per_event_ns_per_event".into(),
                serde_json::Value::F64(per_event_ns),
            ),
            (
                "batch_ns_per_event".into(),
                serde_json::Value::F64(batch_ns),
            ),
            ("speedup_batch".into(), serde_json::Value::F64(speedup)),
        ]));
    }
    serde_json::Value::Object(vec![
        (
            "workload".into(),
            serde_json::Value::String(
                "uniform 1000-rule set, cache-hot Get_Class stream: per-event \
                 dispatch loop vs dispatch_batch lane memos (compiled tier)"
                    .into(),
            ),
        ),
        ("rows".into(), serde_json::Value::Array(rows)),
    ])
}

fn quantile(sorted: &[f64], p: f64) -> f64 {
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

/// Hot-reload rows: the cost of bringing the compiled artifact back up
/// after a single-rule mutation — splicing a delta into the previous
/// tables vs recompiling from scratch — and the dispatch p99 of a
/// session that keeps dispatching while rules flip under it (every 50th
/// dispatch is preceded by a priority edit, so the next dispatch pays
/// the rebuild).
fn hot_reload_section(quick: bool) -> serde_json::Value {
    let session = SessionContext::new("user5", "cat5", "pole_manager");
    let sizes: &[usize] = if quick { &[1000] } else { &[1000, 10_000] };
    let iters = if quick { 30 } else { 150 };

    let mut rows = Vec::new();
    for &n in sizes {
        // Patch arm: the artifact stays warm, every precompile splices.
        let mut patched =
            engine_with_rules(n, SelectionPolicy::MostSpecific, DispatchStrategy::Compiled);
        patched.precompile();
        let mut patch_ns: Vec<f64> = Vec::with_capacity(iters);
        for i in 0..iters {
            patched
                .set_priority(&format!("r{}", i % n), ((i * 13) % 7) as i32 - 3)
                .unwrap();
            let t0 = Instant::now();
            let stats = patched.precompile();
            patch_ns.push(t0.elapsed().as_nanos() as f64);
            assert!(stats.patched, "priority edit must splice, not recompile");
        }
        // Full arm: the artifact is discarded before every precompile.
        let mut full =
            engine_with_rules(n, SelectionPolicy::MostSpecific, DispatchStrategy::Compiled);
        full.precompile();
        let mut full_ns: Vec<f64> = Vec::with_capacity(iters);
        for i in 0..iters {
            full.set_priority(&format!("r{}", i % n), ((i * 13) % 7) as i32 - 3)
                .unwrap();
            full.rule_base().invalidate_compiled();
            let t0 = Instant::now();
            let stats = full.precompile();
            full_ns.push(t0.elapsed().as_nanos() as f64);
            assert!(!stats.patched);
        }
        patch_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        full_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (patch_p50, patch_p99) = (quantile(&patch_ns, 0.5), quantile(&patch_ns, 0.99));
        let (full_p50, full_p99) = (quantile(&full_ns, 0.5), quantile(&full_ns, 0.99));
        let speedup = full_p50 / patch_p50;

        // Dispatch latency under live reconfiguration: the engine keeps
        // serving while priorities flip, lazily rebuilding on the next
        // dispatch after each flip.
        let p99_with_flips = |engine: &mut Engine<usize>, invalidate: bool| {
            let samples = if quick { 400 } else { 2000 };
            let mut lat: Vec<f64> = Vec::with_capacity(samples);
            for i in 0..samples {
                if i > 0 && i % 50 == 0 {
                    engine
                        .set_priority(&format!("r{}", i % n), ((i * 31) % 7) as i32 - 3)
                        .unwrap();
                    if invalidate {
                        engine.rule_base().invalidate_compiled();
                    }
                }
                let t0 = Instant::now();
                black_box(engine.dispatch(event(), &session).unwrap());
                lat.push(t0.elapsed().as_nanos() as f64);
            }
            lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
            quantile(&lat, 0.99)
        };
        let dispatch_p99_patch = p99_with_flips(&mut patched, false);
        let dispatch_p99_full = p99_with_flips(&mut full, true);

        eprintln!(
            "[c1 hot-reload] {n:>6} rules: patch p50 {patch_p50:>10.0} ns (p99 {patch_p99:>10.0}), \
             full recompile p50 {full_p50:>11.0} ns (p99 {full_p99:>11.0}) — patch {speedup:>6.1}x \
             faster; dispatch p99 across flips: {dispatch_p99_patch:>9.0} ns patched vs \
             {dispatch_p99_full:>10.0} ns recompiled"
        );
        if n >= 10_000 && speedup < 10.0 {
            eprintln!(
                "[c1 hot-reload] WARNING: patch only {speedup:.1}x faster than full \
                 recompile at {n} rules (target >= 10x)"
            );
        }
        rows.push(serde_json::Value::Object(vec![
            ("rules".into(), serde_json::Value::U64(n as u64)),
            ("mutations".into(), serde_json::Value::U64(iters as u64)),
            ("patch_p50_ns".into(), serde_json::Value::F64(patch_p50)),
            ("patch_p99_ns".into(), serde_json::Value::F64(patch_p99)),
            (
                "full_recompile_p50_ns".into(),
                serde_json::Value::F64(full_p50),
            ),
            (
                "full_recompile_p99_ns".into(),
                serde_json::Value::F64(full_p99),
            ),
            ("speedup_patch".into(), serde_json::Value::F64(speedup)),
            (
                "dispatch_p99_across_flips_patched_ns".into(),
                serde_json::Value::F64(dispatch_p99_patch),
            ),
            (
                "dispatch_p99_across_flips_recompiled_ns".into(),
                serde_json::Value::F64(dispatch_p99_full),
            ),
        ]));
    }
    serde_json::Value::Object(vec![
        (
            "workload".into(),
            serde_json::Value::String(
                "single-rule priority edits against a compiled rule book: splice \
                 the delta into the previous artifact (patch) vs recompile from \
                 scratch; plus dispatch p99 of a session serving across the flips"
                    .into(),
            ),
        ),
        ("rows".into(), serde_json::Value::Array(rows)),
    ])
}

fn bench_rule_selection(c: &mut Criterion) {
    let quick = std::env::var("BENCH_QUICK").is_ok();
    let session = SessionContext::new("user5", "cat5", "pole_manager");
    let sizes: &[usize] = if quick {
        &[10, 100]
    } else {
        &[10, 100, 1000, 10_000]
    };

    let mut group = c.benchmark_group("c1_most_specific");
    for &n in sizes {
        let mut engine =
            engine_with_rules(n, SelectionPolicy::MostSpecific, DispatchStrategy::Indexed);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(engine.dispatch(event(), &session).unwrap()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("c1_linear_oracle");
    for &n in sizes {
        let mut engine =
            engine_with_rules(n, SelectionPolicy::MostSpecific, DispatchStrategy::Linear);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(engine.dispatch(event(), &session).unwrap()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("c1_fire_all_ablation");
    for &n in sizes {
        let mut engine = engine_with_rules(n, SelectionPolicy::FireAll, DispatchStrategy::Indexed);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(engine.dispatch(event(), &session).unwrap()));
        });
    }
    group.finish();

    // The qualitative difference the latency numbers hide: payload counts.
    let mut most = engine_with_rules(
        1000,
        SelectionPolicy::MostSpecific,
        DispatchStrategy::Indexed,
    );
    let mut all = engine_with_rules(1000, SelectionPolicy::FireAll, DispatchStrategy::Indexed);
    let n_most = most
        .dispatch(event(), &session)
        .unwrap()
        .customizations
        .len();
    let n_all = all
        .dispatch(event(), &session)
        .unwrap()
        .customizations
        .len();
    eprintln!(
        "\n[c1] at 1000 rules: MostSpecific selects {n_most} customization, \
         FireAll produces {n_all} conflicting customizations\n"
    );

    // Non-matching dispatch (different application) — the common case in
    // a multi-application deployment.
    let mut group = c.benchmark_group("c1_no_match");
    let other = SessionContext::new("user5", "cat5", "other_app");
    let mut engine = engine_with_rules(
        1000,
        SelectionPolicy::MostSpecific,
        DispatchStrategy::Indexed,
    );
    group.bench_function("1000_rules_no_context_match", |b| {
        b.iter(|| black_box(engine.dispatch(event(), &other).unwrap()));
    });
    group.finish();

    // Machine-readable strategy comparison: indexed vs the linear oracle,
    // plus the batch-lane and hot-reload sections, written to the repo
    // root for the perf acceptance gate.
    let mut summary = dispatch_strategy_comparison(quick);
    if let serde_json::Value::Object(fields) = &mut summary {
        fields.push(("batch".into(), batch_section(quick)));
        fields.push(("hot_reload".into(), hot_reload_section(quick)));
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dispatch.json");
    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    std::fs::write(path, json + "\n").expect("BENCH_dispatch.json is writable");
    eprintln!("[c1 strategy] wrote {path}");
}

criterion_group!(benches, bench_rule_selection);
criterion_main!(benches);
