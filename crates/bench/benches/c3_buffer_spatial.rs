//! C3 — "the interface has to provide large buffers … efficient
//! management of buffers is a typical dbms problem the gis interface must
//! deal with."
//!
//! Three measurements:
//!
//! 1. Spatial access methods on map-viewport queries: R-tree vs. uniform
//!    grid vs. sequential scan at 1k / 10k / 50k poles. Expected shape:
//!    scan linear in extension size; R-tree and grid roughly flat in the
//!    non-matching population — R-tree wins clearly past ~10³ features.
//! 2. Buffer-pool hit rate under a map-browsing workload (panning a
//!    viewport) as the pool shrinks below the working set, LRU vs.
//!    clock. Expected: hit-rate knee when the pool no longer covers the
//!    hot region; clock within a few points of LRU at a fraction of the
//!    bookkeeping.
//! 3. End-to-end pan latency through the database (query + record fetch
//!    through the pool).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bench::db_with_poles;
use geodb::db::IndexKind;
use geodb::gen::{phone_net_db, TelecomConfig};
use geodb::geometry::Rect;
use geodb::storage::EvictionPolicy;

fn db_with_index(n: usize, kind: IndexKind) -> geodb::db::Database {
    let mut db = geodb::db::Database::new("bench");
    db.set_index_kind(kind);
    geodb::gen::generate_phone_net(&mut db, &TelecomConfig::with_poles(n)).unwrap();
    db
}

fn bench_spatial(c: &mut Criterion) {
    let mut group = c.benchmark_group("c3_access_methods");
    group.sample_size(20);

    for &n in &[1000usize, 10_000, 50_000] {
        // Viewport ≈ 1% of the map area.
        let side = (2.0 * (n as f64)).sqrt() * 100.0 / 10.0; // rough grid extent / 10
        let window = Rect::new(0.0, 0.0, side, side);

        for (label, kind) in [
            ("rtree", IndexKind::RTree),
            ("grid", IndexKind::Grid { cell: 50.0 }),
            ("scan", IndexKind::None),
        ] {
            let mut db = db_with_index(n, kind);
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new(label, n), &window, |b, window| {
                b.iter(|| black_box(db.window_query("phone_net", "Pole", *window).unwrap()));
            });
        }
    }
    group.finish();

    // Ablation: insertion-built vs. STR bulk-loaded R-tree (DESIGN.md §6).
    {
        use geodb::index::{RTree, SpatialIndex};
        use geodb::instance::Oid;
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let items: Vec<(Oid, Rect)> = (0..50_000u64)
            .map(|i| {
                let x = rng.gen_range(0.0..10_000.0);
                let y = rng.gen_range(0.0..10_000.0);
                (Oid(i), Rect::new(x, y, x + 2.0, y + 2.0))
            })
            .collect();
        let inserted = RTree::from_items(items.iter().cloned());
        let bulk = RTree::bulk_load(items.iter().cloned());
        eprintln!(
            "\n[c3] R-tree fill factor at 50k rects: insertion-built {:.2}, STR bulk {:.2}",
            inserted.fill_factor(),
            bulk.fill_factor()
        );
        let mut group = c.benchmark_group("c3_rtree_build_ablation");
        group.sample_size(10);
        group.bench_function("build_by_insertion", |b| {
            b.iter(|| black_box(RTree::from_items(items.iter().cloned())));
        });
        group.bench_function("build_by_str_bulk_load", |b| {
            b.iter(|| black_box(RTree::bulk_load(items.iter().cloned())));
        });
        let window = Rect::new(2000.0, 2000.0, 3000.0, 3000.0);
        group.bench_function("query_insertion_built", |b| {
            b.iter(|| black_box(inserted.query_rect(&window)));
        });
        group.bench_function("query_bulk_loaded", |b| {
            b.iter(|| black_box(bulk.query_rect(&window)));
        });
        group.finish();
    }

    // Buffer-pool hit rates under a panning workload (printed series).
    eprintln!("\n[c3] buffer hit rate, panning browse over ~10k poles");
    eprintln!("{:>8} {:>10} {:>10}", "frames", "LRU", "Clock");
    for &frames in &[8usize, 32, 128, 512] {
        let mut rates = Vec::new();
        for policy in [EvictionPolicy::Lru, EvictionPolicy::Clock] {
            let mut db = geodb::db::Database::with_pool("bench", frames, policy);
            geodb::gen::generate_phone_net(&mut db, &TelecomConfig::with_poles(10_000)).unwrap();
            db.reset_buffer_stats();
            // Pan a viewport across the map twice (re-visits = hits).
            let extent = 2.0 * (10_000f64).sqrt() * 10.0;
            for _ in 0..2 {
                let mut x = 0.0;
                while x < extent {
                    let w = Rect::new(x, 0.0, x + extent / 8.0, extent);
                    db.window_query("phone_net", "Pole", w).unwrap();
                    x += extent / 16.0;
                }
            }
            rates.push(db.buffer_stats().hit_rate());
        }
        eprintln!(
            "{:>8} {:>9.1}% {:>9.1}%",
            frames,
            rates[0] * 100.0,
            rates[1] * 100.0
        );
    }
    eprintln!();

    // End-to-end pan latency with a tight pool vs. a roomy one.
    let mut group = c.benchmark_group("c3_pan_latency");
    group.sample_size(20);
    for &frames in &[16usize, 1024] {
        let mut db = geodb::db::Database::with_pool("bench", frames, EvictionPolicy::Lru);
        geodb::gen::generate_phone_net(&mut db, &TelecomConfig::with_poles(10_000)).unwrap();
        let extent = 2.0 * (10_000f64).sqrt() * 10.0;
        let mut x = 0.0f64;
        group.bench_with_input(BenchmarkId::from_parameter(frames), &frames, |b, _| {
            b.iter(|| {
                x = (x + extent / 16.0) % extent;
                let w = Rect::new(x, 0.0, x + extent / 8.0, extent);
                black_box(db.window_query("phone_net", "Pole", w).unwrap())
            });
        });
    }
    group.finish();

    // Raw snapshot determinism guard (cheap sanity while we are here).
    let (mut db, _) = phone_net_db(&TelecomConfig::small()).unwrap();
    let a = geodb::snapshot::save(&mut db).unwrap();
    assert!(!a.is_empty());
    let _ = db_with_poles(100);
}

criterion_group!(benches, bench_spatial);
criterion_main!(benches);
