//! F1 — the Fig. 1 architecture event flow.
//!
//! Measures the cost of one complete user interaction (click → interface
//! event → database event → rule dispatch → builder → window) along four
//! paths: generic (no rules), customized (Fig. 6 rules installed),
//! hardwired baseline (no architecture at all), and through the
//! weak-integration protocol (JSON encode/decode on both sides).
//!
//! Expected shape: hardwired ≤ generic ≈ customized ≪ protocol overhead
//! remains small relative to window construction; the active mechanism
//! adds only a rule lookup to the generic path.

use bench::{customized_gis, generic_gis};
use builder::baselines::hardwired_class_window;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use activegis::TelecomConfig;
use gisui::{Request, Response};
use uilib::Library;

fn bench_event_flow(c: &mut Criterion) {
    let cfg = TelecomConfig::small();
    let mut group = c.benchmark_group("fig1_event_flow");
    group.sample_size(30);

    // Generic path: open a class window with no rules installed.
    group.bench_function("generic_open_class", |b| {
        let mut gis = generic_gis(&cfg);
        let sid = gis.login("guest", "visitor", "browse");
        b.iter(|| {
            let w = gis.browse_class(sid, "phone_net", "Pole").unwrap();
            let d = gis.dispatcher();
            black_box(d.close_window(sid, w).unwrap());
        });
    });

    // Customized path: same gesture under the Fig. 6 rules.
    group.bench_function("customized_open_class", |b| {
        let mut gis = customized_gis(&cfg);
        let sid = gis.login("juliano", "planner", "pole_manager");
        b.iter(|| {
            let w = gis.browse_class(sid, "phone_net", "Pole").unwrap();
            let d = gis.dispatcher();
            black_box(d.close_window(sid, w).unwrap());
        });
    });

    // Hardwired baseline: direct window construction, no dispatcher, no
    // rules, no event interception.
    group.bench_function("hardwired_build", |b| {
        let mut gis = generic_gis(&cfg);
        let poles = gis
            .dispatcher()
            .snapshot()
            .get_class("phone_net", "Pole", false)
            .unwrap();
        let lib = Library::with_kernel();
        b.iter(|| black_box(hardwired_class_window(&lib, "Pole", &poles).unwrap()));
    });

    // Weak-integration protocol: the same interaction through JSON.
    group.bench_function("protocol_open_class", |b| {
        let mut gis = customized_gis(&cfg);
        let sid = gis.login("juliano", "planner", "pole_manager");
        b.iter(|| {
            let wire = gisui::encode(&Request::OpenClass {
                schema: "phone_net".into(),
                class: "Pole".into(),
            });
            let req: Request = gisui::decode(&wire).unwrap();
            let resp = gis.dispatcher().handle_request(sid, req);
            let wire = gisui::encode(&resp);
            let resp: Response = gisui::decode(&wire).unwrap();
            if let Response::Windows(ws) = &resp {
                let id = gisui::WindowId(ws[0].id);
                gis.dispatcher().close_window(sid, id).unwrap();
            }
            black_box(resp);
        });
    });

    // Full three-window walkthrough (schema -> class -> instance), the
    // paper's "typical browsing session".
    group.bench_function("full_browse_session", |b| {
        let mut gis = customized_gis(&cfg);
        let mut n = 0u32;
        b.iter(|| {
            n += 1;
            let sid = gis.login(&format!("guest{n}"), "visitor", "browse");
            let windows = gis.browse_schema(sid, "phone_net").unwrap();
            let class = gis.browse_class(sid, "phone_net", "Pole").unwrap();
            let poles = gis
                .dispatcher()
                .snapshot()
                .get_class("phone_net", "Pole", false)
                .unwrap();
            let inst = gis.inspect(sid, poles[0].oid).unwrap();
            for w in windows.into_iter().chain([class, inst]) {
                gis.dispatcher().close_window(sid, w).unwrap();
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_event_flow);
criterion_main!(benches);
