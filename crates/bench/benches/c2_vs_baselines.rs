//! C2 — active customization vs. the three existing approaches.
//!
//! Two measurements back the paper's economic claim:
//!
//! 1. **Run-time price** of the active architecture: building the same
//!    Class-set window hardwired vs. through the full active path. The
//!    claim holds if the overhead is a small constant factor.
//! 2. **Deployment cost** (printed table): lines-touched and redeploys to
//!    support N user contexts under toolkit / multiple-paradigms /
//!    active, using the cost model calibrated from the paper's own
//!    datapoint (10 000 LoC per 100 windows in [14]).
//!
//! Expected shape: active ≈ hardwired × small-constant at run time;
//! active's deployment cost flat in contexts (slope = directive lines)
//! while the baselines grow by ~300 LoC and ≥1 redeploy per context —
//! crossover before the second context.

use bench::{customized_gis, generic_gis};
use builder::baselines::{hardwired_class_window, CostModel};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use activegis::TelecomConfig;
use uilib::Library;

fn bench_vs_baselines(c: &mut Criterion) {
    let cfg = TelecomConfig::small();

    let mut group = c.benchmark_group("c2_runtime");
    group.sample_size(40);

    group.bench_function("hardwired", |b| {
        let mut gis = generic_gis(&cfg);
        let poles = gis
            .dispatcher()
            .snapshot()
            .get_class("phone_net", "Pole", false)
            .unwrap();
        let lib = Library::with_kernel();
        b.iter(|| black_box(hardwired_class_window(&lib, "Pole", &poles).unwrap()));
    });

    group.bench_function("active_generic_path", |b| {
        let mut gis = generic_gis(&cfg);
        let sid = gis.login("guest", "visitor", "browse");
        b.iter(|| {
            let w = gis.browse_class(sid, "phone_net", "Pole").unwrap();
            gis.dispatcher().close_window(sid, w).unwrap();
        });
    });

    group.bench_function("active_customized_path", |b| {
        let mut gis = customized_gis(&cfg);
        let sid = gis.login("juliano", "planner", "pole_manager");
        b.iter(|| {
            let w = gis.browse_class(sid, "phone_net", "Pole").unwrap();
            gis.dispatcher().close_window(sid, w).unwrap();
        });
    });

    group.finish();

    // Deployment-cost table (the paper's Section 2.2 argument, quantified).
    let m = CostModel::default();
    let windows = 3; // Schema / Class-set / Instance per context
    eprintln!("\n[c2] deployment cost to support N contexts (lines touched / redeploys)");
    eprintln!(
        "{:>10} {:>22} {:>22} {:>22}",
        "contexts", "toolkit", "multi-paradigm(3)", "active (this paper)"
    );
    for contexts in [1u64, 2, 5, 10, 50, 100] {
        let t = m.toolkit(contexts, windows);
        let p = m.multiple_paradigms(contexts, windows, 3);
        let a = m.active(contexts, windows);
        eprintln!(
            "{:>10} {:>15} / {:>3} {:>15} / {:>3} {:>15} / {:>3}",
            contexts,
            t.lines_touched,
            t.redeploys,
            p.lines_touched,
            p.redeploys,
            a.lines_touched,
            a.redeploys
        );
    }
    eprintln!();
}

criterion_group!(benches, bench_vs_baselines);
criterion_main!(benches);
