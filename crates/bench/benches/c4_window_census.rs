//! C4 — the scale claim of the paper's reference implementation [14]:
//! "over 10000 lines of code and more than 100 distinct windows".
//!
//! Measures how fast the generic builder mass-produces distinct windows
//! across many contexts, and prints the census (distinct fingerprints)
//! the integration test also asserts.
//!
//! Expected shape: >100 structurally distinct windows generated in well
//! under a second — the dynamic builder covers in data what [14] needed
//! 10k lines of code for.

use std::collections::HashSet;

use bench::generic_gis;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use activegis::{ActiveGis, TelecomConfig};

fn census_program(i: usize) -> String {
    let mode = ["default", "hierarchy"][i % 2];
    let fmt = ["pointFormat", "symbolFormat", "tableFormat", "default"][i % 4];
    format!(
        "for user user{i} application census \
         schema phone_net display as {mode} \
         class Pole display presentation as {fmt} \
           instances display attribute pole_picture as Null \
         class Duct display presentation as {fmt}"
    )
}

/// Build windows for `contexts` users; returns (windows built, distinct).
fn run_census(gis: &mut ActiveGis, contexts: usize) -> (usize, usize) {
    let mut fingerprints = HashSet::new();
    let mut total = 0;
    for i in 0..contexts {
        let sid = gis.login(&format!("user{i}"), "surveyor", "census");
        let opened = gis.browse_schema(sid, "phone_net").unwrap();
        let class_a = gis.browse_class(sid, "phone_net", "Pole").unwrap();
        let class_b = gis.browse_class(sid, "phone_net", "Duct").unwrap();
        for w in opened.into_iter().chain([class_a, class_b]) {
            total += 1;
            fingerprints.insert(format!(
                "u{i}|{}",
                gis.dispatcher().window(w).unwrap().built.fingerprint()
            ));
            gis.dispatcher().close_window(sid, w).unwrap();
        }
    }
    (total, fingerprints.len())
}

fn bench_census(c: &mut Criterion) {
    let cfg = TelecomConfig::small();

    // Print the census once.
    let mut gis = generic_gis(&cfg);
    for i in 0..40 {
        gis.customize(&census_program(i), &format!("census{i}"))
            .unwrap();
    }
    let (total, distinct) = run_census(&mut gis, 40);
    eprintln!(
        "\n[c4] census: {total} windows built for 40 contexts, {distinct} structurally distinct \
         (paper's [14]: >100 windows from 10k LoC)\n"
    );
    assert!(distinct > 100);

    let mut group = c.benchmark_group("c4_window_census");
    group.sample_size(10);
    group.bench_function("40_contexts_120_windows", |b| {
        let mut gis = generic_gis(&cfg);
        for i in 0..40 {
            gis.customize(&census_program(i), &format!("census{i}"))
                .unwrap();
        }
        b.iter(|| black_box(run_census(&mut gis, 40)));
    });
    group.finish();
}

criterion_group!(benches, bench_census);
criterion_main!(benches);
