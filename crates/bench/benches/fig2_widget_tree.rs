//! F2 — the interface-objects kernel (paper Fig. 2).
//!
//! Measures dynamic composition: instantiating kernel classes into trees
//! of growing size, instantiating through a specialization chain (class
//! lookup + default inheritance), layout, and rendering.
//!
//! Expected shape: tree construction linear in widget count; the
//! specialization chain adds a small constant per instantiation
//! (ancestry walk), which is the price of run-time extensibility.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use uilib::{layout, Library, SceneMap, WidgetTree};

/// Build a tree of roughly `n` widgets: panels of 8 buttons each.
fn build_tree(lib: &Library, n: usize) -> WidgetTree {
    let mut tree = WidgetTree::new(lib, "Window", "w").expect("window");
    let mut built = 1;
    let mut panel_idx = 0;
    while built < n {
        let panel = tree
            .add(lib, tree.root(), "Panel", format!("p{panel_idx}"))
            .expect("panel");
        built += 1;
        panel_idx += 1;
        for b in 0..8 {
            if built >= n {
                break;
            }
            let id = tree
                .add(lib, panel, "Button", format!("b{b}"))
                .expect("button");
            tree.get_mut(id).unwrap().set_prop("label", format!("B{b}"));
            built += 1;
        }
    }
    tree
}

fn bench_widget_tree(c: &mut Criterion) {
    let lib = Library::with_kernel();

    let mut group = c.benchmark_group("fig2_compose");
    for &n in &[10usize, 100, 1000, 5000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(build_tree(&lib, n)));
        });
    }
    group.finish();

    // Instantiation through a deep specialization chain vs. kernel class.
    let mut chained = Library::with_kernel();
    let mut parent = "Button".to_string();
    for i in 0..8 {
        let name = format!("spec{i}");
        chained
            .specialize(
                &name,
                &parent,
                vec![(format!("k{i}"), uilib::Prop::Int(i as i64))],
            )
            .unwrap();
        parent = name;
    }
    let mut group = c.benchmark_group("fig2_instantiate");
    group.bench_function("kernel_class", |b| {
        b.iter(|| black_box(lib.instantiate("Button", uilib::WidgetId(1), "x").unwrap()));
    });
    group.bench_function("depth8_specialization", |b| {
        b.iter(|| {
            black_box(
                chained
                    .instantiate("spec7", uilib::WidgetId(1), "x")
                    .unwrap(),
            )
        });
    });
    group.finish();

    // Layout and rendering cost over tree size.
    let mut group = c.benchmark_group("fig2_layout_render");
    group.sample_size(20);
    for &n in &[100usize, 1000] {
        let tree = build_tree(&lib, n);
        group.bench_with_input(BenchmarkId::new("layout", n), &tree, |b, tree| {
            b.iter(|| black_box(layout(tree).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("render_ascii", n), &tree, |b, tree| {
            let scenes = SceneMap::new();
            b.iter(|| black_box(uilib::render::ascii::render(tree, &scenes).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_widget_tree);
criterion_main!(benches);
