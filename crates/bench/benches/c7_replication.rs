//! # c7 — epoch replication
//!
//! Measures the replication tentpole's three claims:
//!
//! 1. **Delta shipping pays**: under a partition-local write storm, the
//!    average shipped delta frame is a small fraction of a full snapshot
//!    frame — structural sharing identifies exactly the touched
//!    partitions, so frame size tracks the write's footprint, not the
//!    database's. `REPLICATION_GATE=1` fails the run if the average
//!    delta exceeds **0.5×** the full-snapshot frame.
//! 2. **Follower reads scale**: aggregate pinned-read throughput as the
//!    replica count grows 0 → 1 → 2 → 4, with a writer trickling epochs
//!    the whole time. Like c5, the honest bound is
//!    `available_parallelism` — on a single-core host every replica
//!    count converges.
//! 3. **Promotion is fast and lossless**: a WAL-attached primary is
//!    killed mid-commit at a `faultsim` failpoint and a lagging replica
//!    is promoted over the WAL tail. Downtime (kill → first read served
//!    by the promoted store) is reported per tail length, and
//!    `REPLICATION_GATE=1` fails the run if any promotion loses an
//!    acknowledged durable epoch.
//!
//! Writes `BENCH_replication.json` at the repo root. `BENCH_QUICK=1`
//! shrinks the workload for CI smoke runs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use geodb::db::Database;
use geodb::repl::{ReadRouter, ReplicaStore};
use geodb::store::DbStore;
use geodb::value::Value;
use geodb::wal::{self, WalConfig};
use geodb::{AttrType, ClassDef, Oid, SchemaDef};

/// Partition-local storm shape: writes round-robin over `CLASSES`
/// partitions, so each epoch touches exactly one of them.
const CLASSES: usize = 8;
const ROWS_PER_CLASS: usize = 64;

fn bench_schema() -> SchemaDef {
    let mut schema = SchemaDef::new("mesh");
    for c in 0..CLASSES {
        schema = schema.class(
            ClassDef::new(format!("Sector{c}"))
                .attr("name", AttrType::Text)
                .attr("n", AttrType::Int),
        );
    }
    schema
}

fn bench_db() -> (Database, Vec<Vec<Oid>>) {
    let mut db = Database::new("c7_repl");
    db.register_schema(bench_schema())
        .expect("schema registers");
    let oids: Vec<Vec<Oid>> = (0..CLASSES)
        .map(|c| {
            (0..ROWS_PER_CLASS)
                .map(|r| {
                    db.insert(
                        "mesh",
                        &format!("Sector{c}"),
                        vec![
                            ("name".into(), Value::Text(format!("s{c}-{r}"))),
                            ("n".into(), Value::Int(0)),
                        ],
                    )
                    .expect("seed row inserts")
                })
                .collect()
        })
        .collect();
    db.drain_events();
    (db, oids)
}

/// One round-robin, partition-local update: epoch `i` touches row
/// `i*7 % ROWS` of partition `i % CLASSES` only.
fn storm_write(store: &DbStore, oids: &[Vec<Oid>], i: usize) {
    let oid = oids[i % CLASSES][(i * 7) % ROWS_PER_CLASS];
    store
        .write(|db| db.update(oid, vec![("n".into(), Value::Int(i as i64))]))
        .expect("storm update commits");
}

fn quantiles(mut xs: Vec<f64>) -> (f64, f64, f64) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| xs[((xs.len() - 1) as f64 * p).round() as usize];
    (q(0.5), q(0.95), xs[xs.len() - 1])
}

// ---------------------------------------------------------------------------
// 1. Delta frame size vs full snapshot frame + sync latency
// ---------------------------------------------------------------------------

fn delta_section(quick: bool) -> (serde_json::Value, bool) {
    let writes = if quick { 64 } else { 512 };
    let (db, oids) = bench_db();
    let store = DbStore::new(db);
    let replica = ReplicaStore::attach(&store, "bench").expect("replica attaches");
    // The attach itself ships one full-snapshot frame: that is the
    // baseline every delta is compared against.
    let full_frame_bytes = replica.status().full_bytes;

    let mut sync_us: Vec<f64> = Vec::with_capacity(writes);
    for i in 0..writes {
        storm_write(&store, &oids, i);
        let t0 = Instant::now();
        replica.sync_once().expect("delta sync applies");
        sync_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let status = replica.status();
    assert_eq!(status.applied, store.epoch(), "replica caught up");
    let avg_delta = status.delta_bytes as f64 / status.delta_syncs.max(1) as f64;
    let ratio = avg_delta / full_frame_bytes.max(1) as f64;
    let (p50, p95, max) = quantiles(sync_us);
    let ok = ratio <= 0.5 && status.delta_syncs == writes as u64;
    eprintln!(
        "[c7 replication] delta shipping over {writes} partition-local writes: \
         avg delta {avg_delta:.0} B vs full frame {full_frame_bytes} B \
         ({:.1}% of full), sync p50 {p50:.1} us, p95 {p95:.1} us, max {max:.1} us",
        ratio * 100.0
    );
    let section = serde_json::Value::Object(vec![
        (
            "workload".into(),
            serde_json::Value::String(format!(
                "{writes} single-row updates round-robin over {CLASSES} partitions \
                 of {ROWS_PER_CLASS} rows; replica syncs after every epoch"
            )),
        ),
        (
            "full_frame_bytes".into(),
            serde_json::Value::U64(full_frame_bytes),
        ),
        (
            "delta_syncs".into(),
            serde_json::Value::U64(status.delta_syncs),
        ),
        ("avg_delta_bytes".into(), serde_json::Value::F64(avg_delta)),
        ("delta_to_full_ratio".into(), serde_json::Value::F64(ratio)),
        (
            "sync_latency_us".into(),
            serde_json::Value::Object(vec![
                ("p50".into(), serde_json::Value::F64(p50)),
                ("p95".into(), serde_json::Value::F64(p95)),
                ("max".into(), serde_json::Value::F64(max)),
            ]),
        ),
        ("gate_ok".into(), serde_json::Value::Bool(ok)),
    ]);
    (section, ok)
}

// ---------------------------------------------------------------------------
// 2. Follower-read scaling 0 → 4 replicas
// ---------------------------------------------------------------------------

const READERS: usize = 8;

fn read_scaling_run(replicas: usize, batches: usize, batch_len: usize) -> (u64, f64) {
    let (db, oids) = bench_db();
    let store = DbStore::new(db);
    let pool: Vec<ReplicaStore> = (0..replicas)
        .map(|i| {
            let r = ReplicaStore::attach(&store, format!("r{i}")).expect("replica attaches");
            r.start_streaming().expect("streaming starts");
            r
        })
        .collect();

    // A writer trickles epochs for the whole measurement so routed reads
    // race real replication traffic, not a frozen database.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let store = store.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                storm_write(&store, &oids, i);
                i += 1;
                std::thread::yield_now();
            }
        })
    };

    let start = Instant::now();
    let readers: Vec<_> = (0..READERS)
        .map(|t| {
            let mut router = if pool.is_empty() {
                ReadRouter::primary_only(store.reader())
            } else {
                ReadRouter::with_replica(store.reader(), pool[t % pool.len()].reader(), None)
            };
            std::thread::spawn(move || {
                let mut served = 0u64;
                for b in 0..batches {
                    let (snap, _, _) = router.pin();
                    let class = format!("Sector{}", (t + b) % CLASSES);
                    for _ in 0..batch_len {
                        served += snap.get_class("mesh", &class, false).expect("read").len() as u64;
                    }
                }
                served
            })
        })
        .collect();
    let mut rows_served = 0u64;
    for r in readers {
        rows_served += r.join().expect("reader thread");
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    assert!(rows_served > 0, "routed reads returned rows");

    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer thread");
    for r in &pool {
        r.stop_streaming();
    }
    let reads = (READERS * batches * batch_len) as u64;
    drop(pool);
    (reads, reads as f64 / elapsed_s.max(1e-9))
}

fn read_scaling_section(quick: bool) -> serde_json::Value {
    let (batches, batch_len) = if quick { (16, 8) } else { (128, 32) };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = Vec::new();
    let mut baseline = 0.0f64;
    for &replicas in &[0usize, 1, 2, 4] {
        let (reads, per_sec) = read_scaling_run(replicas, batches, batch_len);
        if replicas == 0 {
            baseline = per_sec;
        }
        eprintln!(
            "[c7 replication] follower reads, {replicas} replica(s): \
             {reads} pinned reads = {per_sec:>12.0} reads/s ({:.2}x vs primary-only)",
            per_sec / baseline.max(1e-9)
        );
        rows.push(serde_json::Value::Object(vec![
            ("replicas".into(), serde_json::Value::U64(replicas as u64)),
            ("reads".into(), serde_json::Value::U64(reads)),
            ("reads_per_sec".into(), serde_json::Value::F64(per_sec)),
            (
                "speedup_vs_primary_only".into(),
                serde_json::Value::F64(per_sec / baseline.max(1e-9)),
            ),
        ]));
    }
    serde_json::Value::Object(vec![
        (
            "workload".into(),
            serde_json::Value::String(format!(
                "{READERS} reader threads pinning routed snapshots and scanning one \
                 partition per batch while a writer storms epochs; replicas stream \
                 in the background"
            )),
        ),
        (
            "available_parallelism".into(),
            serde_json::Value::U64(cores as u64),
        ),
        (
            "note".into(),
            serde_json::Value::String(
                "reads are lock-free snapshot scans in-process, so speedup is \
                 bounded by available_parallelism; the row to watch on a \
                 multi-core host is primary-only vs >=1 replica under write load"
                    .into(),
            ),
        ),
        ("rows".into(), serde_json::Value::Array(rows)),
    ])
}

// ---------------------------------------------------------------------------
// 3. Promotion downtime after a faultsim-killed primary
// ---------------------------------------------------------------------------

fn promotion_run(tail: usize) -> (serde_json::Value, bool) {
    let dir = std::env::temp_dir().join(format!("c7-promotion-{}-t{tail}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (db, oids) = bench_db();
    let (store, _) = wal::open(db, WalConfig::new(&dir)).expect("durable store opens");
    let replica = ReplicaStore::attach(&store, "standby").expect("replica attaches");
    replica.sync_to_latest().expect("standby catches up");

    // The standby lags by exactly `tail` durable epochs when the primary
    // dies — that is the WAL tail promotion must replay.
    for i in 0..tail {
        storm_write(&store, &oids, i);
    }
    let frontier = store.durable_epoch();

    faultsim::arm(
        "wal.fsync",
        faultsim::Trigger::Always,
        faultsim::FaultAction::Error,
    );
    let oid = oids[0][0];
    let killed = store.write(|db| db.update(oid, vec![("n".into(), Value::Int(-1))]));
    faultsim::disarm("wal.fsync");
    assert!(killed.is_err(), "kill point fires");
    drop(store);

    let t0 = Instant::now();
    let (promoted, report) = replica
        .promote(WalConfig::new(&dir))
        .expect("promotion succeeds");
    let first_read = promoted
        .snapshot()
        .get_class("mesh", "Sector0", false)
        .expect("promoted store serves reads")
        .len();
    let downtime_ms = t0.elapsed().as_secs_f64() * 1e3;

    let zero_loss = report.promoted_epoch >= frontier;
    eprintln!(
        "[c7 replication] promotion, {tail}-epoch tail: {downtime_ms:.2} ms to first \
         read ({} records replayed, via_full_recovery={}, durable frontier {} -> \
         promoted {}, {} rows served)",
        report.replayed_records,
        report.via_full_recovery,
        frontier,
        report.promoted_epoch,
        first_read
    );
    let _ = std::fs::remove_dir_all(&dir);
    let row = serde_json::Value::Object(vec![
        ("tail_epochs".into(), serde_json::Value::U64(tail as u64)),
        (
            "replayed_records".into(),
            serde_json::Value::U64(report.replayed_records),
        ),
        (
            "via_full_recovery".into(),
            serde_json::Value::Bool(report.via_full_recovery),
        ),
        ("downtime_ms".into(), serde_json::Value::F64(downtime_ms)),
        (
            "durable_frontier".into(),
            serde_json::Value::U64(frontier.get()),
        ),
        (
            "promoted_epoch".into(),
            serde_json::Value::U64(report.promoted_epoch.get()),
        ),
        (
            "zero_durable_epoch_loss".into(),
            serde_json::Value::Bool(zero_loss),
        ),
    ]);
    (row, zero_loss)
}

fn promotion_section(quick: bool) -> (serde_json::Value, bool) {
    let tails: &[usize] = if quick { &[4, 32] } else { &[1, 16, 128] };
    let mut rows = Vec::new();
    let mut all_ok = true;
    for &tail in tails {
        let (row, ok) = promotion_run(tail);
        all_ok &= ok;
        rows.push(row);
    }
    let section = serde_json::Value::Object(vec![
        (
            "workload".into(),
            serde_json::Value::String(
                "WAL-attached primary killed mid-commit at the wal.fsync failpoint; \
                 a standby lagging by `tail_epochs` is promoted over the WAL tail; \
                 downtime is kill -> first read served by the promoted store"
                    .into(),
            ),
        ),
        ("rows".into(), serde_json::Value::Array(rows)),
    ]);
    (section, all_ok)
}

fn main() {
    // Measure the replication machinery, not the probes.
    obs::set_enabled(false);
    faultsim::reset();

    let quick = std::env::var("BENCH_QUICK").is_ok();

    let (delta, delta_ok) = delta_section(quick);
    let read_scaling = read_scaling_section(quick);
    let (promotion, promotion_ok) = promotion_section(quick);

    let summary = serde_json::Value::Object(vec![
        (
            "benchmark".into(),
            serde_json::Value::String("c7_replication".into()),
        ),
        ("quick".into(), serde_json::Value::Bool(quick)),
        ("delta_shipping".into(), delta),
        ("follower_read_scaling".into(), read_scaling),
        ("promotion".into(), promotion),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replication.json");
    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    std::fs::write(path, json + "\n").expect("BENCH_replication.json is writable");
    eprintln!("[c7 replication] wrote {path}");

    // Correctness gate: delta frames must hold their size win and no
    // promotion may lose an acknowledged durable epoch. Throughput and
    // downtime numbers are advisory (CI containers are slow).
    if std::env::var("REPLICATION_GATE").is_ok() && !(delta_ok && promotion_ok) {
        eprintln!(
            "[c7 replication] REPLICATION_GATE: delta frames lost their size win \
             or a promotion lost durable epochs"
        );
        std::process::exit(1);
    }
}
