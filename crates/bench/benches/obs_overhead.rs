//! Observability overhead on the `Engine::dispatch` hot path.
//!
//! The instrumentation contract is that the hooks stay within ~10% of
//! the uninstrumented path: per-dispatch tallies are plain integer adds
//! flushed once, and with collection disabled every hook collapses to a
//! single relaxed atomic load. This bench measures dispatch latency with
//! metrics on, with metrics off, and reports both so regressions in the
//! hook cost show up as a widening gap.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use active::{ContextPattern, Engine, EngineConfig, Event, EventPattern, Rule, SessionContext};
use geodb::query::{DbEvent, DbEventKind};

fn engine_with_rules(n: usize) -> Engine<usize> {
    let mut engine = Engine::with_config(EngineConfig {
        tracing: false,
        ..Default::default()
    });
    for i in 0..n {
        let ctx = match i % 3 {
            0 => ContextPattern::any(),
            1 => ContextPattern::for_category(format!("cat{}", i % 7)),
            _ => ContextPattern::for_user(format!("user{i}")),
        };
        engine
            .add_rule(Rule::customization(
                format!("r{i}"),
                EventPattern::db(DbEventKind::GetClass),
                ctx,
                i,
            ))
            .unwrap();
    }
    engine
}

fn event() -> Event {
    Event::Db(DbEvent::GetClass {
        schema: "phone_net".into(),
        class: "Pole".into(),
    })
}

fn bench_obs_overhead(c: &mut Criterion) {
    let session = SessionContext::new("user5", "cat5", "pole_manager");

    for &n in &[100usize, 1000] {
        let mut group = c.benchmark_group(format!("obs_overhead_{n}_rules"));
        let mut engine = engine_with_rules(n);

        obs::set_enabled(true);
        group.bench_function("metrics_on", |b| {
            b.iter(|| black_box(engine.dispatch(event(), &session).unwrap()));
        });

        obs::set_enabled(false);
        group.bench_function("metrics_off", |b| {
            b.iter(|| black_box(engine.dispatch(event(), &session).unwrap()));
        });
        obs::set_enabled(true);

        // Tracing armed and every request sampled: the full cost of
        // recording a trace tree per dispatch.
        obs::set_trace_sampling(1);
        group.bench_function("tracing_sampled", |b| {
            b.iter(|| {
                let _root = obs::trace_root("bench.request");
                black_box(engine.dispatch(event(), &session).unwrap())
            });
        });

        // Tracing armed but the sampler declines (1-in-2^64): spans
        // still join the thread-local trace, which is then discarded —
        // the price paid by un-sampled requests while sampling is on.
        obs::set_trace_sampling(u64::MAX);
        group.bench_function("tracing_unsampled", |b| {
            b.iter(|| {
                let _root = obs::trace_root("bench.request");
                black_box(engine.dispatch(event(), &session).unwrap())
            });
        });
        obs::set_trace_sampling(0);
        obs::clear_traces();

        group.finish();
    }
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
