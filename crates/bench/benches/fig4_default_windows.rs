//! F4 — generic (default) window construction (paper Fig. 4).
//!
//! The generic interface builder's cost to assemble each of the three
//! window types, scaled along the axes that matter: Schema windows vs.
//! number of classes, Class-set windows vs. extension size, Instance
//! windows vs. attribute count.
//!
//! Expected shape: Schema linear in classes, Class-set linear in visible
//! instances (scene population dominates), Instance linear in attributes.

use bench::db_with_poles;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use builder::InterfaceBuilder;
use geodb::db::Database;
use geodb::schema::{ClassDef, SchemaDef};
use geodb::value::AttrType;

/// A schema with `n` classes.
fn wide_schema(n: usize) -> SchemaDef {
    let mut s = SchemaDef::new("wide");
    for i in 0..n {
        s = s.class(
            ClassDef::new(format!("Class{i}"))
                .attr("name", AttrType::Text)
                .attr("location", AttrType::Geometry),
        );
    }
    s
}

fn bench_default_windows(c: &mut Criterion) {
    let builder = InterfaceBuilder::with_paper_library();

    // Schema window vs. class count.
    let mut group = c.benchmark_group("fig4_schema_window");
    for &n in &[4usize, 16, 64, 256] {
        let mut db = Database::new("bench");
        db.register_schema(wide_schema(n)).unwrap();
        let schema = db.catalog().schema("wide").unwrap().clone();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(builder.schema_window(&schema, db.catalog(), None).unwrap()));
        });
    }
    group.finish();

    // Class-set window vs. extension size.
    let mut group = c.benchmark_group("fig4_class_window");
    group.sample_size(20);
    for &n in &[100usize, 1000, 10_000] {
        let mut db = db_with_poles(n);
        let poles = db.get_class("phone_net", "Pole", false).unwrap();
        db.drain_events();
        group.throughput(Throughput::Elements(poles.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &poles, |b, poles| {
            b.iter(|| {
                black_box(
                    builder
                        .class_window("phone_net", "Pole", poles, None)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();

    // Instance window (fixed: the 6-attribute Pole of Fig. 5) and its
    // ASCII rendering. Instance windows build against a pinned snapshot
    // since the shared-storage refactor.
    let mut group = c.benchmark_group("fig4_instance_window");
    let snap = geodb::store::DbStore::new(db_with_poles(100)).snapshot();
    let poles = snap.get_class("phone_net", "Pole", false).unwrap();
    group.bench_function("build", |b| {
        b.iter(|| black_box(builder.instance_window(&snap, &poles[0], None).unwrap()));
    });
    let win = builder.instance_window(&snap, &poles[0], None).unwrap();
    group.bench_function("render_ascii", |b| {
        b.iter(|| black_box(win.to_ascii()));
    });
    group.bench_function("render_svg", |b| {
        b.iter(|| black_box(win.to_svg()));
    });
    group.finish();
}

criterion_group!(benches, bench_default_windows);
criterion_main!(benches);
