//! F3 — the customization language (paper Fig. 3).
//!
//! Throughput of the full front end — lex+parse, semantic analysis, and
//! rule compilation — over programs of 1 to 500 directives.
//!
//! Expected shape: all three stages linear in program size; compilation
//! dominates slightly (rule materialization); a 500-directive program
//! (≈ 2000 lines, far larger than any hand-written customization)
//! processes in milliseconds, supporting the claim that per-context
//! customization cost is negligible next to per-context *code*.

use bench::synthetic_program;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use custlang::{analyze, compile, parse, AnalysisEnv};
use geodb::catalog::Catalog;
use geodb::gen::phone_net_schema;
use uilib::Library;

fn bench_language(c: &mut Criterion) {
    let mut catalog = Catalog::new();
    catalog.register(phone_net_schema()).unwrap();
    let library = Library::with_kernel();

    let sizes = [1usize, 10, 100, 500];
    let programs: Vec<(usize, String)> = sizes.iter().map(|&n| (n, synthetic_program(n))).collect();

    let mut group = c.benchmark_group("fig3_parse");
    for (n, src) in &programs {
        group.throughput(Throughput::Elements(*n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), src, |b, src| {
            b.iter(|| black_box(parse(src).unwrap()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig3_analyze");
    for (n, src) in &programs {
        let program = parse(src).unwrap();
        group.throughput(Throughput::Elements(*n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &program, |b, program| {
            let env = AnalysisEnv::new(&catalog, &library);
            b.iter(|| black_box(analyze(program, &env)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig3_compile");
    for (n, src) in &programs {
        let program = parse(src).unwrap();
        group.throughput(Throughput::Elements(*n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &program, |b, program| {
            b.iter(|| black_box(compile(program, "bench")));
        });
    }
    group.finish();

    // Round-trip through the pretty-printer (canonical formatting).
    let mut group = c.benchmark_group("fig3_pretty");
    let program = parse(&programs[2].1).unwrap();
    group.bench_function("pretty_100_directives", |b| {
        b.iter(|| black_box(custlang::pretty(&program)));
    });
    group.finish();
}

criterion_group!(benches, bench_language);
criterion_main!(benches);
