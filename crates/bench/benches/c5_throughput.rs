//! # c5 — concurrent serving throughput
//!
//! The scaling claim behind the `SessionServer` tentpole: M concurrent
//! sessions each replay a cache-hot Get_Class / Get_Value interaction
//! loop against the paper's phone_net database, and we measure aggregate
//! requests/sec as the shard-thread count grows (1, 2, 4, 8).
//!
//! Sessions are pinned round-robin, so with T shards the M client
//! threads fan their batches out over T independent dispatchers that
//! share one copy-on-write rule snapshot *and one versioned database*
//! (`geodb::store::DbStore`). Steady state does no locking on the read
//! path; scaling is bounded only by the hardware parallelism actually
//! available, which the summary records honestly as
//! `available_parallelism` (CI containers are often single-core, where
//! every thread count necessarily converges to the same requests/sec).
//!
//! Writes `BENCH_throughput.json` at the repo root:
//! requests/sec per thread count, speedup vs 1 thread, scaling
//! efficiency (speedup / threads), the shared-vs-copied database memory
//! footprint (`db_bytes_shared` stays flat as shards grow; the copied
//! model multiplies), and publish-latency quantiles for epoch commits
//! through `DbStore::write`.
//!
//! `BENCH_QUICK=1` shrinks the workload for CI smoke runs.
//!
//! Two observability sections ride along (measured after the headline
//! rows, with metrics on): `tracing` compares cache-hot req/s with
//! trace sampling off vs `trace_sample=1` (the acceptance bound is
//! ≤ 10% overhead at full sampling), and `slo` evaluates the default
//! dispatch SLO over the clean run via multi-window burn rates — also
//! written to `BENCH_slo.json`. `SLO_SMOKE=1` makes the bench exit
//! non-zero if the clean run breaches the availability SLO, which is
//! how `scripts/check.sh` gates on it.
//!
//! A third section measures the **durable write path**: commits/sec and
//! commit-latency quantiles through a WAL-attached store as the writer
//! count and group-commit window vary, plus the observed group sizes and
//! fsyncs-per-commit (group commit amortizes the fsync) and the
//! retained-epoch gauge under a long-pinned reader. Every durability run
//! ends with a simulated crash + recovery; `WAL_GATE=1` makes the bench
//! exit non-zero if any recovered snapshot diverges from the state the
//! writers acknowledged.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use active::{Engine, EngineConfig, SessionContext};
use activegis::SessionServer;
use custlang::{Customization, FIG6_PROGRAM};
use geodb::gen::TelecomConfig;
use geodb::query::DbEvent;
use geodb::store::DbStore;
use geodb::value::Value;
use geodb::Oid;

/// Concurrent sessions driven by the client side.
const SESSIONS: usize = 16;

/// The per-batch interaction loop: alternating Get_Class / Get_Value on
/// the Pole class — the same touch-a-class, inspect-an-instance rhythm
/// as the paper's Fig. 7 walkthrough.
fn batch_events(len: usize) -> Vec<DbEvent> {
    (0..len)
        .map(|i| {
            if i % 2 == 0 {
                DbEvent::GetClass {
                    schema: "phone_net".into(),
                    class: "Pole".into(),
                }
            } else {
                DbEvent::GetValue {
                    schema: "phone_net".into(),
                    class: "Pole".into(),
                    oid: Oid(1 + (i as u64 % 8)),
                }
            }
        })
        .collect()
}

struct RunResult {
    threads: usize,
    requests: u64,
    elapsed_s: f64,
    requests_per_sec: f64,
    db_bytes_shared: u64,
}

/// One full measurement at a given shard-thread count.
fn run(threads: usize, batches_per_session: usize, batch_len: usize) -> RunResult {
    let engine: Engine<Customization> = Engine::with_config(EngineConfig {
        tracing: false,
        ..EngineConfig::default()
    });
    let base = engine.rule_base();
    let cfg = TelecomConfig::small();
    let store = DbStore::new(
        geodb::gen::phone_net_db(&cfg)
            .expect("demo database builds")
            .0,
    );
    let db_bytes_shared = store.snapshot().approx_data_bytes() as u64;
    let server = SessionServer::start(threads, base, store);
    server
        .install_program(FIG6_PROGRAM, "fig6")
        .expect("Fig. 6 program installs");

    let sessions: Vec<_> = (0..SESSIONS)
        .map(|i| {
            server.open_session(SessionContext::new(
                format!("user{i}"),
                "planner",
                "pole_manager",
            ))
        })
        .collect();

    // Warm every shard's winner cache so the measurement is cache-hot.
    for &s in &sessions {
        server
            .dispatch_batch(s, batch_events(batch_len.min(16)))
            .expect("warmup dispatch succeeds");
    }

    let server = Arc::new(server);
    let start = Instant::now();
    let clients: Vec<_> = sessions
        .into_iter()
        .map(|session| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                for _ in 0..batches_per_session {
                    let outcomes = server
                        .dispatch_batch(session, batch_events(batch_len))
                        .expect("measured dispatch succeeds");
                    assert_eq!(outcomes.len(), batch_len);
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let elapsed_s = start.elapsed().as_secs_f64();

    let requests = (SESSIONS * batches_per_session * batch_len) as u64;
    RunResult {
        threads,
        requests,
        elapsed_s,
        requests_per_sec: requests as f64 / elapsed_s,
        db_bytes_shared,
    }
}

/// Epoch-publish latency: time `samples` single-attribute updates
/// committed through `DbStore::write`, each one an incremental partition
/// sync plus an atomic epoch publish, and report microsecond quantiles.
fn publish_latency_us(samples: usize) -> (f64, f64, f64) {
    let store = DbStore::new(
        geodb::gen::phone_net_db(&TelecomConfig::small())
            .expect("demo database builds")
            .0,
    );
    let oid = store
        .snapshot()
        .get_class("phone_net", "Pole", false)
        .expect("poles exist")[0]
        .oid;
    let mut lat: Vec<f64> = (0..samples)
        .map(|i| {
            let pole_type = 1 + (i as i64 % 4);
            let t0 = Instant::now();
            store
                .write(|db| db.update(oid, vec![("pole_type".into(), Value::Int(pole_type))]))
                .expect("update commits");
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| lat[((lat.len() - 1) as f64 * p).round() as usize];
    (q(0.5), q(0.95), lat[lat.len() - 1])
}

/// One durable write-path measurement: `writers` threads each commit
/// `commits_each` single-attribute updates through one WAL-attached
/// store, then the process "crashes" (drop) and recovers. Returns the
/// row and whether recovery reproduced the acknowledged state
/// byte-for-byte.
struct DurabilityRun {
    writers: usize,
    window_ms: u64,
    commits: u64,
    commits_per_sec: f64,
    commit_p50_us: f64,
    commit_p99_us: f64,
    max_group: u64,
    fsyncs: u64,
    wal_payload_bytes: u64,
    epochs_retained: u64,
    recovery_ok: bool,
}

fn durability_run(
    writers: usize,
    window: Duration,
    commits_each: usize,
    format: geodb::wal::WalFormat,
) -> DurabilityRun {
    let dir = std::env::temp_dir().join(format!(
        "c5-durability-{}-w{writers}-g{}-{format:?}",
        std::process::id(),
        window.as_millis()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let mut db = geodb::db::Database::new("c5_dur");
    db.register_schema(
        geodb::SchemaDef::new("bench").class(
            geodb::ClassDef::new("Counter")
                .attr("name", geodb::AttrType::Text)
                .attr("n", geodb::AttrType::Int),
        ),
    )
    .expect("bench schema registers");
    let oids: Vec<_> = (0..writers)
        .map(|i| {
            db.insert(
                "bench",
                "Counter",
                vec![
                    ("name".into(), Value::Text(format!("w{i}"))),
                    ("n".into(), Value::Int(0)),
                ],
            )
            .expect("seed row inserts")
        })
        .collect();
    db.drain_events();

    let (store, _) = geodb::wal::open(
        db,
        geodb::WalConfig::new(&dir)
            .group_window(window)
            .record_format(format),
    )
    .expect("durable store opens");

    // A reader pinned at the initial epoch for the whole storm: the
    // retained-epoch ring must stay bounded regardless.
    let mut pinned = store.reader();
    pinned.pin();

    let lat_us: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let barrier = Arc::new(std::sync::Barrier::new(writers));
    let t0 = Instant::now();
    let threads: Vec<_> = oids
        .iter()
        .map(|&oid| {
            let store = store.clone();
            let lat_us = Arc::clone(&lat_us);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut local = Vec::with_capacity(commits_each);
                for i in 0..commits_each {
                    let c0 = Instant::now();
                    store
                        .write(|db| db.update(oid, vec![("n".into(), Value::Int(i as i64))]))
                        .expect("durable commit acknowledges");
                    local.push(c0.elapsed().as_secs_f64() * 1e6);
                }
                lat_us.lock().unwrap().extend(local);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("writer thread");
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    let commits = (writers * commits_each) as u64;
    let (status, _durable) = store.wal_status().expect("WAL attached");
    let epochs_retained = store.epochs_retained() as u64;
    drop(pinned);

    let mut lat = Arc::try_unwrap(lat_us)
        .expect("writers joined")
        .into_inner()
        .unwrap();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| lat[((lat.len() - 1) as f64 * p).round() as usize];
    let (commit_p50_us, commit_p99_us) = (q(0.5), q(0.99));

    // Crash and recover: the acknowledged state must come back intact.
    let acknowledged =
        geodb::snapshot::save_snapshot(&store.snapshot()).expect("snapshot serializes");
    drop(store);
    let recovery_ok = match geodb::wal::recover(geodb::WalConfig::new(&dir)) {
        Ok((recovered, _report)) => {
            geodb::snapshot::save_snapshot(&recovered.snapshot()).expect("snapshot serializes")
                == acknowledged
        }
        Err(e) => {
            eprintln!("[c5 throughput] durability: recovery FAILED: {e}");
            false
        }
    };
    let _ = std::fs::remove_dir_all(&dir);

    DurabilityRun {
        writers,
        window_ms: window.as_millis() as u64,
        commits,
        commits_per_sec: commits as f64 / elapsed_s,
        commit_p50_us,
        commit_p99_us,
        max_group: status.max_group,
        fsyncs: status.fsyncs,
        wal_payload_bytes: status.payload_bytes,
        epochs_retained,
        recovery_ok,
    }
}

fn durability_section(quick: bool) -> (serde_json::Value, bool) {
    let commits_each = if quick { 50 } else { 200 };
    // Window 0 still batches: followers piggyback while the leader is
    // inside fsync. A positive window trades commit latency for larger
    // groups (it only pays off when fsync is slower than the window).
    let shapes: &[(usize, u64)] = if quick {
        &[(1, 0), (4, 0), (4, 2)]
    } else {
        &[(1, 0), (2, 0), (4, 0), (8, 0), (4, 2)]
    };
    let mut rows = Vec::new();
    let mut all_ok = true;
    let mut baseline = 0.0f64;
    for &(writers, window_ms) in shapes {
        let r = durability_run(
            writers,
            Duration::from_millis(window_ms),
            commits_each,
            geodb::wal::WalFormat::Binary,
        );
        if writers == 1 && window_ms == 0 {
            baseline = r.commits_per_sec;
        }
        eprintln!(
            "[c5 throughput] durable commits: {:>2} writer(s), {:>2} ms window: \
             {:>8.0} commits/s, p50 {:>7.1} us, p99 {:>8.1} us, \
             max group {}, {} fsyncs / {} commits, {} epochs retained, recovery {}",
            r.writers,
            r.window_ms,
            r.commits_per_sec,
            r.commit_p50_us,
            r.commit_p99_us,
            r.max_group,
            r.fsyncs,
            r.commits,
            r.epochs_retained,
            if r.recovery_ok { "ok" } else { "DIVERGED" }
        );
        all_ok &= r.recovery_ok;
        rows.push(serde_json::Value::Object(vec![
            ("writers".into(), serde_json::Value::U64(r.writers as u64)),
            (
                "group_window_ms".into(),
                serde_json::Value::U64(r.window_ms),
            ),
            ("commits".into(), serde_json::Value::U64(r.commits)),
            (
                "commits_per_sec".into(),
                serde_json::Value::F64(r.commits_per_sec),
            ),
            (
                "speedup_vs_single_writer".into(),
                serde_json::Value::F64(if baseline > 0.0 {
                    r.commits_per_sec / baseline
                } else {
                    1.0
                }),
            ),
            (
                "commit_latency_p50_us".into(),
                serde_json::Value::F64(r.commit_p50_us),
            ),
            (
                "commit_latency_p99_us".into(),
                serde_json::Value::F64(r.commit_p99_us),
            ),
            ("max_group".into(), serde_json::Value::U64(r.max_group)),
            ("fsyncs".into(), serde_json::Value::U64(r.fsyncs)),
            (
                "wal_payload_bytes".into(),
                serde_json::Value::U64(r.wal_payload_bytes),
            ),
            (
                "epochs_retained_under_pinned_reader".into(),
                serde_json::Value::U64(r.epochs_retained),
            ),
            ("recovery_ok".into(), serde_json::Value::Bool(r.recovery_ok)),
        ]));
    }
    let section = serde_json::Value::Object(vec![
        (
            "workload".into(),
            serde_json::Value::String(
                "N writer threads committing single-attribute updates through one \
                 WAL-attached DbStore (fsync on), then crash + recovery; group \
                 commit shares fsyncs across concurrent commits"
                    .into(),
            ),
        ),
        (
            "commits_per_writer".into(),
            serde_json::Value::U64(commits_each as u64),
        ),
        ("rows".into(), serde_json::Value::Array(rows)),
    ]);
    (section, all_ok)
}

/// JSON vs binary record encoding under the same 4-writer commit storm:
/// the payload-byte ratio is the headline (the binary codec's whole
/// point), commits/sec rides along (smaller frames mean less checksum
/// and write-syscall work per commit). Both runs end in crash+recovery.
fn wal_encoding_section(quick: bool) -> (serde_json::Value, bool) {
    let commits_each = if quick { 50 } else { 200 };
    let writers = 4;
    let json = durability_run(
        writers,
        Duration::ZERO,
        commits_each,
        geodb::wal::WalFormat::Json,
    );
    let binary = durability_run(
        writers,
        Duration::ZERO,
        commits_each,
        geodb::wal::WalFormat::Binary,
    );
    let size_ratio = json.wal_payload_bytes as f64 / binary.wal_payload_bytes.max(1) as f64;
    eprintln!(
        "[c5 throughput] wal encoding, {writers} writers x {commits_each} commits: \
         json {} B vs binary {} B payload ({size_ratio:.2}x smaller), \
         {:.0} vs {:.0} commits/s, recovery {}/{}",
        json.wal_payload_bytes,
        binary.wal_payload_bytes,
        json.commits_per_sec,
        binary.commits_per_sec,
        if json.recovery_ok { "ok" } else { "DIVERGED" },
        if binary.recovery_ok { "ok" } else { "DIVERGED" },
    );
    let ok = json.recovery_ok && binary.recovery_ok && size_ratio >= 2.0;
    if size_ratio < 2.0 {
        eprintln!(
            "[c5 throughput] wal encoding: binary frames only {size_ratio:.2}x smaller \
             than JSON (target >= 2x)"
        );
    }
    let section = serde_json::Value::Object(vec![
        (
            "workload".into(),
            serde_json::Value::String(
                "identical 4-writer commit storm logged twice: record_format=Json \
                 vs record_format=Binary (interned-string tree codec); both crash \
                 and recover"
                    .into(),
            ),
        ),
        ("writers".into(), serde_json::Value::U64(writers as u64)),
        ("commits".into(), serde_json::Value::U64(json.commits)),
        (
            "json_payload_bytes".into(),
            serde_json::Value::U64(json.wal_payload_bytes),
        ),
        (
            "binary_payload_bytes".into(),
            serde_json::Value::U64(binary.wal_payload_bytes),
        ),
        ("size_ratio".into(), serde_json::Value::F64(size_ratio)),
        (
            "json_commits_per_sec".into(),
            serde_json::Value::F64(json.commits_per_sec),
        ),
        (
            "binary_commits_per_sec".into(),
            serde_json::Value::F64(binary.commits_per_sec),
        ),
        (
            "commit_speedup".into(),
            serde_json::Value::F64(binary.commits_per_sec / json.commits_per_sec.max(1e-9)),
        ),
        (
            "recovery_ok".into(),
            serde_json::Value::Bool(json.recovery_ok && binary.recovery_ok),
        ),
    ]);
    (section, ok)
}

fn main() {
    // Metrics and tracing off: measure the serving layer, not the probes.
    obs::set_enabled(false);

    let quick = std::env::var("BENCH_QUICK").is_ok();
    let (batches_per_session, batch_len) = if quick { (4, 32) } else { (64, 256) };
    let thread_counts: &[usize] = &[1, 2, 4, 8];
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut results = Vec::new();
    for &t in thread_counts {
        let r = run(t, batches_per_session, batch_len);
        eprintln!(
            "[c5 throughput] {:>2} threads: {:>9} requests in {:>7.3} s = {:>12.0} req/s \
             ({} KiB shared db)",
            r.threads,
            r.requests,
            r.elapsed_s,
            r.requests_per_sec,
            r.db_bytes_shared / 1024
        );
        results.push(r);
    }

    let publish_samples = if quick { 8 } else { 32 };
    let (pub_p50, pub_p95, pub_max) = publish_latency_us(publish_samples);
    eprintln!(
        "[c5 throughput] epoch publish latency over {publish_samples} writes: \
         p50 {pub_p50:.1} us, p95 {pub_p95:.1} us, max {pub_max:.1} us"
    );

    let (durability, recovery_ok) = durability_section(quick);
    let (wal_encoding, encoding_ok) = wal_encoding_section(quick);

    let base_rps = results[0].requests_per_sec;
    let rows: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            let speedup = r.requests_per_sec / base_rps;
            serde_json::Value::Object(vec![
                ("threads".into(), serde_json::Value::U64(r.threads as u64)),
                ("requests".into(), serde_json::Value::U64(r.requests)),
                ("elapsed_s".into(), serde_json::Value::F64(r.elapsed_s)),
                (
                    "requests_per_sec".into(),
                    serde_json::Value::F64(r.requests_per_sec),
                ),
                (
                    "speedup_vs_1_thread".into(),
                    serde_json::Value::F64(speedup),
                ),
                (
                    "scaling_efficiency".into(),
                    serde_json::Value::F64(speedup / r.threads as f64),
                ),
                (
                    "db_bytes_shared".into(),
                    serde_json::Value::U64(r.db_bytes_shared),
                ),
                (
                    "db_bytes_copied_model".into(),
                    serde_json::Value::U64(r.db_bytes_shared * r.threads as u64),
                ),
            ])
        })
        .collect();

    let summary = serde_json::Value::Object(vec![
        (
            "benchmark".into(),
            serde_json::Value::String("c5_throughput".into()),
        ),
        (
            "workload".into(),
            serde_json::Value::String(
                "M concurrent sessions, cache-hot Get_Class/Get_Value batches over \
                 the shared Fig. 6 rule base"
                    .into(),
            ),
        ),
        ("sessions".into(), serde_json::Value::U64(SESSIONS as u64)),
        ("batch_len".into(), serde_json::Value::U64(batch_len as u64)),
        (
            "batches_per_session".into(),
            serde_json::Value::U64(batches_per_session as u64),
        ),
        ("quick".into(), serde_json::Value::Bool(quick)),
        (
            "available_parallelism".into(),
            serde_json::Value::U64(cores as u64),
        ),
        (
            "note".into(),
            serde_json::Value::String(
                "speedup_vs_1_thread is bounded above by available_parallelism; \
                 on a single-core host all thread counts converge to ~1.0x. \
                 db_bytes_shared is flat across thread counts because every shard \
                 serves one DbStore; db_bytes_copied_model is what the retired \
                 copy-per-shard design would have cost"
                    .into(),
            ),
        ),
        (
            "db_epoch_publish_latency_us".into(),
            serde_json::Value::Object(vec![
                (
                    "samples".into(),
                    serde_json::Value::U64(publish_samples as u64),
                ),
                ("p50".into(), serde_json::Value::F64(pub_p50)),
                ("p95".into(), serde_json::Value::F64(pub_p95)),
                ("max".into(), serde_json::Value::F64(pub_max)),
            ]),
        ),
        ("rows".into(), serde_json::Value::Array(rows)),
    ]);

    // -- observability riders: tracing overhead + SLO -------------------

    // Tracing overhead on the cache-hot row: same workload, metrics on,
    // sampling off vs every request sampled. The obs registry is reset
    // so the SLO section below sees only this run's counters.
    obs::reset();
    obs::set_enabled(true);
    obs::slo::install_default();
    let trace_threads = 2.min(cores);
    let (trace_batches, trace_batch_len) = if quick { (8, 64) } else { (16, 256) };
    // On a contended (often single-core) host, a single short run is
    // scheduler roulette; best-of-N interleaved repetitions converge
    // both modes toward true capacity.
    let trace_reps = if quick { 4 } else { 9 };

    // The SLO engine samples the registry from a background thread
    // while the runs execute, so the burn-rate windows see live deltas.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                obs::slo::tick();
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        })
    };

    // Warm up both paths (thread spawn, allocator, registry names), then
    // measure *paired* back-to-back runs. Ambient host load drifts on a
    // scale of seconds, so comparing two maxima taken at different times
    // confounds drift with instrumentation cost; within one pair the
    // regime is the same, and the median of per-pair overheads is robust
    // to outlier pairs.
    obs::set_trace_sampling(0);
    run(trace_threads, trace_batches, trace_batch_len);
    obs::set_trace_sampling(1);
    run(trace_threads, trace_batches, trace_batch_len);
    let mut clean_rs: Vec<f64> = Vec::with_capacity(trace_reps);
    let mut traced_rs: Vec<f64> = Vec::with_capacity(trace_reps);
    let mut pair_overheads: Vec<f64> = Vec::with_capacity(trace_reps);
    for _ in 0..trace_reps {
        obs::set_trace_sampling(0);
        let c = run(trace_threads, trace_batches, trace_batch_len);
        obs::set_trace_sampling(1);
        let t = run(trace_threads, trace_batches, trace_batch_len);
        pair_overheads.push((1.0 - t.requests_per_sec / c.requests_per_sec) * 100.0);
        clean_rs.push(c.requests_per_sec);
        traced_rs.push(t.requests_per_sec);
    }
    obs::set_trace_sampling(0);

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    sampler.join().expect("slo sampler thread");
    let slo_report = obs::slo::tick_and_report().expect("slo engine installed");
    obs::slo::uninstall();

    fn median(xs: &mut [f64]) -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = xs.len();
        if n % 2 == 1 {
            xs[n / 2]
        } else {
            (xs[n / 2 - 1] + xs[n / 2]) / 2.0
        }
    }
    let overhead_pct = median(&mut pair_overheads);
    let clean_rps = median(&mut clean_rs);
    let traced_rps = median(&mut traced_rs);
    eprintln!(
        "[c5 throughput] tracing overhead @ sample=1: {:.0} -> {:.0} req/s \
         (median of {} pairs: {:+.1}%)",
        clean_rps, traced_rps, trace_reps, overhead_pct
    );
    let tracing_section = serde_json::Value::Object(vec![
        (
            "threads".into(),
            serde_json::Value::U64(trace_threads as u64),
        ),
        (
            "requests_per_sec_untraced".into(),
            serde_json::Value::F64(clean_rps),
        ),
        (
            "requests_per_sec_sampled_1_in_1".into(),
            serde_json::Value::F64(traced_rps),
        ),
        ("overhead_pct".into(), serde_json::Value::F64(overhead_pct)),
        (
            "traces_retained".into(),
            serde_json::Value::U64(
                obs::shard_trace_counts()
                    .iter()
                    .map(|&(_, n)| n as u64)
                    .sum(),
            ),
        ),
    ]);

    let slo_json = slo_report.to_json();
    let slo_section: serde_json::Value =
        serde_json::from_str(&slo_json).expect("slo report reparses");
    eprint!("[c5 throughput] {}", slo_report.render());

    let mut summary = summary;
    if let serde_json::Value::Object(fields) = &mut summary {
        fields.push(("tracing".into(), tracing_section));
        fields.push(("slo".into(), slo_section));
        fields.push(("durability".into(), durability));
        fields.push(("wal_encoding".into(), wal_encoding));
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    std::fs::write(path, json + "\n").expect("BENCH_throughput.json is writable");
    eprintln!("[c5 throughput] wrote {path}");

    // The SLO section also lands next to the other BENCH artifacts.
    let slo_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_slo.json");
    std::fs::write(slo_path, slo_json + "\n").expect("BENCH_slo.json is writable");
    eprintln!("[c5 throughput] wrote {slo_path}");

    // Smoke gate: a clean (fault-free) run must not breach the
    // availability SLO. Latency is advisory — CI containers are slow.
    if std::env::var("SLO_SMOKE").is_ok() && slo_report.availability_breached() {
        eprintln!("[c5 throughput] SLO_SMOKE: availability SLO breached on a clean run");
        std::process::exit(1);
    }

    // Durability gate: every crash + recovery in the durability section
    // must reproduce the acknowledged state byte-for-byte, and the binary
    // record codec must hold its >= 2x payload-size win over JSON.
    // Throughput is advisory; divergence or a size regression is a
    // correctness failure.
    if std::env::var("WAL_GATE").is_ok() && !(recovery_ok && encoding_ok) {
        eprintln!(
            "[c5 throughput] WAL_GATE: recovery diverged or binary encoding \
             lost its size win"
        );
        std::process::exit(1);
    }
}
