//! Shared fixtures for the benchmark suite.
//!
//! Each bench target under `benches/` reproduces one experiment from the
//! DESIGN.md index (F1–F7 figures, C1–C4 claims). Helpers here build the
//! standard workloads so all benches measure against the same data.

use activegis::{ActiveGis, TelecomConfig, FIG6_PROGRAM};
use geodb::db::Database;
use geodb::gen::phone_net_db;

/// The paper's demo system with the Fig. 6 program installed.
pub fn customized_gis(cfg: &TelecomConfig) -> ActiveGis {
    let mut gis = ActiveGis::phone_net_demo(cfg).expect("demo builds");
    gis.customize(FIG6_PROGRAM, "fig6").expect("fig6 installs");
    gis
}

/// The paper's demo system with no customization installed.
pub fn generic_gis(cfg: &TelecomConfig) -> ActiveGis {
    ActiveGis::phone_net_demo(cfg).expect("demo builds")
}

/// A phone-net database scaled to roughly `n` poles.
pub fn db_with_poles(n: usize) -> Database {
    let (db, _) = phone_net_db(&TelecomConfig::with_poles(n)).expect("db builds");
    db
}

/// A synthetic customization program with `n` directives across distinct
/// user contexts (for the language and rule-selection benches).
pub fn synthetic_program(n: usize) -> String {
    let mut out = String::with_capacity(n * 200);
    for i in 0..n {
        let fmt = ["pointFormat", "symbolFormat", "tableFormat", "default"][i % 4];
        out.push_str(&format!(
            "for user user{i} application pole_manager\n\
             schema phone_net display as default\n\
             class Pole display presentation as {fmt}\n\
             instances display attribute pole_location as Null\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let _ = customized_gis(&TelecomConfig::small());
        let _ = generic_gis(&TelecomConfig::small());
        let db = db_with_poles(200);
        assert!(db.extent_size("phone_net", "Pole") >= 200);
        let prog = synthetic_program(5);
        assert_eq!(custlang::parse(&prog).unwrap().directives.len(), 5);
    }
}
