//! Concurrent multi-session serving.
//!
//! The paper interposes the active mechanism between *every* user
//! interaction and the DBMS; the ROADMAP north star is a deployment that
//! serves heavy traffic from many users at once. [`SessionServer`] is
//! that serving layer: a dependency-free worker pool that shards user
//! sessions across N OS threads and dispatches requests for distinct
//! sessions in parallel.
//!
//! # Shard model
//!
//! Each worker thread owns a full [`Dispatcher`] — a private reader pin
//! over *one shared* [`DbStore`] and its own engine *session* opened
//! from one shared [`RuleBase`]. Both data and rules therefore exist
//! once, published as immutable copy-on-write snapshots; everything
//! mutable per dispatch (winner cache, scratch buffers, deferred queue,
//! window registry) is shard-private, so workers never contend on a lock
//! in the steady state. Sessions are pinned to a shard round-robin at
//! open time: all requests of one session execute on one thread in
//! arrival order, while requests of different sessions proceed in
//! parallel. See `docs/scaling.md` for the full protocol.
//!
//! Rule mutations go through any engine handle of the same rule base
//! (e.g. the one inside another `Dispatcher`, or a plain
//! [`RuleBase::session`]); database writes go through any handle of the
//! same store (e.g. [`SessionServer::db_store`], or the dispatcher of
//! one shard via [`SessionServer::with_dispatcher`]). Every shard picks
//! up the new rule snapshot and the new database epoch with one atomic
//! check each at its next dispatch — a write committed through shard A
//! is visible to a read on shard B immediately after it publishes (see
//! `docs/storage.md`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use active::{ActiveError, DispatchStrategy, Outcome, RuleBase, SessionContext};
use custlang::Customization;
use geodb::query::{DbEvent, DbEventKind};
use geodb::repl::{ReadRouter, ReplicaStatus, ReplicaStore};
use geodb::store::DbStore;
use geodb::Epoch;
use gisui::{Dispatcher, SessionId, UiError};

/// Where the serving layer routes *reads* (writes always go to the
/// primary). See `docs/replication.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadRouting {
    /// Every shard reads the primary (the non-replicated default).
    Primary,
    /// Every shard reads its assigned replica unconditionally — reads
    /// may be arbitrarily stale while the replica lags.
    Replica,
    /// Every shard reads its assigned replica while it is within `0`
    /// epochs of the primary's frontier, falling back to the primary
    /// per-read otherwise — no routed read ever observes state older
    /// than the bound.
    BoundedStaleness(u64),
}

impl ReadRouting {
    /// Router for one shard under this policy. `replica` is the shard's
    /// assigned follower (`None` ⇒ primary-only regardless of policy).
    fn router(self, store: &DbStore, replica: Option<&ReplicaStore>) -> ReadRouter {
        match (self, replica) {
            (ReadRouting::Primary, _) | (_, None) => ReadRouter::primary_only(store.reader()),
            (ReadRouting::Replica, Some(r)) => {
                ReadRouter::with_replica(store.reader(), r.reader(), None)
            }
            (ReadRouting::BoundedStaleness(bound), Some(r)) => {
                ReadRouter::with_replica(store.reader(), r.reader(), Some(bound))
            }
        }
    }
}

/// A session opened on a [`SessionServer`]: which shard owns it and its
/// dispatcher-local id there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServerSession {
    pub shard: usize,
    pub sid: SessionId,
}

/// One request unit executed on a shard's worker thread.
enum Job {
    Open {
        context: SessionContext,
        reply: Sender<SessionId>,
    },
    /// Dispatch a batch of database events for one session, replying
    /// with per-event outcomes. Batching amortizes the queue round-trip
    /// so the per-request cost is the dispatch itself.
    Dispatch {
        sid: SessionId,
        events: Vec<DbEvent>,
        reply: Sender<Result<Vec<Outcome<Customization>>, ActiveError>>,
    },
    /// Run an arbitrary closure against the shard's dispatcher (window
    /// operations, program installs, introspection).
    Exec(Box<dyn FnOnce(&mut Dispatcher) + Send>),
    Shutdown,
}

/// A shard's work queue: jobs execute on the owning worker in FIFO
/// order.
#[derive(Default)]
struct ShardQueue {
    jobs: Mutex<Vec<Job>>,
    ready: Condvar,
}

impl ShardQueue {
    fn push(&self, job: Job) {
        self.jobs.lock().unwrap().push(job);
        self.ready.notify_one();
    }

    fn pop_all(&self) -> Vec<Job> {
        let mut jobs = self.jobs.lock().unwrap();
        while jobs.is_empty() {
            jobs = self.ready.wait(jobs).unwrap();
        }
        std::mem::take(&mut *jobs)
    }
}

/// The concurrent serving layer: N worker threads, one dispatcher and
/// one work queue per shard, sessions pinned to shards round-robin.
pub struct SessionServer {
    queues: Vec<Arc<ShardQueue>>,
    workers: Vec<JoinHandle<()>>,
    rule_base: RuleBase<Customization>,
    store: DbStore,
    /// Attached followers; shard `i` reads from replica `i % N` under a
    /// replica-routing policy. Holding them here keeps their primary
    /// pins (and background shippers) alive for the server's lifetime.
    replicas: Vec<ReplicaStore>,
    routing: Mutex<ReadRouting>,
    sessions: Mutex<HashMap<u64, ServerSession>>,
    next_session: AtomicU64,
    next_shard: AtomicU64,
}

impl SessionServer {
    /// Start `workers` shard threads, all serving `store` — one shared
    /// versioned database, not a copy per shard. Every shard opens an
    /// engine session over `rule_base` and a reader pin over the store's
    /// current epoch.
    pub fn start(
        workers: usize,
        rule_base: RuleBase<Customization>,
        store: DbStore,
    ) -> SessionServer {
        SessionServer::start_replicated(workers, rule_base, store, Vec::new(), ReadRouting::Primary)
    }

    /// Start a *replicated* serving layer: shard `i` routes its reads to
    /// `replicas[i % N]` under `routing`, while every write still goes
    /// through the shared primary `store`. With an empty replica set any
    /// policy degenerates to primary-only. The policy can be changed at
    /// run time with [`SessionServer::set_read_routing`].
    pub fn start_replicated(
        workers: usize,
        rule_base: RuleBase<Customization>,
        store: DbStore,
        replicas: Vec<ReplicaStore>,
        routing: ReadRouting,
    ) -> SessionServer {
        let workers_n = workers.max(1);
        let mut queues = Vec::with_capacity(workers_n);
        let mut handles = Vec::with_capacity(workers_n);
        for shard in 0..workers_n {
            let queue = Arc::new(ShardQueue::default());
            // Shards serve from the compiled dispatch tier: the flat
            // tables are built once per rule-base generation (shared by
            // every shard) and kill the interpreted cold path that
            // dominates once winner-cache hit rates drop. An explicitly
            // Linear base (the differential oracle) is honored as-is.
            let mut session = rule_base.session();
            if session.strategy() != DispatchStrategy::Linear {
                session.set_strategy(DispatchStrategy::Compiled);
            }
            let router = routing.router(&store, shard_replica(&replicas, shard));
            let mut dispatcher = Dispatcher::with_router(
                store.clone(),
                router,
                builder::InterfaceBuilder::with_paper_library(),
                session,
            );
            let worker_queue = Arc::clone(&queue);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("gis-shard-{shard}"))
                    .spawn(move || worker_loop(&worker_queue, &mut dispatcher, shard))
                    .expect("spawn shard worker"),
            );
            queues.push(queue);
        }
        SessionServer {
            queues,
            workers: handles,
            rule_base,
            store,
            replicas,
            routing: Mutex::new(routing),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            next_shard: AtomicU64::new(0),
        }
    }

    /// Number of shard threads.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// The shared rule base every shard dispatches against.
    pub fn rule_base(&self) -> &RuleBase<Customization> {
        &self.rule_base
    }

    /// The shared versioned store every shard serves. Clone it to read
    /// (`snapshot`/`reader`) or write (`write`) from any thread; commits
    /// publish a new epoch that every shard observes at its next
    /// dispatch.
    pub fn db_store(&self) -> DbStore {
        self.store.clone()
    }

    /// The database epoch currently published to every shard.
    pub fn db_epoch(&self) -> Epoch {
        self.store.epoch()
    }

    /// The highest epoch known durable, or 0 when the shared store is
    /// volatile. Under group commit several shards' writes may become
    /// durable with one fsync.
    pub fn durable_epoch(&self) -> Epoch {
        self.store.durable_epoch()
    }

    /// WAL counters of the shared store, or `None` when volatile.
    pub fn wal_status(&self) -> Option<(geodb::WalStatus, Epoch)> {
        self.store.wal_status()
    }

    /// The read-routing policy shards currently apply.
    pub fn read_routing(&self) -> ReadRouting {
        *self.routing.lock().unwrap()
    }

    /// The attached replicas, in shard-assignment order.
    pub fn replicas(&self) -> &[ReplicaStore] {
        &self.replicas
    }

    /// Health of every attached replica (applied epoch, lag, sync and
    /// byte counters).
    pub fn replication_status(&self) -> Vec<ReplicaStatus> {
        self.replicas.iter().map(ReplicaStore::status).collect()
    }

    /// Drive every replica to the primary's published epoch once (tests
    /// and benchmarks; production deployments stream instead — see
    /// [`geodb::repl::ReplicaStore::start_streaming`]).
    pub fn sync_replicas(&self) -> Result<(), geodb::GeoDbError> {
        for r in &self.replicas {
            r.sync_to_latest()?;
        }
        Ok(())
    }

    /// Swap the read-routing policy on every shard. Synchronous: when
    /// this returns, the next interaction on any shard pins under the
    /// new policy.
    pub fn set_read_routing(&self, routing: ReadRouting) {
        *self.routing.lock().unwrap() = routing;
        for shard in 0..self.queues.len() {
            let router = routing.router(&self.store, shard_replica(&self.replicas, shard));
            let (tx, rx) = channel();
            self.queues[shard].push(Job::Exec(Box::new(move |d| {
                d.route_reads(router);
                let _ = tx.send(());
            })));
            rx.recv().expect("shard worker alive");
        }
    }

    /// Open a session for a user context; it is pinned to a shard
    /// round-robin and all its requests run there, in order.
    pub fn open_session(&self, context: SessionContext) -> ServerSession {
        let shard = (self.next_shard.fetch_add(1, Ordering::Relaxed) as usize) % self.queues.len();
        let (tx, rx) = channel();
        self.queues[shard].push(Job::Open { context, reply: tx });
        let sid = rx.recv().expect("shard worker alive");
        let session = ServerSession { shard, sid };
        let key = self.next_session.fetch_add(1, Ordering::Relaxed);
        self.sessions.lock().unwrap().insert(key, session);
        session
    }

    /// Dispatch one database event for a session and wait for the
    /// outcome.
    pub fn dispatch(
        &self,
        session: ServerSession,
        event: DbEvent,
    ) -> Result<Outcome<Customization>, ActiveError> {
        Ok(self
            .dispatch_batch(session, vec![event])?
            .pop()
            .expect("one outcome per event"))
    }

    /// Dispatch a batch of database events for one session (one queue
    /// round-trip, outcomes in order). The batch is the serving layer's
    /// unit of work; `c5_throughput` drives these.
    pub fn dispatch_batch(
        &self,
        session: ServerSession,
        events: Vec<DbEvent>,
    ) -> Result<Vec<Outcome<Customization>>, ActiveError> {
        let (tx, rx) = channel();
        self.queues[session.shard].push(Job::Dispatch {
            sid: session.sid,
            events,
            reply: tx,
        });
        rx.recv().expect("shard worker alive")
    }

    /// Run a closure on a session's shard against its dispatcher and
    /// wait for the result — the escape hatch for full-UI requests
    /// (window opens, renders, program installs on that shard).
    pub fn with_dispatcher<R: Send + 'static>(
        &self,
        session: ServerSession,
        f: impl FnOnce(&mut Dispatcher) -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = channel();
        self.queues[session.shard].push(Job::Exec(Box::new(move |d| {
            let _ = tx.send(f(d));
        })));
        rx.recv().expect("shard worker alive")
    }

    /// Install a customization program on every shard's dispatcher.
    /// Rules land in the shared rule base once per distinct name; the
    /// per-shard install also primes shard-local compiler state. Returns
    /// the rule count reported by the first shard.
    pub fn install_program(&self, source: &str, prefix: &str) -> Result<usize, UiError> {
        let mut first: Option<usize> = None;
        for shard in 0..self.queues.len() {
            let (tx, rx) = channel();
            let src = source.to_string();
            let pfx = prefix.to_string();
            self.queues[shard].push(Job::Exec(Box::new(move |d| {
                let _ = tx.send(d.install_program(&src, &pfx));
            })));
            let n = rx.recv().expect("shard worker alive")?;
            first.get_or_insert(n);
        }
        // Compile the new rule generation now, off the serving path —
        // the first post-install dispatch on every shard reuses the
        // shared artifact instead of paying the compile itself.
        self.rule_base.precompile();
        Ok(first.unwrap_or(0))
    }
}

impl Drop for SessionServer {
    fn drop(&mut self) {
        for q in &self.queues {
            q.push(Job::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The replica assigned to a shard: `shard % N`, `None` with no
/// replicas attached.
fn shard_replica(replicas: &[ReplicaStore], shard: usize) -> Option<&ReplicaStore> {
    if replicas.is_empty() {
        None
    } else {
        Some(&replicas[shard % replicas.len()])
    }
}

/// Grouping key for batch execution: events of one kind walk the same
/// compiled jump table / index bucket. The rank is arbitrary but fixed —
/// it only needs to collate equal kinds, and must stay a *stable* sort
/// key so arrival order survives within each group.
fn kind_rank(kind: DbEventKind) -> u8 {
    match kind {
        DbEventKind::GetSchema => 0,
        DbEventKind::GetClass => 1,
        DbEventKind::GetValue => 2,
        DbEventKind::Insert => 3,
        DbEventKind::Update => 4,
        DbEventKind::Delete => 5,
        DbEventKind::SchemaRegistered => 6,
    }
}

fn worker_loop(queue: &ShardQueue, dispatcher: &mut Dispatcher, shard: usize) {
    // Pin the worker thread to its shard: request traces commit to this
    // shard's ring and shard-labeled counters attribute to it.
    obs::set_shard(shard as u64);
    let shard_label = shard.to_string();
    loop {
        for job in queue.pop_all() {
            match job {
                Job::Open { context, reply } => {
                    let _ = reply.send(dispatcher.open_session(context));
                }
                Job::Dispatch { sid, events, reply } => {
                    // The reply is sent only after the trace guard has
                    // dropped, so a client that reads the trace ring
                    // right after `recv` always sees its own trace.
                    let result = {
                        let _root = obs::trace_root("server.dispatch_batch");
                        let batch_len = events.len();
                        if obs::trace_recording() {
                            obs::trace_annotate("shard", shard_label.clone());
                            obs::trace_annotate("batch_len", batch_len.to_string());
                        }
                        let t0 = std::time::Instant::now();
                        // Execute grouped by event discriminant so one
                        // jump-table / index-bucket walk amortizes over
                        // the whole batch (same kind → same table, warm
                        // branch predictor, denser winner-cache probes).
                        // The sort is stable: events of one kind keep
                        // their arrival order, and replies are written
                        // back through `slots` in arrival order, so
                        // grouping is invisible to the client.
                        let mut order: Vec<usize> = (0..events.len()).collect();
                        order.sort_by_key(|&i| kind_rank(events[i].kind()));
                        let sorted: Vec<DbEvent> = {
                            let mut events: Vec<Option<DbEvent>> =
                                events.into_iter().map(Some).collect();
                            order
                                .iter()
                                .map(|&i| events[i].take().expect("each slot dispatched once"))
                                .collect()
                        };
                        let mut slots: Vec<Option<Outcome<Customization>>> =
                            (0..order.len()).map(|_| None).collect();
                        let mut dispatched = 0usize;
                        let mut degraded = 0u64;
                        let mut failed = None;
                        // One batched call: the dispatcher resolves the
                        // session and revalidates its reader pin once,
                        // and the engine's batch lane amortizes the
                        // table walk across each kind-sorted run. Every
                        // event dispatches (per-event isolation), but
                        // the batch still fails on the first error in
                        // *execution* (grouped) order, as before.
                        match dispatcher.dispatch_db_batch(sid, sorted) {
                            Ok(outcomes) => {
                                for (&i, outcome) in order.iter().zip(outcomes) {
                                    match outcome {
                                        Ok(o) => {
                                            dispatched += 1;
                                            if !o.faults.is_empty() {
                                                degraded += 1;
                                            }
                                            slots[i] = Some(o);
                                        }
                                        Err(UiError::Active(e)) => {
                                            failed = Some(e);
                                            break;
                                        }
                                        Err(other) => {
                                            failed =
                                                Some(ActiveError::UnknownRule(other.to_string()));
                                            break;
                                        }
                                    }
                                }
                            }
                            Err(UiError::Active(e)) => failed = Some(e),
                            Err(other) => {
                                failed = Some(ActiveError::UnknownRule(other.to_string()));
                            }
                        }
                        if obs::enabled() {
                            // SLO accounting: every event in the batch
                            // is a request; an error fails the events
                            // it prevented from dispatching, and
                            // fault-degraded outcomes count separately.
                            let ok = dispatched as u64 - degraded;
                            let shard_lbl: &[(&str, &str)] = &[("shard", &shard_label)];
                            if ok > 0 {
                                obs::counter_add_labeled(
                                    "server.requests",
                                    &[("degraded", "false"), ("shard", &shard_label)],
                                    ok,
                                );
                            }
                            if degraded > 0 {
                                obs::counter_add_labeled(
                                    "server.requests",
                                    &[("degraded", "true"), ("shard", &shard_label)],
                                    degraded,
                                );
                            }
                            if failed.is_some() {
                                let missed = (batch_len - dispatched).max(1) as u64;
                                obs::counter_add_labeled("server.requests", shard_lbl, missed);
                                obs::counter_add_labeled(
                                    "server.request_errors",
                                    shard_lbl,
                                    missed,
                                );
                            }
                            obs::record_nanos_labeled(
                                "server.batch_latency",
                                shard_lbl,
                                t0.elapsed().as_nanos() as u64,
                            );
                        }
                        if failed.is_some() {
                            obs::trace_mark_fault();
                        }
                        match failed {
                            Some(e) => Err(e),
                            None => Ok(slots
                                .into_iter()
                                .map(|s| s.expect("no failure ⇒ every slot filled"))
                                .collect()),
                        }
                    };
                    let _ = reply.send(result);
                }
                Job::Exec(f) => f(dispatcher),
                Job::Shutdown => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use active::Engine;
    use custlang::FIG6_PROGRAM;
    use geodb::gen::TelecomConfig;

    fn server(workers: usize) -> SessionServer {
        let engine: Engine<Customization> = Engine::new();
        let base = engine.rule_base();
        let db = geodb::gen::phone_net_db(&TelecomConfig::small()).unwrap().0;
        SessionServer::start(workers, base, DbStore::new(db))
    }

    #[test]
    fn server_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SessionServer>();
        fn assert_send<T: Send>() {}
        assert_send::<Dispatcher>();
    }

    #[test]
    fn replicated_server_serves_follower_reads_and_swaps_policy() {
        let engine: Engine<Customization> = Engine::new();
        let base = engine.rule_base();
        let db = geodb::gen::phone_net_db(&TelecomConfig::small()).unwrap().0;
        let store = DbStore::new(db);
        let replicas: Vec<_> = (0..2)
            .map(|i| ReplicaStore::attach(&store, format!("r{i}")).unwrap())
            .collect();
        let server = SessionServer::start_replicated(
            4,
            base,
            store.clone(),
            replicas,
            ReadRouting::BoundedStaleness(0),
        );
        assert_eq!(server.read_routing(), ReadRouting::BoundedStaleness(0));
        assert_eq!(server.replicas().len(), 2);

        let session = server.open_session(SessionContext::new("u", "c", "app"));
        let event = DbEvent::GetClass {
            schema: "phone_net".into(),
            class: "Pole".into(),
        };
        // Replicas are at the primary's epoch (lag 0): served in-bound.
        server.dispatch(session, event.clone()).unwrap();

        // A primary write makes both replicas lag; bound 0 forces the
        // shard onto the primary, which must serve the new value.
        let oid = store
            .snapshot()
            .get_class("phone_net", "Pole", false)
            .unwrap()[0]
            .oid;
        store
            .write(|db| db.update(oid, vec![("pole_type".into(), geodb::Value::Int(77))]))
            .unwrap();
        let fresh = server.with_dispatcher(session, move |d| {
            let snap = d.snapshot();
            let epoch = snap.epoch();
            (snap.peek(oid).unwrap().get("pole_type").clone(), epoch)
        });
        assert_eq!(fresh.0, geodb::Value::Int(77));
        assert_eq!(fresh.1, store.epoch());
        for s in server.replication_status() {
            assert!(s.lag >= 1, "replicas lag after the write: {s:?}");
        }

        // Catch up and swap to unconditional replica reads.
        server.sync_replicas().unwrap();
        server.set_read_routing(ReadRouting::Replica);
        assert_eq!(server.read_routing(), ReadRouting::Replica);
        server.dispatch(session, event).unwrap();
        let epoch = server.with_dispatcher(session, |d| d.db_epoch());
        assert_eq!(epoch, store.epoch(), "synced replica serves the frontier");
    }

    #[test]
    fn sessions_shard_round_robin_and_dispatch() {
        let server = server(2);
        server.install_program(FIG6_PROGRAM, "fig6").unwrap();

        let a = server.open_session(SessionContext::new("juliano", "planner", "pole_manager"));
        let b = server.open_session(SessionContext::new("guest", "visitor", "browse"));
        assert_ne!(a.shard, b.shard, "round-robin placement");

        let event = DbEvent::GetClass {
            schema: "phone_net".into(),
            class: "Pole".into(),
        };
        // Juliano's Fig. 6 rules customize Pole; the guest gets generic.
        let out = server.dispatch(a, event.clone()).unwrap();
        assert!(!out.customizations.is_empty());
        let out = server.dispatch(b, event).unwrap();
        assert!(out.customizations.is_empty());
    }

    #[test]
    fn rule_mutations_propagate_to_every_shard() {
        let server = server(2);
        let mut writer = server.rule_base().session();
        let a = server.open_session(SessionContext::new("u1", "c", "app"));
        let b = server.open_session(SessionContext::new("u2", "c", "app"));
        let event = DbEvent::GetSchema {
            schema: "phone_net".into(),
        };

        assert!(server.dispatch(a, event.clone()).unwrap().fired.is_empty());
        writer
            .add_rule(active::Rule::customization(
                "everywhere",
                active::EventPattern::db(geodb::query::DbEventKind::GetSchema),
                active::ContextPattern::any(),
                Customization::SchemaWindow {
                    schema: "phone_net".into(),
                    mode: custlang::SchemaMode::Default,
                    classes: vec![],
                },
            ))
            .unwrap();
        // Both shards see the new snapshot at their next dispatch.
        assert_eq!(
            server.dispatch(a, event.clone()).unwrap().fired_names(),
            vec!["everywhere"]
        );
        assert_eq!(
            server.dispatch(b, event).unwrap().fired_names(),
            vec!["everywhere"]
        );
    }

    #[test]
    fn parallel_clients_on_distinct_sessions() {
        let server = Arc::new(server(4));
        server.install_program(FIG6_PROGRAM, "fig6").unwrap();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let session = server.open_session(SessionContext::new(
                        format!("user{t}"),
                        "planner",
                        "pole_manager",
                    ));
                    let events: Vec<DbEvent> = (0..50)
                        .map(|_| DbEvent::GetClass {
                            schema: "phone_net".into(),
                            class: "Pole".into(),
                        })
                        .collect();
                    let outcomes = server.dispatch_batch(session, events).unwrap();
                    assert_eq!(outcomes.len(), 50);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.rule_base().total_dispatches(), 200);
    }

    #[test]
    fn batch_grouping_preserves_reply_order() {
        let server = server(1);
        let mut writer = server.rule_base().session();
        // One rule per kind, named after it, so each outcome identifies
        // which event produced it.
        for (name, kind) in [
            ("on_schema", geodb::query::DbEventKind::GetSchema),
            ("on_class", geodb::query::DbEventKind::GetClass),
            ("on_value", geodb::query::DbEventKind::GetValue),
        ] {
            writer
                .add_rule(active::Rule::customization(
                    name,
                    active::EventPattern::db(kind),
                    active::ContextPattern::any(),
                    Customization::SchemaWindow {
                        schema: "phone_net".into(),
                        mode: custlang::SchemaMode::Default,
                        classes: vec![],
                    },
                ))
                .unwrap();
        }
        let s = server.open_session(SessionContext::new("u", "c", "app"));
        let oid = server.with_dispatcher(s, |d| {
            d.snapshot().get_class("phone_net", "Pole", false).unwrap()[0].oid
        });
        // Kinds deliberately interleaved: grouped execution reorders
        // them internally, replies must come back in arrival order.
        let events = vec![
            DbEvent::GetClass {
                schema: "phone_net".into(),
                class: "Pole".into(),
            },
            DbEvent::GetSchema {
                schema: "phone_net".into(),
            },
            DbEvent::GetValue {
                schema: "phone_net".into(),
                class: "Pole".into(),
                oid,
            },
            DbEvent::GetClass {
                schema: "phone_net".into(),
                class: "Conduit".into(),
            },
            DbEvent::GetSchema {
                schema: "phone_net".into(),
            },
        ];
        let expected = ["on_class", "on_schema", "on_value", "on_class", "on_schema"];
        let outcomes = server.dispatch_batch(s, events).unwrap();
        assert_eq!(outcomes.len(), expected.len());
        for (out, want) in outcomes.iter().zip(expected) {
            assert_eq!(out.fired_names(), vec![want]);
        }
    }

    #[test]
    fn shards_serve_from_the_compiled_tier() {
        let server = server(1);
        server.install_program(FIG6_PROGRAM, "fig6").unwrap();
        // install_program precompiled the current generation.
        let stats = server.rule_base().compiled_stats().expect("precompiled");
        assert!(stats.rules > 0);
        assert_eq!(stats.generation, server.rule_base().epoch());
        let s = server.open_session(SessionContext::new("juliano", "planner", "pole_manager"));
        let out = server
            .dispatch(
                s,
                DbEvent::GetClass {
                    schema: "phone_net".into(),
                    class: "Pole".into(),
                },
            )
            .unwrap();
        assert!(!out.customizations.is_empty());
    }

    #[test]
    fn cross_shard_read_your_writes() {
        let server = server(2);
        let a = server.open_session(SessionContext::new("writer", "planner", "pole_manager"));
        let b = server.open_session(SessionContext::new("reader", "visitor", "browse"));
        assert_ne!(a.shard, b.shard, "write and read land on distinct shards");

        // Pick any pole through shard B's pinned snapshot.
        let oid = server.with_dispatcher(b, |d| {
            d.snapshot().get_class("phone_net", "Pole", false).unwrap()[0].oid
        });
        let epoch_before = server.db_epoch();

        // Commit an update through shard A's full UI path (exploratory
        // sessions cannot issue updates).
        server.with_dispatcher(a, move |d| {
            d.set_mode(a.sid, gisui::InteractionMode::Analysis).unwrap();
            d.apply_update(
                a.sid,
                oid,
                vec![("pole_type".into(), geodb::value::Value::Int(99))],
            )
            .unwrap();
        });
        assert!(
            server.db_epoch() > epoch_before,
            "commit published an epoch"
        );

        // Shard B (and a plain store handle) observe the write at once.
        let seen = server.with_dispatcher(b, move |d| {
            d.snapshot().peek(oid).unwrap().get("pole_type").clone()
        });
        assert_eq!(seen, geodb::value::Value::Int(99));
        assert_eq!(
            *server
                .db_store()
                .snapshot()
                .peek(oid)
                .unwrap()
                .get("pole_type"),
            geodb::value::Value::Int(99)
        );
    }

    #[test]
    fn full_ui_requests_run_on_the_owning_shard() {
        let server = server(2);
        server.install_program(FIG6_PROGRAM, "fig6").unwrap();
        let s = server.open_session(SessionContext::new("juliano", "planner", "pole_manager"));
        let rendered = server.with_dispatcher(s, move |d| {
            let windows = d.open_schema(s.sid, "phone_net").unwrap();
            d.render(*windows.last().unwrap()).unwrap()
        });
        assert!(rendered.contains("Class: Pole"));
    }
}
