//! An interactive shell over the weak-integration protocol.
//!
//! Every command is turned into a protocol [`Request`], encoded to JSON,
//! decoded, served by the dispatcher, and the JSON [`Response`] decoded
//! back — the same path a remote front end would use.
//!
//! ```text
//! $ cargo run --bin activegis-repl
//! activegis> login juliano planner pole_manager
//! activegis> customize fig6
//! activegis> schema phone_net
//! activegis> class Pole
//! activegis> explain
//! activegis> help
//! ```

use std::io::{BufRead, Write};

use activegis::{ActiveGis, Request, Response, TelecomConfig, FIG6_PROGRAM};
use gisui::SessionId;

const HELP: &str = "\
commands:
  login <user> <category> <application>   start a session (required first)
  customize fig6                          install the paper's Fig. 6 program
  customize <file>                        install a program from a file
  schema <name>                           open the Schema window
  class <name>                            open a Class-set window (uses last schema)
  inst <oid>                              open an Instance window
  select <window> <path> <item>           deliver a list-select gesture
  close <window>                          close a window (and children)
  explain                                 print the rule-firing trace
  :explain [n]                            structured trace export as JSON (last n)
  :metrics                                metrics snapshot as JSON
  :metrics prom                           metrics in Prometheus text format
  :metrics on|off                         toggle metric collection
  :traces [n]                             summarize recent request traces
  :trace <id>                             render one trace tree (hex id)
  :trace sample <n>                       trace 1 in n requests (0 = off)
  :slo                                    SLO burn-rate report
  :db                                     database epoch, pins, retained epochs
  :wal                                    WAL status (records, bytes, groups, durable epoch)
  :wal open <dir>                         make the store durable in <dir> (recover or fresh)
  :wal checkpoint                         checkpoint now and truncate the log
  :wal window <ms>                        set the group-commit window
  :repl attach <id>                       attach a replica (full sync to current epoch)
  :repl status                            applied epoch / lag / sync counters per replica
  :repl sync                              drive every replica to the primary's epoch
  :repl policy primary|replica            route reads to primary / first replica
  :repl policy staleness <n>              replica reads within n epochs, else primary
  :repl promote <id> <dir>                fail over: replay <dir>'s WAL tail onto <id>
  :strategy [indexed|linear|compiled]     show or switch rule dispatch strategy
  :cache                                  winner-cache hit/miss/invalidation stats
  :compile                                compile rules now; show tables + latency
  :faults                                 failpoint status (hits / times triggered)
  :faults arm <name> [panic]              arm a failpoint: always error (or panic)
  :faults arm <name> p <prob> <seed>      arm with seeded probability
  :faults arm <name> nth <n>              arm to trigger every n-th hit
  :faults disarm <name>|reset             disarm one failpoint / all of them
  :quarantine [clear <rule>]              list circuit-broken rules / restore one
  :policy [open|closed]                   show or set the engine fault policy
  screen                                  tile this session's windows
  windows                                 list open windows
  help                                    this text
  quit                                    exit";

struct Repl {
    gis: ActiveGis,
    session: Option<SessionId>,
    last_schema: String,
}

impl Repl {
    /// Round-trip a request through the JSON protocol.
    fn call(&mut self, req: Request) -> Response {
        let Some(sid) = self.session else {
            return Response::Error {
                message: "no session: `login <user> <category> <application>` first".into(),
            };
        };
        let wire = gisui::encode(&req);
        let req: Request = gisui::decode(&wire).expect("own encoding decodes");
        let resp = self.gis.dispatcher().handle_request(sid, req);
        let wire = gisui::encode(&resp);
        gisui::decode(&wire).expect("own encoding decodes")
    }

    fn show(&self, resp: Response) {
        match resp {
            Response::Windows(ws) => {
                for w in ws {
                    if w.visible {
                        println!("[win {}] {} ({})", w.id, w.title, w.kind);
                        println!("{}", w.ascii);
                    } else {
                        println!("[win {}] {} ({}) — hidden", w.id, w.title, w.kind);
                    }
                }
            }
            Response::Closed(ids) => println!("closed {ids:?}"),
            Response::Explanation(lines) => {
                for l in lines {
                    println!("{l}");
                }
            }
            Response::Error { message } => println!("error: {message}"),
        }
    }

    fn show_traces(&self, n: usize) {
        let traces = ActiveGis::traces(n);
        if traces.is_empty() {
            println!("no traces recorded (arm sampling with `:trace sample 1`)");
            return;
        }
        for t in traces {
            println!(
                "{} shard={} spans={} {:.1}us{}{}",
                t.trace_id_hex,
                t.shard,
                t.spans.len(),
                t.total_ns as f64 / 1e3,
                if t.fault { " FAULT" } else { "" },
                if t.sampled { "" } else { " (fault-retained)" },
            );
        }
    }

    fn handle(&mut self, line: &str) -> bool {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [] => {}
            ["quit"] | ["exit"] => return false,
            ["help"] => println!("{HELP}"),
            ["login", user, category, application] => {
                self.session = Some(self.gis.login(user, category, application));
                println!("session open for <{user}, {category}, {application}>");
            }
            ["customize", "fig6"] => match self.gis.customize_stored(FIG6_PROGRAM, "fig6") {
                Ok(n) => println!("installed {n} rules (program stored in db)"),
                Err(e) => println!("error: {e}"),
            },
            ["customize", file] => match std::fs::read_to_string(file) {
                Ok(src) => match self.gis.customize_stored(&src, file) {
                    Ok(n) => println!("installed {n} rules from {file} (program stored in db)"),
                    Err(e) => println!("error: {e}"),
                },
                Err(e) => println!("error: cannot read {file}: {e}"),
            },
            ["schema", name] => {
                self.last_schema = name.to_string();
                let resp = self.call(Request::OpenSchema {
                    schema: name.to_string(),
                });
                self.show(resp);
            }
            ["class", name] => {
                let resp = self.call(Request::OpenClass {
                    schema: self.last_schema.clone(),
                    class: name.to_string(),
                });
                self.show(resp);
            }
            ["inst", oid] => match oid.parse::<u64>() {
                Ok(oid) => {
                    let resp = self.call(Request::OpenInstance { oid });
                    self.show(resp);
                }
                Err(_) => println!("error: `{oid}` is not an oid"),
            },
            ["select", window, path, item] => match window.parse::<u64>() {
                Ok(window) => {
                    let resp = self.call(Request::UiGesture {
                        window,
                        path: path.to_string(),
                        gesture: "select".into(),
                        detail: Some(item.to_string()),
                    });
                    self.show(resp);
                }
                Err(_) => println!("error: `{window}` is not a window id"),
            },
            ["close", window] => match window.parse::<u64>() {
                Ok(window) => {
                    let resp = self.call(Request::CloseWindow { window });
                    self.show(resp);
                }
                Err(_) => println!("error: `{window}` is not a window id"),
            },
            ["explain"] => {
                let resp = self.call(Request::Explain);
                self.show(resp);
            }
            [":explain"] => println!("{}", self.gis.explanation_json()),
            [":explain", n] => match n.parse::<usize>() {
                Ok(n) => {
                    for record in self.gis.explanation_log().recent(n) {
                        println!("#{} {}", record.seq, record.trace.render_json());
                    }
                }
                Err(_) => println!("error: `{n}` is not a count"),
            },
            [":metrics"] => println!("{}", self.gis.metrics().to_json()),
            [":metrics", "prom"] => print!("{}", self.gis.metrics().to_prometheus()),
            [":traces"] => self.show_traces(8),
            [":traces", n] => match n.parse::<usize>() {
                Ok(n) => self.show_traces(n),
                Err(_) => println!("error: usage: :traces [n]"),
            },
            [":trace", "sample", n] => match n.parse::<u64>() {
                Ok(n) => {
                    ActiveGis::set_trace_sampling(n);
                    match n {
                        0 => println!("trace sampling off"),
                        1 => println!("tracing every request"),
                        _ => println!("tracing 1 in {n} requests (faults always)"),
                    }
                }
                Err(_) => println!("error: usage: :trace sample <n>  (0 = off)"),
            },
            [":trace", id] => match obs::parse_trace_id(id) {
                Some(id) => match ActiveGis::trace(id) {
                    Some(t) => print!("{}", t.render()),
                    None => println!("no trace {} in the rings", obs::trace_id_hex(id)),
                },
                None => println!("error: bad trace id: {id}"),
            },
            [":slo"] => match ActiveGis::slo_report() {
                Some(r) => print!("{}", r.render()),
                None => {
                    obs::slo::install_default();
                    let r = ActiveGis::slo_report().expect("just installed");
                    print!("{}", r.render());
                }
            },
            [":metrics", "on"] => {
                ActiveGis::set_metrics_enabled(true);
                println!("metric collection on");
            }
            [":metrics", "off"] => {
                ActiveGis::set_metrics_enabled(false);
                println!("metric collection off");
            }
            [":db"] => {
                let store = self.gis.db_store();
                let snap = store.snapshot();
                println!(
                    "db `{}`: epoch {} published, dispatcher serving epoch {}, \
                     {} reader pin(s) (watermark {}), {} epoch(s) retained, \
                     {} objects, ~{} KiB shared data",
                    snap.name(),
                    store.epoch(),
                    self.gis.db_epoch(),
                    store.pin_count(),
                    store
                        .pin_watermark()
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "-".into()),
                    store.epochs_retained(),
                    snap.object_count(),
                    snap.approx_data_bytes() / 1024
                );
            }
            [":wal"] => match self.gis.wal_status() {
                Some((s, durable)) => {
                    println!(
                        "wal {:?}: {} records, {}/{} bytes synced ({} payload), {} fsyncs \
                         over {} groups (max group {}), checkpoint epoch {}, durable epoch {}",
                        s.path,
                        s.records,
                        s.synced_bytes,
                        s.bytes,
                        s.payload_bytes,
                        s.fsyncs,
                        s.groups,
                        s.max_group,
                        s.checkpoint_epoch,
                        durable
                    );
                }
                None => println!("no WAL attached (volatile store); `:wal open <dir>`"),
            },
            [":wal", "open", dir] => {
                if self.gis.wal_attached() {
                    println!("error: WAL already attached");
                } else if std::path::Path::new(dir)
                    .join(geodb::wal::CHECKPOINT_META_FILE)
                    .exists()
                {
                    // The directory already holds a durable store:
                    // recover it (disk wins over the in-memory demo db;
                    // open sessions do not survive the swap).
                    let seed = geodb::db::Database::new("GEO");
                    match ActiveGis::open_durable(seed, geodb::WalConfig::new(*dir)) {
                        Ok((gis, report)) => {
                            self.gis = gis;
                            self.session = None;
                            if let Some(r) = report {
                                println!(
                                    "recovered epoch {} from {dir} (checkpoint {}, {} record(s) replayed, {} torn byte(s) cut)",
                                    r.recovered_epoch,
                                    r.checkpoint_epoch,
                                    r.replayed_records,
                                    r.truncated_bytes
                                );
                            }
                            match self.gis.load_stored_customizations() {
                                Ok((programs, rules, skipped)) => {
                                    println!(
                                        "reinstalled {programs} stored program(s) ({rules} rules); sessions reset — `login` again"
                                    );
                                    for (name, why) in skipped {
                                        println!("  skipped {name}: {why}");
                                    }
                                }
                                Err(e) => println!("error reloading stored programs: {e}"),
                            }
                        }
                        Err(e) => println!("error: {e}"),
                    }
                } else {
                    match self.gis.db_store().attach_wal(geodb::WalConfig::new(*dir)) {
                        Ok(()) => println!("store is durable in {dir} (checkpointed, fresh log)"),
                        Err(e) => println!("error: {e}"),
                    }
                }
            }
            [":wal", "checkpoint"] => match self.gis.checkpoint() {
                Ok(epoch) => println!("checkpointed epoch {epoch}; log truncated"),
                Err(e) => println!("error: {e}"),
            },
            [":wal", "window", ms] => match ms.parse::<u64>() {
                Ok(ms) => {
                    self.gis
                        .set_group_window(std::time::Duration::from_millis(ms));
                    println!("group-commit window: {ms} ms");
                }
                Err(_) => println!("error: `{ms}` is not a duration in ms"),
            },
            [":repl", "attach", id] => match self.gis.attach_replica(id) {
                Ok(s) => println!(
                    "replica {} attached at epoch {} ({} full-sync byte(s))",
                    s.id, s.applied, s.full_bytes
                ),
                Err(e) => println!("error: {e}"),
            },
            [":repl", "status"] => {
                let statuses = self.gis.replication_status();
                if statuses.is_empty() {
                    println!("no replicas attached; `:repl attach <id>`");
                }
                for s in statuses {
                    println!(
                        "replica {}: applied epoch {} (primary {}, lag {}), \
                         {} delta sync(s) / {} byte(s), {} full sync(s) / {} byte(s){}",
                        s.id,
                        s.applied,
                        s.primary_epoch,
                        s.lag,
                        s.delta_syncs,
                        s.delta_bytes,
                        s.full_syncs,
                        s.full_bytes,
                        if s.streaming { ", streaming" } else { "" }
                    );
                }
            }
            [":repl", "sync"] => match self.gis.sync_replicas() {
                Ok(()) => {
                    println!("replicas synced to epoch {}", self.gis.db_store().epoch())
                }
                Err(e) => println!("error: {e}"),
            },
            [":repl", "policy", "primary"] => {
                match self.gis.set_read_policy(activegis::ReadRouting::Primary) {
                    Ok(()) => println!("reads routed to the primary"),
                    Err(e) => println!("error: {e}"),
                }
            }
            [":repl", "policy", "replica"] => {
                match self.gis.set_read_policy(activegis::ReadRouting::Replica) {
                    Ok(()) => println!("reads routed to the first replica (unbounded staleness)"),
                    Err(e) => println!("error: {e}"),
                }
            }
            [":repl", "policy", "staleness", n] => match n.parse::<u64>() {
                Ok(n) => {
                    match self
                        .gis
                        .set_read_policy(activegis::ReadRouting::BoundedStaleness(n))
                    {
                        Ok(()) => println!(
                            "reads routed to the first replica within {n} epoch(s) of the primary"
                        ),
                        Err(e) => println!("error: {e}"),
                    }
                }
                Err(_) => println!("error: `{n}` is not an epoch bound"),
            },
            [":repl", "promote", id, dir] => {
                match self.gis.promote_replica(id, geodb::WalConfig::new(*dir)) {
                    Ok(r) => {
                        println!(
                            "promoted {id} from applied epoch {} to epoch {} \
                             ({} record(s) replayed, {} torn byte(s) cut{}); \
                             sessions reset — `login` again",
                            r.replica_applied,
                            r.promoted_epoch,
                            r.replayed_records,
                            r.truncated_bytes,
                            if r.via_full_recovery {
                                ", via full recovery"
                            } else {
                                ""
                            }
                        );
                        self.session = None;
                        match self.gis.load_stored_customizations() {
                            Ok((programs, rules, skipped)) => {
                                println!(
                                    "reinstalled {programs} stored program(s) ({rules} rules)"
                                );
                                for (name, why) in skipped {
                                    println!("  skipped {name}: {why}");
                                }
                            }
                            Err(e) => println!("error reloading stored programs: {e}"),
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            [":strategy"] => println!("{:?}", self.gis.dispatch_strategy()),
            [":strategy", "indexed"] => {
                self.gis
                    .set_dispatch_strategy(activegis::DispatchStrategy::Indexed);
                println!("dispatch strategy: Indexed");
            }
            [":strategy", "linear"] => {
                self.gis
                    .set_dispatch_strategy(activegis::DispatchStrategy::Linear);
                println!("dispatch strategy: Linear");
            }
            [":strategy", "compiled"] => {
                self.gis
                    .set_dispatch_strategy(activegis::DispatchStrategy::Compiled);
                println!("dispatch strategy: Compiled");
            }
            [":compile"] => {
                let s = self.gis.precompile_rules();
                println!(
                    "compiled generation {}: {} rules -> {} tables / {} candidates, \
                     {} users + {} categories + {} applications interned, \
                     {} event terms, packed cache {}, compile took {:.1} µs",
                    s.generation,
                    s.rules,
                    s.tables,
                    s.candidates,
                    s.users,
                    s.categories,
                    s.applications,
                    s.event_terms,
                    if s.packed_cache { "on" } else { "off" },
                    s.compile_ns as f64 / 1000.0
                );
            }
            [":cache"] => {
                let s = self.gis.dispatch_cache_stats();
                println!(
                    "winner cache: {} hits, {} misses, {} invalidations, {} evictions, {} entries",
                    s.hits, s.misses, s.invalidations, s.evictions, s.entries
                );
            }
            [":faults"] => {
                for s in self.gis.failpoints() {
                    let state = s.armed.as_deref().unwrap_or("disarmed").to_string();
                    println!(
                        "{:<16} {:<24} {} hits, {} triggered",
                        s.name, state, s.hits, s.triggered
                    );
                }
                println!("rule faults contained: {}", self.gis.rule_faults());
            }
            [":faults", "arm", name] => {
                self.gis.arm_failpoint(
                    name,
                    faultsim::Trigger::Always,
                    faultsim::FaultAction::Error,
                );
                println!("armed {name}: always -> error");
            }
            [":faults", "arm", name, "panic"] => {
                self.gis.arm_failpoint(
                    name,
                    faultsim::Trigger::Always,
                    faultsim::FaultAction::Panic,
                );
                println!("armed {name}: always -> panic");
            }
            [":faults", "arm", name, "p", p, seed] => {
                match (p.parse::<f64>(), seed.parse::<u64>()) {
                    (Ok(p), Ok(seed)) => {
                        self.gis.arm_failpoint(
                            name,
                            faultsim::Trigger::Probability { p, seed },
                            faultsim::FaultAction::Error,
                        );
                        println!("armed {name}: p={p} seed={seed} -> error");
                    }
                    _ => println!("error: usage `:faults arm <name> p <prob> <seed>`"),
                }
            }
            [":faults", "arm", name, "nth", n] => match n.parse::<u64>() {
                Ok(n) => {
                    self.gis.arm_failpoint(
                        name,
                        faultsim::Trigger::Nth(n),
                        faultsim::FaultAction::Error,
                    );
                    println!("armed {name}: every {n}th hit -> error");
                }
                Err(_) => println!("error: `{n}` is not a count"),
            },
            [":faults", "disarm", name] => {
                self.gis.disarm_failpoint(name);
                println!("disarmed {name}");
            }
            [":faults", "reset"] => {
                self.gis.reset_failpoints();
                println!("all failpoints disarmed");
            }
            [":quarantine"] => {
                let rules = self.gis.quarantined_rules();
                if rules.is_empty() {
                    println!("no rules quarantined");
                }
                for rule in rules {
                    if let Some(h) = self.gis.rule_health(&rule) {
                        println!(
                            "{rule}: {} consecutive faults ({} total)",
                            h.consecutive_faults, h.total_faults
                        );
                    }
                }
            }
            [":quarantine", "clear", rule] => match self.gis.clear_quarantine(rule) {
                Ok(()) => println!("quarantine lifted for {rule}"),
                Err(e) => println!("error: {e}"),
            },
            [":policy"] => println!("{:?}", self.gis.fault_policy()),
            [":policy", "open"] => {
                self.gis.set_fault_policy(activegis::FaultPolicy::FailOpen);
                println!("fault policy: FailOpen (faulty rules are skipped)");
            }
            [":policy", "closed"] => {
                self.gis
                    .set_fault_policy(activegis::FaultPolicy::FailClosed);
                println!("fault policy: FailClosed (faults abort the dispatch)");
            }
            ["screen"] => match self.session {
                Some(sid) => {
                    print!("{}", gisui::session_screen(self.gis.dispatcher(), sid))
                }
                None => println!("error: no session"),
            },
            ["windows"] => {
                for w in self.gis.dispatcher().open_windows() {
                    println!(
                        "[win {}] {} ({}) schema={} class={}",
                        w.id.0,
                        w.built.title,
                        w.built.kind,
                        w.schema,
                        w.class.as_deref().unwrap_or("-")
                    );
                }
            }
            other => println!("unknown command {other:?}; try `help`"),
        }
        true
    }
}

fn main() {
    println!("activegis repl — phone_net demo database loaded; `help` for commands");
    let gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).expect("demo builds");
    let mut repl = Repl {
        gis,
        session: None,
        last_schema: "phone_net".into(),
    };
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("activegis> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !repl.handle(line.trim()) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}
