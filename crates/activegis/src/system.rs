//! The integrated system facade.
//!
//! [`ActiveGis`] wires the five subsystems of the paper's Fig. 1 together
//! — geographic database, active mechanism, interface-objects library,
//! generic interface builder, and GIS interface layer — behind one small
//! API that the examples and downstream applications use.

use std::time::Duration;

use active::SessionContext;
use builder::InterfaceBuilder;
use geodb::db::Database;
use geodb::gen::TelecomConfig;
use geodb::instance::Oid;
use geodb::repl::{PromotionReport, ReadRouter, ReplicaStatus, ReplicaStore};
use geodb::wal::{RecoveryReport, WalConfig, WalStatus};
use geodb::Epoch;
use gisui::{Dispatcher, InteractionMode, Result, SessionId, UiError, WindowId};
use uilib::{Library, Prop};

use crate::server::ReadRouting;

/// The assembled Active-GIS system.
pub struct ActiveGis {
    dispatcher: Dispatcher,
    /// Attached followers of the dispatcher's store, in attach order.
    replicas: Vec<ReplicaStore>,
}

impl ActiveGis {
    /// Assemble the system over an existing database, using the paper's
    /// widget library (kernel + `slider`, `poleWidget`, `composed_text`,
    /// `text`).
    pub fn open(db: Database) -> ActiveGis {
        ActiveGis {
            dispatcher: Dispatcher::new(db, InterfaceBuilder::with_paper_library()),
            replicas: Vec::new(),
        }
    }

    /// Assemble with a caller-provided widget library.
    pub fn with_library(db: Database, library: Library) -> ActiveGis {
        ActiveGis {
            dispatcher: Dispatcher::new(db, InterfaceBuilder::new(library)),
            replicas: Vec::new(),
        }
    }

    /// The paper's running example: a synthetic telephone-network
    /// database (`phone_net`) ready to browse.
    pub fn phone_net_demo(cfg: &TelecomConfig) -> Result<ActiveGis> {
        Ok(ActiveGis {
            dispatcher: gisui::paper_dispatcher(cfg)?,
            replicas: Vec::new(),
        })
    }

    /// Assemble the system over a *durable* store rooted at
    /// `config.dir`: if the directory holds a checkpoint, crash-recover
    /// from it (the seed database is ignored — disk wins) and return the
    /// [`RecoveryReport`]; otherwise checkpoint the seed and start a
    /// fresh write-ahead log. Every subsequent committed write is
    /// fsynced before it is acknowledged (see `docs/storage.md`).
    pub fn open_durable(
        seed: Database,
        config: WalConfig,
    ) -> Result<(ActiveGis, Option<RecoveryReport>)> {
        let (store, report) = geodb::wal::open(seed, config).map_err(UiError::Db)?;
        let gis = ActiveGis {
            dispatcher: Dispatcher::with_store(
                store,
                InterfaceBuilder::with_paper_library(),
                active::Engine::new(),
            ),
            replicas: Vec::new(),
        };
        Ok((gis, report))
    }

    // -- customization ----------------------------------------------------

    /// Install (or replace) a named customization program. Returns the
    /// number of active rules generated.
    pub fn customize(&mut self, program: &str, name: &str) -> Result<usize> {
        self.dispatcher.install_program(program, name)
    }

    /// Validate, persist into the geographic database, and install a
    /// customization program ("customization rules stored in the
    /// database").
    pub fn customize_stored(&mut self, program: &str, name: &str) -> Result<usize> {
        self.dispatcher.store_program(program, name)
    }

    /// Install every program stored in the database (the boot path after
    /// reopening a snapshot); returns `(programs, rules, skipped)` where
    /// each skipped entry is `(program name, reason)`.
    pub fn load_stored_customizations(&mut self) -> Result<gisui::StoredProgramReport> {
        self.dispatcher.load_stored_programs()
    }

    /// Add a specialized widget class to the interface-objects library so
    /// customization programs can reference it.
    pub fn define_widget(
        &mut self,
        name: &str,
        parent: &str,
        defaults: Vec<(String, Prop)>,
    ) -> Result<()> {
        self.dispatcher
            .builder_library_mut()
            .specialize(name, parent, defaults)
            .map_err(|e| UiError::Build(e.into()))
    }

    // -- sessions and browsing ----------------------------------------------

    /// Start a session for `<user, category, application>`.
    pub fn login(&mut self, user: &str, category: &str, application: &str) -> SessionId {
        self.dispatcher
            .open_session(SessionContext::new(user, category, application))
    }

    /// Start a session with a full context, including extension
    /// dimensions such as `scale` or `time`.
    pub fn login_with(&mut self, context: SessionContext) -> SessionId {
        self.dispatcher.open_session(context)
    }

    /// Switch a session's interaction mode.
    pub fn set_mode(&mut self, sid: SessionId, mode: InteractionMode) -> Result<()> {
        self.dispatcher.set_mode(sid, mode)
    }

    /// Open the Schema window (plus any auto-opened class windows).
    pub fn browse_schema(&mut self, sid: SessionId, schema: &str) -> Result<Vec<WindowId>> {
        self.dispatcher.open_schema(sid, schema)
    }

    /// Open a Class-set window.
    pub fn browse_class(&mut self, sid: SessionId, schema: &str, class: &str) -> Result<WindowId> {
        self.dispatcher.open_class(sid, schema, class, None)
    }

    /// Open an Instance window.
    pub fn inspect(&mut self, sid: SessionId, oid: Oid) -> Result<WindowId> {
        self.dispatcher.open_instance(sid, oid, None)
    }

    /// ASCII rendering of a window.
    pub fn render(&self, window: WindowId) -> Result<String> {
        self.dispatcher.render(window)
    }

    /// SVG rendering of a window.
    pub fn render_svg(&self, window: WindowId) -> Result<String> {
        Ok(self
            .dispatcher
            .window(window)
            .ok_or(UiError::UnknownWindow(window))?
            .built
            .to_svg())
    }

    /// The rule-firing explanation log (rendered lines).
    pub fn explanation(&self) -> &[String] {
        self.dispatcher.explanation()
    }

    // -- observability ------------------------------------------------------

    /// Point-in-time snapshot of the process-wide metrics registry:
    /// counters, latency/size histograms (p50/p95/p99/max) and span
    /// hierarchy across `engine`, `geodb`, `builder`, `render` and
    /// `dispatcher`. Export with [`obs::MetricsSnapshot::to_json`] or
    /// [`obs::MetricsSnapshot::to_prometheus`].
    pub fn metrics(&self) -> obs::MetricsSnapshot {
        obs::snapshot()
    }

    /// Turn metric collection on or off process-wide. When off every
    /// instrumentation hook collapses to one atomic load.
    pub fn set_metrics_enabled(on: bool) {
        obs::set_enabled(on);
    }

    /// Arm request-trace sampling process-wide: record 1 in `n`
    /// requests (`1` = every request, `0` = off). Requests that fault
    /// or degrade are always retained. Completed trace trees land in
    /// bounded per-shard rings; see [`Self::traces`].
    pub fn set_trace_sampling(n: u64) {
        obs::set_trace_sampling(n);
    }

    /// The most recent `n` completed request traces, newest first.
    pub fn traces(n: usize) -> Vec<obs::TraceTree> {
        obs::recent_traces(n)
    }

    /// Look up one completed request trace by id (the id stamped into
    /// `TraceRecord::trace_id` and Prometheus exemplars).
    pub fn trace(id: u64) -> Option<obs::TraceTree> {
        obs::find_trace(id)
    }

    /// JSON export of the most recent `n` completed traces.
    pub fn traces_json(n: usize) -> String {
        obs::traces_json(n)
    }

    /// Tick the global SLO engine against the live registry and report
    /// burn rates. `None` until [`obs::slo::install`] (or
    /// `install_default`) has run.
    pub fn slo_report() -> Option<obs::slo::SloReport> {
        obs::slo::tick_and_report()
    }

    /// Handle to the shared versioned store behind the dispatcher: read
    /// through `snapshot()`/`reader()`, write through `write()`; commits
    /// publish a new epoch (see `docs/storage.md`).
    pub fn db_store(&mut self) -> geodb::store::DbStore {
        self.dispatcher.store()
    }

    /// The database epoch the dispatcher last served.
    pub fn db_epoch(&self) -> Epoch {
        self.dispatcher.db_epoch()
    }

    /// Live reader pins on the store (the dispatcher itself holds one).
    pub fn pinned_snapshots(&mut self) -> usize {
        self.dispatcher.store().pin_count()
    }

    /// The oldest epoch any reader still pins (`None` when unpinned).
    pub fn pin_watermark(&mut self) -> Option<Epoch> {
        self.dispatcher.store().pin_watermark()
    }

    /// Snapshot versions currently retained for pinned readers (the
    /// `db.epochs_retained` gauge).
    pub fn epochs_retained(&mut self) -> usize {
        self.dispatcher.store().epochs_retained()
    }

    // -- durability ---------------------------------------------------------

    /// Is the store writing through a WAL?
    pub fn wal_attached(&mut self) -> bool {
        self.dispatcher.store().wal_attached()
    }

    /// WAL counters plus the durable epoch, or `None` on a volatile
    /// store.
    pub fn wal_status(&mut self) -> Option<(WalStatus, Epoch)> {
        self.dispatcher.store().wal_status()
    }

    /// Checkpoint the durable frontier (snapshot + meta documents,
    /// truncated log); returns the checkpoint epoch.
    pub fn checkpoint(&mut self) -> Result<Epoch> {
        self.dispatcher.store().checkpoint().map_err(UiError::Db)
    }

    // -- replication --------------------------------------------------------

    /// Attach a new follower of the system's store: full-sync it to the
    /// current epoch and keep it under the given id. Returns its status.
    /// See `docs/replication.md`.
    pub fn attach_replica(&mut self, id: &str) -> Result<ReplicaStatus> {
        if self.replicas.iter().any(|r| r.id() == id) {
            return Err(UiError::Db(geodb::GeoDbError::Storage(format!(
                "replica {id:?} already attached"
            ))));
        }
        let replica = ReplicaStore::attach(&self.dispatcher.store(), id).map_err(UiError::Db)?;
        let status = replica.status();
        self.replicas.push(replica);
        Ok(status)
    }

    /// Health of every attached replica, in attach order.
    pub fn replication_status(&self) -> Vec<ReplicaStatus> {
        self.replicas.iter().map(ReplicaStore::status).collect()
    }

    /// Drive every attached replica to the primary's published epoch.
    pub fn sync_replicas(&mut self) -> Result<()> {
        for r in &self.replicas {
            r.sync_to_latest().map_err(UiError::Db)?;
        }
        Ok(())
    }

    /// Route this system's *reads* under `policy`, served from the first
    /// attached replica (the serving layer shards across many; the
    /// facade drives one dispatcher). Replica policies error when no
    /// replica is attached. Writes always go to the primary.
    pub fn set_read_policy(&mut self, policy: ReadRouting) -> Result<()> {
        let store = self.dispatcher.store();
        let router = match policy {
            ReadRouting::Primary => ReadRouter::primary_only(store.reader()),
            ReadRouting::Replica | ReadRouting::BoundedStaleness(_) => {
                let replica = self.replicas.first().ok_or_else(|| {
                    UiError::Db(geodb::GeoDbError::Storage("no replica attached".into()))
                })?;
                let bound = match policy {
                    ReadRouting::BoundedStaleness(n) => Some(n),
                    _ => None,
                };
                ReadRouter::with_replica(store.reader(), replica.reader(), bound)
            }
        };
        self.dispatcher.route_reads(router);
        Ok(())
    }

    /// Fail over to an attached replica: replay the WAL tail in
    /// `config.dir` past its applied epoch and rebuild the system over
    /// the promoted store. Every durable commit of the old primary is
    /// served afterwards (read-your-writes); sessions, windows and
    /// in-memory rule installs do not survive the failover — reload
    /// stored customizations with
    /// [`ActiveGis::load_stored_customizations`].
    pub fn promote_replica(&mut self, id: &str, config: WalConfig) -> Result<PromotionReport> {
        let idx = self
            .replicas
            .iter()
            .position(|r| r.id() == id)
            .ok_or_else(|| UiError::Db(geodb::GeoDbError::Storage(format!("no replica {id:?}"))))?;
        let replica = self.replicas.remove(idx);
        let (store, report) = replica.promote(config).map_err(UiError::Db)?;
        // The remaining replicas followed the old primary; drop them
        // (their pins die with the old store).
        self.replicas.clear();
        self.dispatcher = Dispatcher::with_store(
            store,
            InterfaceBuilder::with_paper_library(),
            active::Engine::new(),
        );
        Ok(report)
    }

    /// Tune the group-commit window of a durable store.
    pub fn set_group_window(&mut self, window: Duration) {
        self.dispatcher.store().set_group_window(window);
    }

    /// How the rule engine finds matching rules per event: the default
    /// discrimination index + winner cache, or the linear-scan oracle.
    pub fn dispatch_strategy(&mut self) -> active::DispatchStrategy {
        self.dispatcher.engine().strategy()
    }

    /// Switch dispatch strategy (e.g. to `Linear` when differential
    /// testing against the indexed path).
    pub fn set_dispatch_strategy(&mut self, strategy: active::DispatchStrategy) {
        self.dispatcher.engine().set_strategy(strategy);
    }

    /// Winner-cache hit/miss/invalidation counters and current size
    /// (see `docs/dispatch.md`).
    pub fn dispatch_cache_stats(&mut self) -> active::CacheStats {
        self.dispatcher.engine().cache_stats()
    }

    /// Compile the current rule snapshot into the flat dispatch tables
    /// eagerly (idempotent per rule generation) and return the compile
    /// stats: table/candidate counts, interned-context counts and the
    /// compile latency. Used by the compiled dispatch tier; see
    /// `docs/dispatch.md`.
    pub fn precompile_rules(&mut self) -> active::CompileStats {
        self.dispatcher.engine().precompile()
    }

    /// Stats of the most recent rule compile, or `None` while nothing
    /// has compiled the current rule base yet.
    pub fn compile_stats(&mut self) -> Option<active::CompileStats> {
        self.dispatcher.engine().compiled_stats()
    }

    /// The structured explanation log: the most recent traces with
    /// cascade depths and matched/fired/shadowed rule names intact.
    pub fn explanation_log(&self) -> &gisui::ExplanationLog {
        self.dispatcher.explanation_log()
    }

    /// JSON export of the retained structured traces.
    pub fn explanation_json(&self) -> String {
        self.dispatcher.explanation_json()
    }

    // -- robustness ---------------------------------------------------------

    /// How the rule engine reacts to a faulting rule: skip it and keep
    /// serving the interface (`FailOpen`, the default) or abort the
    /// dispatch (`FailClosed`). See `docs/robustness.md`.
    pub fn fault_policy(&mut self) -> active::FaultPolicy {
        self.dispatcher.engine().fault_policy()
    }

    /// Switch the engine's fault policy.
    pub fn set_fault_policy(&mut self, policy: active::FaultPolicy) {
        self.dispatcher.engine().set_fault_policy(policy);
    }

    /// Rules currently quarantined by the circuit breaker (too many
    /// consecutive faults); they no longer match events.
    pub fn quarantined_rules(&mut self) -> Vec<String> {
        self.dispatcher
            .engine()
            .quarantined()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// Per-rule fault health, if the rule exists.
    pub fn rule_health(&mut self, rule: &str) -> Option<active::RuleHealth> {
        self.dispatcher.engine().rule_health(rule)
    }

    /// Lift a rule's quarantine, giving it a clean slate.
    pub fn clear_quarantine(&mut self, rule: &str) -> Result<()> {
        self.dispatcher
            .engine()
            .clear_quarantine(rule)
            .map_err(UiError::Active)
    }

    /// Total rule faults the engine has contained so far.
    pub fn rule_faults(&mut self) -> u64 {
        self.dispatcher.engine().rule_faults()
    }

    /// Current state of every registered failpoint (the deterministic
    /// fault-injection harness).
    pub fn failpoints(&self) -> Vec<faultsim::FailpointStats> {
        faultsim::stats()
    }

    /// Arm a named failpoint; see [`faultsim::FAILPOINTS`] for the
    /// registered names.
    pub fn arm_failpoint(
        &self,
        name: &str,
        trigger: faultsim::Trigger,
        action: faultsim::FaultAction,
    ) {
        faultsim::arm(name, trigger, action);
    }

    /// Disarm a named failpoint.
    pub fn disarm_failpoint(&self, name: &str) {
        faultsim::disarm(name);
    }

    /// Disarm every failpoint and clear hit statistics.
    pub fn reset_failpoints(&self) {
        faultsim::reset();
    }

    /// Tile a session's visible windows into one text screen (the way the
    /// paper's Figs. 4 and 7 show the three windows side by side).
    pub fn screen(&self, sid: SessionId) -> String {
        gisui::session_screen(&self.dispatcher, sid)
    }

    /// Full access to the underlying dispatcher (and through it the
    /// database and rule engine).
    pub fn dispatcher(&mut self) -> &mut Dispatcher {
        &mut self.dispatcher
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use custlang::FIG6_PROGRAM;

    #[test]
    fn end_to_end_facade_flow() {
        let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap();
        gis.customize(FIG6_PROGRAM, "fig6").unwrap();

        let sid = gis.login("juliano", "planner", "pole_manager");
        let windows = gis.browse_schema(sid, "phone_net").unwrap();
        assert_eq!(windows.len(), 2, "Null schema + auto-opened Pole window");
        let art = gis.render(windows[1]).unwrap();
        assert!(art.contains("Class: Pole"));
        assert!(gis.render_svg(windows[1]).unwrap().starts_with("<svg"));
        assert!(!gis.explanation().is_empty());
    }

    #[test]
    fn dispatch_strategy_and_cache_stats_are_exposed() {
        use active::DispatchStrategy;
        let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap();
        gis.customize(FIG6_PROGRAM, "fig6").unwrap();
        assert_eq!(gis.dispatch_strategy(), DispatchStrategy::Indexed);

        let sid = gis.login("juliano", "planner", "pole_manager");
        gis.browse_schema(sid, "phone_net").unwrap();
        let cold = gis.dispatch_cache_stats();
        gis.browse_schema(sid, "phone_net").unwrap();
        let warm = gis.dispatch_cache_stats();
        assert!(
            warm.hits > cold.hits,
            "repeat browse hits the cache: {warm:?}"
        );

        gis.set_dispatch_strategy(DispatchStrategy::Linear);
        assert_eq!(gis.dispatch_strategy(), DispatchStrategy::Linear);
    }

    #[test]
    fn define_widget_extends_the_library() {
        let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap();
        gis.define_widget("bigButton", "Button", vec![("label".into(), "GO".into())])
            .unwrap();
        // Now a program can reference it.
        let program = "for user u schema phone_net display as default \
                       class Pole display control as bigButton";
        assert!(gis.customize(program, "p").is_ok());
    }

    #[test]
    fn duplicate_widget_definition_errors() {
        let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap();
        let r = gis.define_widget("poleWidget", "Panel", vec![]);
        assert!(r.is_err());
    }
}
