//! # activegis — Active Customization of GIS User Interfaces
//!
//! A full reproduction of *Medeiros, Oliveira & Cilia, "Active
//! Customization of GIS User Interfaces"* (ICDE 1997) as a Rust library.
//!
//! The paper customizes a GIS user interface **inside the DBMS**: user
//! interactions become database events; an active (E-C-A) rule engine
//! intercepts them; rules keyed on the session context `<user, category,
//! application>` select a customization; and a generic interface builder
//! assembles the Schema / Class-set / Instance windows dynamically from a
//! library of interface objects stored in the database.
//!
//! ## Crate map
//!
//! | Crate | Paper component |
//! |---|---|
//! | [`geodb`] | the object-oriented geographic DBMS substrate |
//! | [`active`] | the active mechanism (Section 3.3) |
//! | [`uilib`] | the interface-objects library (Fig. 2, Section 3.2) |
//! | [`custlang`] | the customization language + compiler (Fig. 3, Section 3.4) |
//! | [`builder`] | the generic interface builder |
//! | [`gisui`] | the GIS interface layer: dispatcher, MVC, protocol (Section 3.5) |
//! | this crate | the integrated system ([`ActiveGis`]) |
//!
//! ## Quickstart
//!
//! ```
//! use activegis::{ActiveGis, TelecomConfig, FIG6_PROGRAM};
//!
//! // The paper's telephone-utility database.
//! let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap();
//! // Install the verbatim Fig. 6 customization program.
//! gis.customize(FIG6_PROGRAM, "fig6").unwrap();
//! // Juliano gets the customized interface of Fig. 7 …
//! let sid = gis.login("juliano", "planner", "pole_manager");
//! let windows = gis.browse_schema(sid, "phone_net").unwrap();
//! assert_eq!(windows.len(), 2); // hidden Schema window + Pole window
//! // … anyone else gets the generic interface of Fig. 4.
//! let other = gis.login("guest", "visitor", "browse");
//! let windows = gis.browse_schema(other, "phone_net").unwrap();
//! assert_eq!(windows.len(), 1);
//! ```

pub mod server;
pub mod system;

pub use server::{ReadRouting, ServerSession, SessionServer};
pub use system::ActiveGis;

// One-stop re-exports so applications can depend on `activegis` alone.
pub use active::{
    CacheStats, CompileStats, ContextPattern, DispatchStrategy, Engine, Event, EventPattern,
    FaultPolicy, FaultRecord, Rule, RuleBase, RuleGroup, RuleHealth, SelectionPolicy,
    SessionContext,
};
pub use builder::{BuiltWindow, Format, InterfaceBuilder, WindowKind};
pub use custlang::{
    analyze, compile, parse, AnalysisEnv, Customization, Program, SchemaMode, FIG6_PROGRAM,
};
pub use faultsim::{FailpointStats, FaultAction, Trigger, FAILPOINTS};
pub use geodb::db::{Database, IndexKind};
pub use geodb::gen::{phone_net_db, phone_net_schema, TelecomConfig, TelecomStats};
pub use geodb::{
    AttrType, ClassDef, CmpOp, DbEvent, DbEventKind, Epoch, Geometry, Instance, Oid, Point,
    Predicate, PromotionReport, RecoveryReport, Rect, ReplicaStatus, ReplicaStore, SchemaDef,
    Value, WalConfig, WalStatus,
};
pub use gisui::{
    Dispatcher, ExplanationLog, InteractionMode, Request, Response, SessionId, StoredProgramReport,
    TraceRecord, UiError, WindowId,
};
pub use obs::MetricsSnapshot;
pub use uilib::{Library, MapScene, MapShape, Prop, WidgetKind, WidgetTree};
