//! # faultsim — deterministic fault injection
//!
//! A dependency-free registry of named *failpoints*: places in the code
//! that ask, at run time, "should I fail here?". In production nothing
//! is armed and every check collapses to one relaxed atomic load. In
//! tests (and chaos drills) a failpoint can be armed to
//!
//! * return an injected error ([`FaultAction::Error`]),
//! * panic ([`FaultAction::Panic`]) — exercising the `catch_unwind`
//!   containment boundaries of the callers, or
//! * do either **with a seeded probability** ([`Trigger::Probability`])
//!   or on an exact hit number ([`Trigger::Nth`]) — deterministic, so a
//!   failing schedule replays bit-for-bit from its seed.
//!
//! The well-known failpoints of this workspace are listed in
//! [`FAILPOINTS`]; the registry itself accepts any name, so tests can
//! invent private ones.
//!
//! ```
//! use faultsim::{FaultAction, Trigger};
//!
//! let _guard = faultsim::scoped("engine.callback", Trigger::Always, FaultAction::Error);
//! assert!(faultsim::fire("engine.callback").is_err());
//! drop(_guard); // restores the previous (disarmed) state
//! assert!(faultsim::fire("engine.callback").is_ok());
//! ```
//!
//! The registry is process-global (like a metrics registry): tests that
//! arm failpoints must serialize against each other within one test
//! binary.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The failpoints wired into the workspace. The registry accepts any
/// name; these are the ones production code consults.
///
/// * `engine.callback` — before every native rule-callback execution;
///   a triggered fault is contained as a rule fault (see
///   `active::FaultPolicy`).
/// * `engine.cascade` — when the engine dequeues a *cascaded* (depth>0)
///   event; a triggered fault aborts or skips that event per policy.
/// * `builder.build` — at the start of every **customized** window
///   build (the generic default build never consults it, mirroring the
///   paper's claim that the default presentation is always available).
/// * `geodb.query` — at the start of `get_schema` / `get_class` /
///   `get_value` / `select`; a triggered error surfaces as a storage
///   error.
/// * `wal.append` — on every WAL record append, *before* the frame is
///   fully written; a triggered fault leaves a torn half-frame on disk
///   (the crash model for a write cut mid-record) and poisons the store.
/// * `wal.fsync` — on the group-commit fsync; a triggered fault drops
///   the unsynced tail (bytes that never reached disk) and poisons the
///   store.
/// * `db.publish` — between the WAL fsync and the epoch publish; a
///   triggered fault models a crash where commits are durable but never
///   became visible — recovery must replay them.
/// * `repl.ship` — before a replication frame is built on the primary;
///   a triggered fault models a broken link: the replica's sync errors
///   and its applied state is untouched.
/// * `repl.apply` — before a decoded frame mutates replica state; a
///   triggered fault forces the replica into a full resync on its next
///   round (a partial apply cannot be trusted as a delta base).
/// * `repl.promote` — at the start of replica promotion, before the WAL
///   tail is read; a triggered fault aborts failover with the replica
///   still serving its applied epoch.
pub const FAILPOINTS: [&str; 10] = [
    "engine.callback",
    "engine.cascade",
    "builder.build",
    "geodb.query",
    "wal.append",
    "wal.fsync",
    "db.publish",
    "repl.ship",
    "repl.apply",
    "repl.promote",
];

/// What a triggered failpoint does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// `fire` returns `Err(Fault)`.
    Error,
    /// `fire` panics (message: `injected panic at <failpoint>`).
    Panic,
}

/// When an armed failpoint triggers.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Every hit triggers.
    Always,
    /// Each hit triggers with probability `p`, drawn from a
    /// deterministic generator seeded with `seed` — the whole fault
    /// schedule replays identically for the same seed and hit sequence.
    Probability { p: f64, seed: u64 },
    /// Only the `n`-th hit (1-based) after arming triggers.
    Nth(u64),
}

/// The injected error returned by a triggered failpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Name of the failpoint that fired.
    pub failpoint: String,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at {}", self.failpoint)
    }
}

impl std::error::Error for Fault {}

/// Point-in-time counters for one failpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct FailpointStats {
    pub name: String,
    /// Human-readable description of the armed mode, `None` if disarmed.
    pub armed: Option<String>,
    /// Evaluations while armed (disarmed hits are not counted — the
    /// fast path never reaches the registry).
    pub hits: u64,
    /// Hits that actually triggered the fault.
    pub triggered: u64,
}

struct Arming {
    trigger: Trigger,
    action: FaultAction,
    /// splitmix64 state for `Trigger::Probability`.
    rng: u64,
    hits: u64,
    triggered: u64,
}

struct Registry {
    /// Number of currently armed failpoints — the whole cost of `fire`
    /// when zero.
    armed: AtomicUsize,
    points: Mutex<BTreeMap<String, Arming>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        armed: AtomicUsize::new(0),
        points: Mutex::new(BTreeMap::new()),
    })
}

/// splitmix64 step — tiny, seedable, good enough for fault schedules.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Arming {
    fn describe(&self) -> String {
        let action = match self.action {
            FaultAction::Error => "error",
            FaultAction::Panic => "panic",
        };
        match &self.trigger {
            Trigger::Always => action.to_string(),
            Trigger::Probability { p, seed } => format!("{action} p={p} seed={seed}"),
            Trigger::Nth(n) => format!("{action} on hit {n}"),
        }
    }

    /// Evaluate one hit; `Some(action)` when the fault triggers.
    fn evaluate(&mut self) -> Option<FaultAction> {
        self.hits += 1;
        let fire = match &self.trigger {
            Trigger::Always => true,
            Trigger::Probability { p, .. } => {
                let draw = splitmix64(&mut self.rng) as f64 / u64::MAX as f64;
                draw < *p
            }
            Trigger::Nth(n) => self.hits == *n,
        };
        if fire {
            self.triggered += 1;
            Some(self.action)
        } else {
            None
        }
    }
}

/// Arm a failpoint. Re-arming replaces the previous mode and resets the
/// failpoint's hit counters and probability stream.
pub fn arm(name: &str, trigger: Trigger, action: FaultAction) {
    let r = registry();
    let seed = match &trigger {
        Trigger::Probability { seed, .. } => *seed,
        _ => 0,
    };
    let mut points = r.points.lock().expect("faultsim registry poisoned");
    let prev = points.insert(
        name.to_string(),
        Arming {
            trigger,
            action,
            rng: seed,
            hits: 0,
            triggered: 0,
        },
    );
    if prev.is_none() {
        r.armed.fetch_add(1, Ordering::SeqCst);
    }
}

/// Disarm a failpoint (no-op if it was not armed).
pub fn disarm(name: &str) {
    let r = registry();
    let mut points = r.points.lock().expect("faultsim registry poisoned");
    if points.remove(name).is_some() {
        r.armed.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Disarm every failpoint and drop all counters.
pub fn reset() {
    let r = registry();
    let mut points = r.points.lock().expect("faultsim registry poisoned");
    let n = points.len();
    points.clear();
    r.armed.fetch_sub(n, Ordering::SeqCst);
}

/// Is anything armed at all? One relaxed atomic load.
#[inline]
pub fn any_armed() -> bool {
    registry().armed.load(Ordering::Relaxed) != 0
}

/// Evaluate a failpoint. Disarmed (the production case): one atomic
/// load, `Ok(())`. Armed: may return the injected [`Fault`] or panic,
/// per the armed [`FaultAction`].
#[inline]
pub fn fire(name: &str) -> Result<(), Fault> {
    if !any_armed() {
        return Ok(());
    }
    fire_slow(name)
}

#[cold]
fn fire_slow(name: &str) -> Result<(), Fault> {
    let action = {
        let mut points = registry()
            .points
            .lock()
            .expect("faultsim registry poisoned");
        match points.get_mut(name) {
            Some(arming) => arming.evaluate(),
            None => None,
        }
    };
    match action {
        None => Ok(()),
        Some(FaultAction::Error) => Err(Fault {
            failpoint: name.to_string(),
        }),
        Some(FaultAction::Panic) => panic!("injected panic at {name}"),
    }
}

/// Status of every well-known failpoint ([`FAILPOINTS`]) plus any other
/// currently armed one, in name order. Disarmed entries report zero
/// counters: disarming drops a failpoint's counters with its arming.
pub fn stats() -> Vec<FailpointStats> {
    let points = registry()
        .points
        .lock()
        .expect("faultsim registry poisoned");
    let mut names: Vec<&str> = FAILPOINTS.to_vec();
    names.extend(points.keys().map(String::as_str));
    names.sort_unstable();
    names.dedup();
    names
        .into_iter()
        .map(|name| match points.get(name) {
            Some(a) => FailpointStats {
                name: name.to_string(),
                armed: Some(a.describe()),
                hits: a.hits,
                triggered: a.triggered,
            },
            None => FailpointStats {
                name: name.to_string(),
                armed: None,
                hits: 0,
                triggered: 0,
            },
        })
        .collect()
}

/// RAII guard from [`scoped`]: disarms (restoring nothing — scoped
/// arming replaces, dropping restores the *disarmed* state or the
/// previous arming) when dropped.
pub struct ScopedFault {
    name: String,
    previous: Option<(Trigger, FaultAction)>,
}

/// Arm a failpoint for the lifetime of the returned guard. Dropping the
/// guard restores the failpoint's previous arming (or disarms it).
#[must_use = "the failpoint disarms as soon as the guard drops"]
pub fn scoped(name: &str, trigger: Trigger, action: FaultAction) -> ScopedFault {
    let previous = {
        let points = registry()
            .points
            .lock()
            .expect("faultsim registry poisoned");
        points.get(name).map(|a| (a.trigger.clone(), a.action))
    };
    arm(name, trigger, action);
    ScopedFault {
        name: name.to_string(),
        previous,
    }
}

impl Drop for ScopedFault {
    fn drop(&mut self) {
        match self.previous.take() {
            Some((trigger, action)) => arm(&self.name, trigger, action),
            None => disarm(&self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; these tests serialize on one lock
    /// and reset the registry as they go.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        g
    }

    #[test]
    fn disarmed_failpoints_are_free_and_ok() {
        let _g = locked();
        assert!(!any_armed());
        assert!(fire("engine.callback").is_ok());
        // The well-known failpoints are always listed, all disarmed.
        let s = stats();
        assert_eq!(s.len(), FAILPOINTS.len());
        assert!(s.iter().all(|p| p.armed.is_none() && p.hits == 0));
    }

    #[test]
    fn always_error_fires_every_hit() {
        let _g = locked();
        arm("t.point", Trigger::Always, FaultAction::Error);
        for _ in 0..3 {
            let err = fire("t.point").unwrap_err();
            assert_eq!(err.failpoint, "t.point");
            assert!(err.to_string().contains("t.point"));
        }
        let all = stats();
        let s = all.iter().find(|s| s.name == "t.point").unwrap();
        assert_eq!((s.hits, s.triggered), (3, 3));
        disarm("t.point");
        assert!(fire("t.point").is_ok());
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _g = locked();
        arm("t.nth", Trigger::Nth(3), FaultAction::Error);
        let results: Vec<bool> = (0..5).map(|_| fire("t.nth").is_err()).collect();
        assert_eq!(results, vec![false, false, true, false, false]);
    }

    #[test]
    fn probability_stream_is_deterministic_per_seed() {
        let _g = locked();
        let run = |seed: u64| -> Vec<bool> {
            arm(
                "t.prob",
                Trigger::Probability { p: 0.5, seed },
                FaultAction::Error,
            );
            (0..64).map(|_| fire("t.prob").is_err()).collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
        reset();
        assert!(!any_armed());
    }

    #[test]
    fn panic_action_panics_with_failpoint_name() {
        let _g = locked();
        arm("t.panic", Trigger::Always, FaultAction::Panic);
        let caught = std::panic::catch_unwind(|| {
            let _ = fire("t.panic");
        });
        disarm("t.panic");
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.contains("injected panic at t.panic"));
    }

    #[test]
    fn scoped_guard_restores_previous_arming() {
        let _g = locked();
        arm("t.scope", Trigger::Nth(9), FaultAction::Error);
        {
            let _s = scoped("t.scope", Trigger::Always, FaultAction::Error);
            assert!(fire("t.scope").is_err());
        }
        // Back to the Nth(9) arming (counters reset by re-arming).
        assert!(fire("t.scope").is_ok());
        {
            let _s = scoped("t.fresh", Trigger::Always, FaultAction::Error);
            assert!(fire("t.fresh").is_err());
        }
        // t.fresh had no previous arming: fully disarmed again.
        assert!(fire("t.fresh").is_ok());
        assert!(stats().iter().all(|s| s.name != "t.fresh"));
    }
}
