//! Pretty-printer: renders a [`Program`] back to canonical source text.
//!
//! Guarantees `parse(pretty(p)) == p`, which the property tests rely on.

use crate::ast::*;

fn write_attr(a: &AttrClause, out: &mut String) {
    out.push_str(&format!("      display attribute {}", a.attribute));
    match &a.display {
        AttrDisplay::Default => {}
        AttrDisplay::Null => out.push_str(" as Null"),
        AttrDisplay::Widget(w) => out.push_str(&format!(" as {w}")),
    }
    out.push('\n');
    if !a.from.is_empty() {
        let sources: Vec<String> = a.from.iter().map(|s| s.to_string()).collect();
        out.push_str(&format!("        from {}\n", sources.join(" ")));
    }
    if let Some(cb) = &a.using {
        out.push_str(&format!("        using {cb}()\n"));
    }
}

/// Render a program as parseable source.
pub fn pretty(program: &Program) -> String {
    let mut out = String::new();
    for d in &program.directives {
        out.push_str("For");
        if let Some(u) = &d.context.user {
            out.push_str(&format!(" user {u}"));
        }
        if let Some(c) = &d.context.category {
            out.push_str(&format!(" category {c}"));
        }
        if let Some(a) = &d.context.application {
            out.push_str(&format!(" application {a}"));
        }
        for (k, v) in &d.context.extras {
            out.push_str(&format!(" {k} {v}"));
        }
        out.push('\n');
        out.push_str(&format!(
            "  schema {} display as {}\n",
            d.schema.name, d.schema.mode
        ));
        for c in &d.classes {
            out.push_str(&format!("  class {} display\n", c.name));
            if let Some(ctl) = &c.control {
                out.push_str(&format!("    control as {ctl}\n"));
            }
            if let Some(p) = &c.presentation {
                out.push_str(&format!("    presentation as {p}\n"));
            }
            if !c.instances.is_empty() {
                out.push_str("    instances\n");
                for a in &c.instances {
                    write_attr(a, &mut out);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, FIG6_PROGRAM};

    #[test]
    fn fig6_round_trips() {
        let prog = parse(FIG6_PROGRAM).unwrap();
        let printed = pretty(&prog);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(prog, reparsed);
    }

    #[test]
    fn callback_parens_are_emitted() {
        let prog = parse(
            "for user u schema s display as default class C display \
             instances display attribute a using cb.notify",
        )
        .unwrap();
        let printed = pretty(&prog);
        assert!(printed.contains("using cb.notify()"));
        assert_eq!(parse(&printed).unwrap(), prog);
    }

    #[test]
    fn empty_program_prints_empty() {
        assert_eq!(pretty(&Program::default()), "");
    }
}
