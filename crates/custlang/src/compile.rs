//! Compiler from customization directives to active-database rules.
//!
//! "A given customization directive can thus be mapped directly into
//! customization database rules, for events Get_Schema, Get_Class,
//! Get_Instance to window customization (for, respectively, Schema,
//! Class set and Instance interaction windows)." The paper lists this
//! compiler as work in progress; here it is complete.

use active::{ContextPattern, EventPattern, Rule};
use geodb::query::DbEventKind;
use serde::{Deserialize, Serialize};

use crate::ast::*;

/// The customization payload carried by compiled rules — what the paper
/// writes as `Apply Customization CTₙ … involving interface library
/// objects IO₁…IOₖ`. Interpreted by the generic interface builder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Customization {
    /// Customize the Schema window (rule R1 in the example): display mode
    /// plus the classes the directive goes on to customize — with mode
    /// `Null` the dispatcher opens those classes directly.
    SchemaWindow {
        schema: String,
        mode: SchemaMode,
        classes: Vec<String>,
    },
    /// Customize a Class-set window (rule R2): control widget +
    /// presentation format.
    ClassWindow {
        schema: String,
        class: String,
        control: Option<String>,
        presentation: Option<String>,
    },
    /// Customize an Instance window (rule R3): per-attribute displays.
    InstanceWindow {
        schema: String,
        class: String,
        attrs: Vec<AttrClause>,
    },
}

impl Customization {
    /// The window type this customization applies to (for traces).
    pub fn window_kind(&self) -> &'static str {
        match self {
            Customization::SchemaWindow { .. } => "Schema",
            Customization::ClassWindow { .. } => "Class_set",
            Customization::InstanceWindow { .. } => "Instance",
        }
    }
}

fn context_pattern(c: &ContextClause) -> ContextPattern {
    let mut p = ContextPattern::any();
    if let Some(u) = &c.user {
        p = p.user(u.clone());
    }
    if let Some(cat) = &c.category {
        p = p.category(cat.clone());
    }
    if let Some(a) = &c.application {
        p = p.application(a.clone());
    }
    for (k, v) in &c.extras {
        p = p.extra(k.clone(), v.clone());
    }
    p
}

/// Compile a program into customization rules.
///
/// `prefix` namespaces the generated rule names so a recompilation can
/// atomically replace them (`engine.remove_rules_with_prefix`). One
/// directive yields `1 + classes + classes-with-instances` rules.
pub fn compile(program: &Program, prefix: &str) -> Vec<Rule<Customization>> {
    let mut rules = Vec::new();
    for (di, d) in program.directives.iter().enumerate() {
        let ctx = context_pattern(&d.context);
        let slug = d.context.slug();

        rules.push(Rule::customization(
            format!("{prefix}/{di}/{slug}/schema"),
            EventPattern::db_on_schema(DbEventKind::GetSchema, d.schema.name.clone()),
            ctx.clone(),
            Customization::SchemaWindow {
                schema: d.schema.name.clone(),
                mode: d.schema.mode,
                classes: d.classes.iter().map(|c| c.name.clone()).collect(),
            },
        ));

        for c in &d.classes {
            rules.push(Rule::customization(
                format!("{prefix}/{di}/{slug}/class.{}", c.name),
                EventPattern::db_on_class(
                    DbEventKind::GetClass,
                    d.schema.name.clone(),
                    c.name.clone(),
                ),
                ctx.clone(),
                Customization::ClassWindow {
                    schema: d.schema.name.clone(),
                    class: c.name.clone(),
                    control: c.control.clone(),
                    presentation: c.presentation.clone(),
                },
            ));
            if !c.instances.is_empty() {
                rules.push(Rule::customization(
                    format!("{prefix}/{di}/{slug}/inst.{}", c.name),
                    EventPattern::db_on_class(
                        DbEventKind::GetValue,
                        d.schema.name.clone(),
                        c.name.clone(),
                    ),
                    ctx.clone(),
                    Customization::InstanceWindow {
                        schema: d.schema.name.clone(),
                        class: c.name.clone(),
                        attrs: c.instances.clone(),
                    },
                ));
            }
        }
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, FIG6_PROGRAM};
    use active::{Engine, Event, SessionContext};
    use geodb::query::DbEvent;

    #[test]
    fn fig6_compiles_to_three_rules() {
        let prog = parse(FIG6_PROGRAM).unwrap();
        let rules = compile(&prog, "fig6");
        // R1 (schema), R2 (class), R3 (instances) — the paper shows R1/R2
        // and describes the third level for Get_Value.
        assert_eq!(rules.len(), 3);
        let names: Vec<&str> = rules.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "fig6/0/juliano:*:pole_manager/schema",
                "fig6/0/juliano:*:pole_manager/class.Pole",
                "fig6/0/juliano:*:pole_manager/inst.Pole",
            ]
        );
        assert!(matches!(
            *rules[0].action,
            active::Action::Customize(Customization::SchemaWindow {
                mode: SchemaMode::Null,
                ..
            })
        ));
    }

    #[test]
    fn compiled_rules_fire_like_the_papers_r1_r2() {
        let prog = parse(FIG6_PROGRAM).unwrap();
        let mut engine: Engine<Customization> = Engine::new();
        engine.add_rules(compile(&prog, "fig6")).unwrap();

        let juliano = SessionContext::new("juliano", "planner", "pole_manager");

        // R1: Get_Schema under the right context.
        let out = engine
            .dispatch(
                Event::Db(DbEvent::GetSchema {
                    schema: "phone_net".into(),
                }),
                &juliano,
            )
            .unwrap();
        match out.customization().unwrap() {
            Customization::SchemaWindow { mode, classes, .. } => {
                assert_eq!(*mode, SchemaMode::Null);
                assert_eq!(classes, &vec!["Pole".to_string()]);
            }
            other => panic!("wrong payload {other:?}"),
        }

        // R2: Get_Class(Pole).
        let out = engine
            .dispatch(
                Event::Db(DbEvent::GetClass {
                    schema: "phone_net".into(),
                    class: "Pole".into(),
                }),
                &juliano,
            )
            .unwrap();
        match out.customization().unwrap() {
            Customization::ClassWindow {
                control,
                presentation,
                ..
            } => {
                assert_eq!(control.as_deref(), Some("poleWidget"));
                assert_eq!(presentation.as_deref(), Some("pointFormat"));
            }
            other => panic!("wrong payload {other:?}"),
        }

        // A different user gets no customization ("no customization exists
        // for that context … the Interface Builder uses generic code").
        let other = SessionContext::new("claudia", "admin", "net_inventory");
        let out = engine
            .dispatch(
                Event::Db(DbEvent::GetSchema {
                    schema: "phone_net".into(),
                }),
                &other,
            )
            .unwrap();
        assert!(out.customization().is_none());
    }

    #[test]
    fn classes_without_instances_skip_the_instance_rule() {
        let prog = parse(
            "for user u schema s display as default class A display control as Panel \
             class B display instances display attribute x",
        )
        .unwrap();
        let rules = compile(&prog, "p");
        // schema + class.A + class.B + inst.B
        assert_eq!(rules.len(), 4);
        assert!(rules.iter().any(|r| r.name.ends_with("inst.B")));
        assert!(!rules.iter().any(|r| r.name.ends_with("inst.A")));
    }

    #[test]
    fn multiple_directives_namespace_by_index() {
        let prog = parse(
            "for user a schema s display as default class C display \
             for user b schema s display as default class C display",
        )
        .unwrap();
        let rules = compile(&prog, "p");
        assert_eq!(rules.len(), 4);
        let mut names: Vec<&str> = rules.iter().map(|r| r.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 4, "rule names must be unique");
    }

    #[test]
    fn generic_directive_compiles_to_generic_context() {
        let prog = parse("for schema s display as hierarchy class C display").unwrap();
        let rules = compile(&prog, "p");
        assert_eq!(rules[0].context, ContextPattern::any());
        assert_eq!(rules[0].context.specificity(), 0);
    }

    #[test]
    fn recompilation_replaces_rule_family() {
        let mut engine: Engine<Customization> = Engine::new();
        let v1 = parse("for user u schema s display as default class C display").unwrap();
        engine.add_rules(compile(&v1, "prog")).unwrap();
        assert_eq!(engine.len(), 2);

        let v2 =
            parse("for user u schema s display as Null class C display class D display").unwrap();
        engine.remove_rules_with_prefix("prog/");
        engine.add_rules(compile(&v2, "prog")).unwrap();
        assert_eq!(engine.len(), 3);
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::parser::parse;
    use active::{Engine, Event, SessionContext};
    use geodb::query::DbEvent;

    #[test]
    fn scale_scoped_rules_only_fire_at_that_scale() {
        let prog = parse(
            "for application pole_manager scale 1:1000 \
             schema phone_net display as default \
             class Pole display presentation as symbolFormat",
        )
        .unwrap();
        let mut engine: Engine<Customization> = Engine::new();
        engine.add_rules(compile(&prog, "s")).unwrap();

        let event = || {
            Event::Db(DbEvent::GetClass {
                schema: "phone_net".into(),
                class: "Pole".into(),
            })
        };
        let base = SessionContext::new("anyone", "any", "pole_manager");
        // Without the scale dimension: no match.
        let out = engine.dispatch(event(), &base).unwrap();
        assert!(out.customization().is_none());
        // With the right scale: fires.
        let zoomed = base.clone().with_extra("scale", "1:1000");
        let out = engine.dispatch(event(), &zoomed).unwrap();
        assert!(out.customization().is_some());
        // Wrong scale: no match.
        let coarse = base.with_extra("scale", "1:50000");
        let out = engine.dispatch(event(), &coarse).unwrap();
        assert!(out.customization().is_none());
    }
}
