//! Semantic analysis: validate a parsed program against the database
//! catalog and the interface-objects library.
//!
//! "The target user of this language is the application designer, who has
//! knowledge about the database schema" — the analyzer is what tells that
//! designer, before any rule is generated, that `class Pol` or
//! `as poleWidgt` doesn't exist.

use geodb::catalog::Catalog;
use geodb::value::AttrType;
use uilib::Library;

use crate::ast::*;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The program cannot be compiled.
    Error,
    /// Suspicious but compilable (e.g. callback not yet registered).
    Warning,
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub message: String,
}

impl Diagnostic {
    fn error(message: String) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            message,
        }
    }

    fn warning(message: String) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            message,
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tag = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{tag}: {}", self.message)
    }
}

/// Presentation formats the generic builder understands out of the box.
pub const BUILTIN_FORMATS: &[&str] = &[
    "default",
    "pointFormat",
    "lineFormat",
    "polygonFormat",
    "tableFormat",
    "symbolFormat",
];

/// Everything the analyzer checks against.
pub struct AnalysisEnv<'a> {
    pub catalog: &'a Catalog,
    pub library: &'a Library,
    /// Presentation format names beyond [`BUILTIN_FORMATS`].
    pub extra_formats: Vec<String>,
    /// Callback names already registered (unknown ones warn, not error —
    /// "the definition of such functions is out of the scope of the
    /// language").
    pub known_callbacks: Vec<String>,
}

impl<'a> AnalysisEnv<'a> {
    pub fn new(catalog: &'a Catalog, library: &'a Library) -> AnalysisEnv<'a> {
        AnalysisEnv {
            catalog,
            library,
            extra_formats: Vec::new(),
            known_callbacks: Vec::new(),
        }
    }

    fn format_known(&self, name: &str) -> bool {
        BUILTIN_FORMATS.contains(&name) || self.extra_formats.iter().any(|f| f == name)
    }
}

/// Resolve a dotted attribute path against a class's effective attributes;
/// returns the leaf type if valid.
fn resolve_path(
    catalog: &Catalog,
    schema: &str,
    class: &str,
    path: &str,
) -> Result<AttrType, String> {
    let attrs = catalog
        .effective_attrs(schema, class)
        .map_err(|e| e.to_string())?;
    let mut parts = path.split('.');
    let head = parts.next().expect("split yields at least one part");
    let mut ty = attrs
        .iter()
        .find(|a| a.name == head)
        .map(|a| a.ty.clone())
        .ok_or_else(|| format!("class `{class}` has no attribute `{head}`"))?;
    for part in parts {
        match ty {
            AttrType::Tuple(fields) => {
                ty = fields
                    .iter()
                    .find(|(n, _)| n == part)
                    .map(|(_, t)| t.clone())
                    .ok_or_else(|| {
                        format!("tuple attribute has no field `{part}` (in `{path}`)")
                    })?;
            }
            other => {
                return Err(format!(
                    "`{part}` in `{path}` descends into non-tuple type {}",
                    other.name()
                ))
            }
        }
    }
    Ok(ty)
}

/// Analyze a program; returns all diagnostics (empty = clean).
pub fn analyze(program: &Program, env: &AnalysisEnv<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (di, d) in program.directives.iter().enumerate() {
        let where_ = format!("directive {}", di + 1);

        // Schema must exist.
        let schema_ok = env.catalog.schema(&d.schema.name).is_ok();
        if !schema_ok {
            out.push(Diagnostic::error(format!(
                "{where_}: unknown schema `{}`",
                d.schema.name
            )));
        }

        for c in &d.classes {
            let class_ok = schema_ok && env.catalog.class(&d.schema.name, &c.name).is_ok();
            if schema_ok && !class_ok {
                out.push(Diagnostic::error(format!(
                    "{where_}: unknown class `{}` in schema `{}`",
                    c.name, d.schema.name
                )));
            }

            if let Some(ctl) = &c.control {
                if !env.library.contains(ctl) {
                    out.push(Diagnostic::error(format!(
                        "{where_}: control widget class `{ctl}` is not in the interface library"
                    )));
                }
            }
            if let Some(p) = &c.presentation {
                if !env.format_known(p) && !env.library.contains(p) {
                    out.push(Diagnostic::error(format!(
                        "{where_}: unknown presentation format `{p}`"
                    )));
                }
            }

            for a in &c.instances {
                if class_ok {
                    if let Err(e) = resolve_path(env.catalog, &d.schema.name, &c.name, &a.attribute)
                    {
                        out.push(Diagnostic::error(format!("{where_}: {e}")));
                    }
                }
                if let AttrDisplay::Widget(w) = &a.display {
                    if !env.library.contains(w) {
                        out.push(Diagnostic::error(format!(
                            "{where_}: attribute `{}` displays as unknown widget `{w}`",
                            a.attribute
                        )));
                    }
                }
                for src in &a.from {
                    match src {
                        Source::Path(p) => {
                            if class_ok {
                                if let Err(e) =
                                    resolve_path(env.catalog, &d.schema.name, &c.name, p)
                                {
                                    out.push(Diagnostic::error(format!("{where_}: {e}")));
                                }
                            }
                        }
                        Source::MethodCall { method, args } => {
                            if class_ok {
                                let methods = env
                                    .catalog
                                    .effective_methods(&d.schema.name, &c.name)
                                    .unwrap_or_default();
                                match methods.iter().find(|m| m.name == *method) {
                                    None => out.push(Diagnostic::error(format!(
                                        "{where_}: class `{}` has no method `{method}`",
                                        c.name
                                    ))),
                                    Some(m) => {
                                        if m.params.len() != args.len() {
                                            out.push(Diagnostic::error(format!(
                                                "{where_}: `{method}` takes {} argument(s), got {}",
                                                m.params.len(),
                                                args.len()
                                            )));
                                        }
                                    }
                                }
                                for arg in args {
                                    if let Err(e) =
                                        resolve_path(env.catalog, &d.schema.name, &c.name, arg)
                                    {
                                        out.push(Diagnostic::error(format!("{where_}: {e}")));
                                    }
                                }
                            }
                        }
                    }
                }
                if let Some(cb) = &a.using {
                    if !env.known_callbacks.iter().any(|k| k == cb) {
                        out.push(Diagnostic::warning(format!(
                            "{where_}: callback `{cb}` is not registered yet"
                        )));
                    }
                }
            }
        }

        // Duplicate class clauses within one directive are ambiguous.
        for (i, a) in d.classes.iter().enumerate() {
            if d.classes[..i].iter().any(|b| b.name == a.name) {
                out.push(Diagnostic::error(format!(
                    "{where_}: class `{}` customized twice in the same directive",
                    a.name
                )));
            }
        }
    }
    out
}

/// True when no diagnostic is an error.
pub fn is_clean(diags: &[Diagnostic]) -> bool {
    diags.iter().all(|d| d.severity != Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, FIG6_PROGRAM};
    use geodb::gen::phone_net_schema;

    fn env_parts() -> (Catalog, Library) {
        let mut catalog = Catalog::new();
        catalog.register(phone_net_schema()).unwrap();
        let mut library = Library::with_kernel();
        library
            .specialize("slider", "Panel", vec![("style".into(), "slider".into())])
            .unwrap();
        library.specialize("poleWidget", "slider", vec![]).unwrap();
        library.specialize("composed_text", "Text", vec![]).unwrap();
        library.specialize("text", "Text", vec![]).unwrap();
        (catalog, library)
    }

    #[test]
    fn fig6_analyzes_clean_modulo_callback_warning() {
        let (catalog, library) = env_parts();
        let env = AnalysisEnv::new(&catalog, &library);
        let prog = parse(FIG6_PROGRAM).unwrap();
        let diags = analyze(&prog, &env);
        assert!(is_clean(&diags), "diags: {diags:?}");
        // The notify callback isn't registered -> exactly one warning.
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("composed_text.notify"));
    }

    #[test]
    fn registered_callback_silences_warning() {
        let (catalog, library) = env_parts();
        let mut env = AnalysisEnv::new(&catalog, &library);
        env.known_callbacks.push("composed_text.notify".into());
        let prog = parse(FIG6_PROGRAM).unwrap();
        assert!(analyze(&prog, &env).is_empty());
    }

    #[test]
    fn unknown_schema_class_widget_format() {
        let (catalog, library) = env_parts();
        let env = AnalysisEnv::new(&catalog, &library);
        let prog = parse(
            "for user u schema ghost display as default class Nope display \
             control as noWidget presentation as noFormat",
        )
        .unwrap();
        let diags = analyze(&prog, &env);
        let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("unknown schema `ghost`")));
        assert!(msgs.iter().any(|m| m.contains("`noWidget`")));
        assert!(msgs.iter().any(|m| m.contains("`noFormat`")));
        assert!(!is_clean(&diags));
    }

    #[test]
    fn bad_attribute_paths_are_caught() {
        let (catalog, library) = env_parts();
        let env = AnalysisEnv::new(&catalog, &library);
        // Unknown attribute, bad tuple field, descent into scalar.
        let prog = parse(
            "for user u schema phone_net display as default class Pole display instances \
               display attribute nonexistent \
               display attribute pole_composition.bad_field \
               display attribute pole_type.sub",
        )
        .unwrap();
        let diags = analyze(&prog, &env);
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count(),
            3
        );
        assert!(diags
            .iter()
            .any(|d| d.message.contains("no attribute `nonexistent`")));
        assert!(diags
            .iter()
            .any(|d| d.message.contains("no field `bad_field`")));
        assert!(diags.iter().any(|d| d.message.contains("non-tuple")));
    }

    #[test]
    fn method_arity_is_checked() {
        let (catalog, library) = env_parts();
        let env = AnalysisEnv::new(&catalog, &library);
        let prog = parse(
            "for user u schema phone_net display as default class Pole display instances \
               display attribute pole_supplier from get_supplier_name(pole_supplier, pole_type) \
               display attribute pole_type from no_such_method()",
        )
        .unwrap();
        let diags = analyze(&prog, &env);
        assert!(diags
            .iter()
            .any(|d| d.message.contains("takes 1 argument(s), got 2")));
        assert!(diags
            .iter()
            .any(|d| d.message.contains("no method `no_such_method`")));
    }

    #[test]
    fn duplicate_class_clause_is_flagged() {
        let (catalog, library) = env_parts();
        let env = AnalysisEnv::new(&catalog, &library);
        let prog = parse(
            "for user u schema phone_net display as default \
             class Pole display control as poleWidget \
             class Pole display presentation as pointFormat",
        )
        .unwrap();
        let diags = analyze(&prog, &env);
        assert!(diags.iter().any(|d| d.message.contains("customized twice")));
    }

    #[test]
    fn builtin_formats_are_accepted() {
        let (catalog, library) = env_parts();
        let env = AnalysisEnv::new(&catalog, &library);
        for fmt in BUILTIN_FORMATS {
            let prog = parse(&format!(
                "for user u schema phone_net display as default class Pole display presentation as {fmt}"
            ))
            .unwrap();
            assert!(is_clean(&analyze(&prog, &env)), "format {fmt}");
        }
    }
}
