//! Lexer for the customization language.
//!
//! The language "has to be as simple and easy to use as possible": plain
//! identifiers, a dozen case-insensitive keywords, and `( ) . ,`
//! punctuation. `#` starts a line comment (an ergonomic extension).

/// A token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Keywords (matched case-insensitively).
    For,
    User,
    Category,
    Application,
    /// Context extension: geographic scale (`scale 1:1000`).
    Scale,
    /// Context extension: time framework (`time 1997`).
    Time,
    Schema,
    Class,
    Display,
    As,
    Control,
    Presentation,
    Instances,
    Attribute,
    From,
    Using,
    Default,
    Hierarchy,
    UserDefined,
    Null,
    // Punctuation.
    LParen,
    RParen,
    Dot,
    Comma,
    /// Anything else word-like: schema/class/attribute/widget names.
    Ident(String),
    Eof,
}

impl TokenKind {
    /// Display form used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("`{s}`"),
            TokenKind::Eof => "end of input".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Comma => "`,`".into(),
            other => format!("`{}`", format!("{other:?}").to_lowercase()),
        }
    }
}

/// A lexical error: an unexpected character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub line: u32,
    pub ch: char,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: unexpected character `{}`", self.line, self.ch)
    }
}

impl std::error::Error for LexError {}

fn keyword(word: &str) -> Option<TokenKind> {
    match word.to_ascii_lowercase().as_str() {
        "for" => Some(TokenKind::For),
        "user" => Some(TokenKind::User),
        "category" => Some(TokenKind::Category),
        "application" => Some(TokenKind::Application),
        "scale" => Some(TokenKind::Scale),
        "time" => Some(TokenKind::Time),
        "schema" => Some(TokenKind::Schema),
        "class" => Some(TokenKind::Class),
        "display" => Some(TokenKind::Display),
        "as" => Some(TokenKind::As),
        "control" => Some(TokenKind::Control),
        "presentation" => Some(TokenKind::Presentation),
        "instances" => Some(TokenKind::Instances),
        "attribute" => Some(TokenKind::Attribute),
        "from" => Some(TokenKind::From),
        "using" => Some(TokenKind::Using),
        "default" => Some(TokenKind::Default),
        "hierarchy" => Some(TokenKind::Hierarchy),
        "user-defined" => Some(TokenKind::UserDefined),
        "null" => Some(TokenKind::Null),
        _ => None,
    }
}

/// Tokenize a program.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut line: u32 = 1;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '(' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line,
                });
            }
            ')' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line,
                });
            }
            '.' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    line,
                });
            }
            ',' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    // Hyphen is a word character so `user-defined` and
                    // hyphenated names lex as single tokens; ':' supports
                    // scale denominators like `1:1000`.
                    if c.is_alphanumeric() || c == '_' || c == '-' || c == ':' {
                        word.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let kind = keyword(&word).unwrap_or(TokenKind::Ident(word));
                tokens.push(Token { kind, line });
            }
            other => return Err(LexError { line, ch: other }),
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("For USER Schema"),
            vec![
                TokenKind::For,
                TokenKind::User,
                TokenKind::Schema,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn idents_keep_case() {
        assert_eq!(
            kinds("Pole poleWidget"),
            vec![
                TokenKind::Ident("Pole".into()),
                TokenKind::Ident("poleWidget".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn user_defined_lexes_as_one_keyword() {
        assert_eq!(
            kinds("display as user-defined"),
            vec![
                TokenKind::Display,
                TokenKind::As,
                TokenKind::UserDefined,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn punctuation_and_calls() {
        assert_eq!(
            kinds("using composed_text.notify()"),
            vec![
                TokenKind::Using,
                TokenKind::Ident("composed_text".into()),
                TokenKind::Dot,
                TokenKind::Ident("notify".into()),
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines_are_tracked() {
        let toks = lex("for user juliano # context\nschema phone_net").unwrap();
        let schema_tok = toks.iter().find(|t| t.kind == TokenKind::Schema).unwrap();
        assert_eq!(schema_tok.line, 2);
    }

    #[test]
    fn bad_character_is_reported_with_line() {
        let err = lex("for user juliano\n@").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.ch, '@');
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   \n # only a comment\n"), vec![TokenKind::Eof]);
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn scale_and_time_keywords() {
        let toks = lex("scale 1:1000 time 1997").unwrap();
        let kinds: Vec<TokenKind> = toks.into_iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Scale,
                TokenKind::Ident("1:1000".into()),
                TokenKind::Time,
                TokenKind::Ident("1997".into()),
                TokenKind::Eof
            ]
        );
    }
}
