//! Customization programs stored *in* the geographic database.
//!
//! "Customization rules stored in the database are derived from
//! assertives written in this language" — the durable artifact is the
//! program source; rules are recompiled from it at load time (rule
//! actions reference native interface code, so source is the right
//! persistence boundary, exactly as with schema methods).

use geodb::db::Database;
use geodb::error::{GeoDbError, Result};
use geodb::schema::{ClassDef, SchemaDef};
use geodb::store::DbSnapshot;
use geodb::value::{AttrType, Value};
use geodb::Instance;

/// Schema holding stored customization programs.
pub const RULES_SCHEMA: &str = "ui_rules";
const CLASS: &str = "CustomizationProgram";

/// The catalog schema for stored programs.
pub fn rules_schema() -> SchemaDef {
    SchemaDef::new(RULES_SCHEMA).class(
        ClassDef::new(CLASS)
            .attr("name", AttrType::Text)
            .attr("source", AttrType::Text)
            .doc("A declarative customization program (compiles to E-C-A rules)"),
    )
}

fn ensure_schema(db: &mut Database) -> Result<()> {
    if db.catalog().schema(RULES_SCHEMA).is_err() {
        db.register_schema(rules_schema())?;
    }
    Ok(())
}

/// Store (or replace) a named program's source. The caller is expected to
/// have validated it (parse + analyze) first.
pub fn save_program(db: &mut Database, name: &str, source: &str) -> Result<()> {
    ensure_schema(db)?;
    // Replace an existing program of the same name.
    let existing = db.get_class(RULES_SCHEMA, CLASS, false)?;
    for inst in existing {
        if inst.get("name") == &Value::Text(name.to_string()) {
            db.delete(inst.oid)?;
        }
    }
    db.insert(
        RULES_SCHEMA,
        CLASS,
        vec![
            ("name".into(), name.into()),
            ("source".into(), source.into()),
        ],
    )?;
    db.drain_events();
    Ok(())
}

fn program_pairs(rows: Vec<Instance>) -> Result<Vec<(String, String)>> {
    let mut out: Vec<(String, String)> = rows
        .into_iter()
        .map(|inst| {
            let name = match inst.get("name") {
                Value::Text(s) => s.clone(),
                other => {
                    return Err(GeoDbError::Snapshot(format!(
                        "stored program has non-text name: {other:?}"
                    )))
                }
            };
            let source = match inst.get("source") {
                Value::Text(s) => s.clone(),
                _ => String::new(),
            };
            Ok((name, source))
        })
        .collect::<Result<_>>()?;
    out.sort();
    Ok(out)
}

/// All stored programs as `(name, source)` pairs, name order.
pub fn load_programs(db: &mut Database) -> Result<Vec<(String, String)>> {
    if db.catalog().schema(RULES_SCHEMA).is_err() {
        return Ok(Vec::new());
    }
    let rows = db.get_class(RULES_SCHEMA, CLASS, false)?;
    db.drain_events();
    program_pairs(rows)
}

/// All stored programs from a pinned snapshot — the lock-free read-path
/// twin of [`load_programs`].
pub fn load_programs_snap(snap: &DbSnapshot) -> Result<Vec<(String, String)>> {
    if snap.catalog().schema(RULES_SCHEMA).is_err() {
        return Ok(Vec::new());
    }
    program_pairs(snap.get_class(RULES_SCHEMA, CLASS, false)?)
}

/// Delete a stored program; returns whether it existed.
pub fn delete_program(db: &mut Database, name: &str) -> Result<bool> {
    if db.catalog().schema(RULES_SCHEMA).is_err() {
        return Ok(false);
    }
    let existing = db.get_class(RULES_SCHEMA, CLASS, false)?;
    let mut found = false;
    for inst in existing {
        if inst.get("name") == &Value::Text(name.to_string()) {
            db.delete(inst.oid)?;
            found = true;
        }
    }
    db.drain_events();
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::FIG6_PROGRAM;

    #[test]
    fn save_load_round_trip() {
        let mut db = Database::new("GEO");
        save_program(&mut db, "fig6", FIG6_PROGRAM).unwrap();
        save_program(
            &mut db,
            "other",
            "for user u schema s display as default class C display",
        )
        .unwrap();
        let progs = load_programs(&mut db).unwrap();
        assert_eq!(progs.len(), 2);
        assert_eq!(progs[0].0, "fig6");
        assert_eq!(progs[0].1, FIG6_PROGRAM);
        // Stored source still parses.
        assert!(crate::parse(&progs[0].1).is_ok());
    }

    #[test]
    fn save_replaces_same_name() {
        let mut db = Database::new("GEO");
        save_program(
            &mut db,
            "p",
            "for user a schema s display as default class C display",
        )
        .unwrap();
        save_program(
            &mut db,
            "p",
            "for user b schema s display as default class C display",
        )
        .unwrap();
        let progs = load_programs(&mut db).unwrap();
        assert_eq!(progs.len(), 1);
        assert!(progs[0].1.contains("user b"));
    }

    #[test]
    fn delete_program_works() {
        let mut db = Database::new("GEO");
        assert!(!delete_program(&mut db, "ghost").unwrap());
        save_program(&mut db, "p", "x").unwrap();
        assert!(delete_program(&mut db, "p").unwrap());
        assert!(load_programs(&mut db).unwrap().is_empty());
    }

    #[test]
    fn empty_database_loads_nothing() {
        let mut db = Database::new("GEO");
        assert!(load_programs(&mut db).unwrap().is_empty());
    }

    #[test]
    fn snapshot_load_matches_database_load() {
        let mut db = Database::new("GEO");
        save_program(&mut db, "fig6", FIG6_PROGRAM).unwrap();
        save_program(
            &mut db,
            "z",
            "for user u schema s display as default class C display",
        )
        .unwrap();
        let via_db = load_programs(&mut db).unwrap();
        let store = geodb::DbStore::new(db);
        let via_snap = load_programs_snap(&store.snapshot()).unwrap();
        assert_eq!(via_db, via_snap);

        let empty = geodb::DbStore::new(Database::new("GEO"));
        assert!(load_programs_snap(&empty.snapshot()).unwrap().is_empty());
    }
}
