//! Recursive-descent parser for the customization language.
//!
//! Grammar (paper Fig. 3, formalized):
//!
//! ```text
//! program      := directive* EOF
//! directive    := "for" context schema_clause class_clause+
//! context      := ("user" IDENT)? ("category" IDENT)? ("application" IDENT)?
//! schema_clause:= "schema" IDENT "display" "as" mode
//! mode         := "default" | "hierarchy" | "user-defined" | "Null"
//! class_clause := "class" IDENT "display" ("control" "as" IDENT)?
//!                 ("presentation" "as" IDENT)? ("instances" attr_clause+)?
//! attr_clause  := "display" "attribute" path ("as" (IDENT | "Null"))?
//!                 ("from" source+)? ("using" callback)?
//! path         := IDENT ("." IDENT)*
//! source       := path | IDENT "(" [path ("," path)*] ")"
//! callback     := IDENT ("." IDENT)? ["(" ")"]
//! ```

use crate::ast::*;
use crate::lexer::{lex, LexError, Token, TokenKind};

/// A parse error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            line: e.line,
            message: format!("unexpected character `{}`", e.ch),
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn next(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), ParseError> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {} ({what}), found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            line: self.line(),
            message,
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.next();
                Ok(s)
            }
            other => Err(self.error(format!("expected {what}, found {}", other.describe()))),
        }
    }

    /// `IDENT ("." IDENT)*`
    fn path(&mut self, what: &str) -> Result<String, ParseError> {
        let mut p = self.ident(what)?;
        while self.eat(&TokenKind::Dot) {
            p.push('.');
            p.push_str(&self.ident("path segment")?);
        }
        Ok(p)
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut directives = Vec::new();
        while !matches!(self.peek(), TokenKind::Eof) {
            directives.push(self.directive()?);
        }
        Ok(Program { directives })
    }

    fn directive(&mut self) -> Result<Directive, ParseError> {
        self.expect(TokenKind::For, "start of directive")?;
        let context = self.context()?;
        let schema = self.schema_clause()?;
        let mut classes = Vec::new();
        while matches!(self.peek(), TokenKind::Class) {
            classes.push(self.class_clause()?);
        }
        if classes.is_empty() {
            return Err(self.error("a directive needs at least one `class` clause".into()));
        }
        Ok(Directive {
            context,
            schema,
            classes,
        })
    }

    fn context(&mut self) -> Result<ContextClause, ParseError> {
        let mut ctx = ContextClause::default();
        loop {
            match self.peek() {
                TokenKind::User => {
                    self.next();
                    let v = self.ident("user name")?;
                    if ctx.user.replace(v).is_some() {
                        return Err(self.error("duplicate `user` in For clause".into()));
                    }
                }
                TokenKind::Category => {
                    self.next();
                    let v = self.ident("category name")?;
                    if ctx.category.replace(v).is_some() {
                        return Err(self.error("duplicate `category` in For clause".into()));
                    }
                }
                TokenKind::Application => {
                    self.next();
                    let v = self.ident("application name")?;
                    if ctx.application.replace(v).is_some() {
                        return Err(self.error("duplicate `application` in For clause".into()));
                    }
                }
                TokenKind::Scale => {
                    self.next();
                    let v = self.ident("scale value")?;
                    if ctx.extras.iter().any(|(k, _)| k == "scale") {
                        return Err(self.error("duplicate `scale` in For clause".into()));
                    }
                    ctx.extras.push(("scale".into(), v));
                }
                TokenKind::Time => {
                    self.next();
                    let v = self.ident("time value")?;
                    if ctx.extras.iter().any(|(k, _)| k == "time") {
                        return Err(self.error("duplicate `time` in For clause".into()));
                    }
                    ctx.extras.push(("time".into(), v));
                }
                _ => break,
            }
        }
        Ok(ctx)
    }

    fn schema_clause(&mut self) -> Result<SchemaClause, ParseError> {
        self.expect(TokenKind::Schema, "schema clause")?;
        let name = self.ident("schema name")?;
        self.expect(TokenKind::Display, "schema clause")?;
        self.expect(TokenKind::As, "schema clause")?;
        let mode = match self.peek() {
            TokenKind::Default => SchemaMode::Default,
            TokenKind::Hierarchy => SchemaMode::Hierarchy,
            TokenKind::UserDefined => SchemaMode::UserDefined,
            TokenKind::Null => SchemaMode::Null,
            other => {
                return Err(self.error(format!(
                "expected a schema display mode (default|hierarchy|user-defined|Null), found {}",
                other.describe()
            )))
            }
        };
        self.next();
        Ok(SchemaClause { name, mode })
    }

    fn class_clause(&mut self) -> Result<ClassClause, ParseError> {
        self.expect(TokenKind::Class, "class clause")?;
        let name = self.ident("class name")?;
        self.expect(TokenKind::Display, "class clause")?;

        let mut clause = ClassClause {
            name,
            control: None,
            presentation: None,
            instances: Vec::new(),
        };
        if self.eat(&TokenKind::Control) {
            self.expect(TokenKind::As, "control clause")?;
            clause.control = Some(self.ident("control widget class")?);
        }
        if self.eat(&TokenKind::Presentation) {
            self.expect(TokenKind::As, "presentation clause")?;
            // `default` is a keyword but also a valid format name.
            clause.presentation = if self.eat(&TokenKind::Default) {
                Some("default".to_string())
            } else {
                Some(self.ident("presentation format")?)
            };
        }
        if self.eat(&TokenKind::Instances) {
            while matches!(self.peek(), TokenKind::Display) {
                clause.instances.push(self.attr_clause()?);
            }
            if clause.instances.is_empty() {
                return Err(self.error("`instances` needs at least one `display attribute`".into()));
            }
        }
        Ok(clause)
    }

    fn attr_clause(&mut self) -> Result<AttrClause, ParseError> {
        self.expect(TokenKind::Display, "attribute clause")?;
        self.expect(TokenKind::Attribute, "attribute clause")?;
        let attribute = self.path("attribute name")?;

        let display = if self.eat(&TokenKind::As) {
            match self.peek().clone() {
                TokenKind::Null => {
                    self.next();
                    AttrDisplay::Null
                }
                TokenKind::Ident(_) => AttrDisplay::Widget(self.ident("widget class")?),
                other => {
                    return Err(self.error(format!(
                        "expected a widget class or Null after `as`, found {}",
                        other.describe()
                    )))
                }
            }
        } else {
            AttrDisplay::Default
        };

        let mut from = Vec::new();
        if self.eat(&TokenKind::From) {
            while matches!(self.peek(), TokenKind::Ident(_)) {
                from.push(self.source()?);
            }
            if from.is_empty() {
                return Err(self.error("`from` needs at least one source".into()));
            }
        }

        let mut using = None;
        if self.eat(&TokenKind::Using) {
            let mut name = self.ident("callback name")?;
            if self.eat(&TokenKind::Dot) {
                name.push('.');
                name.push_str(&self.ident("callback method")?);
            }
            if self.eat(&TokenKind::LParen) {
                self.expect(TokenKind::RParen, "callback call")?;
            }
            using = Some(name);
        }

        Ok(AttrClause {
            attribute,
            display,
            from,
            using,
        })
    }

    fn source(&mut self) -> Result<Source, ParseError> {
        let first = self.ident("source")?;
        if self.eat(&TokenKind::LParen) {
            // Method call.
            let mut args = Vec::new();
            if !matches!(self.peek(), TokenKind::RParen) {
                loop {
                    args.push(self.path("method argument")?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen, "method call")?;
            Ok(Source::MethodCall {
                method: first,
                args,
            })
        } else {
            let mut p = first;
            while self.eat(&TokenKind::Dot) {
                p.push('.');
                p.push_str(&self.ident("path segment")?);
            }
            Ok(Source::Path(p))
        }
    }
}

/// Parse a customization program.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

/// The verbatim program of paper Fig. 6.
pub const FIG6_PROGRAM: &str = "\
For user juliano application pole_manager
  schema phone_net display as Null
  class Pole display
    control as poleWidget
    presentation as pointFormat
    instances
      display attribute pole_composition as composed_text
        from pole_composition.pole_material pole_composition.pole_diameter pole_composition.pole_height
        using composed_text.notify()
      display attribute pole_supplier as text
        from get_supplier_name(pole_supplier)
      display attribute pole_location as Null
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig6_verbatim() {
        let prog = parse(FIG6_PROGRAM).unwrap();
        assert_eq!(prog.directives.len(), 1);
        let d = &prog.directives[0];
        assert_eq!(d.context.user.as_deref(), Some("juliano"));
        assert_eq!(d.context.category, None);
        assert_eq!(d.context.application.as_deref(), Some("pole_manager"));
        assert_eq!(d.schema.name, "phone_net");
        assert_eq!(d.schema.mode, SchemaMode::Null);
        assert_eq!(d.classes.len(), 1);
        let c = &d.classes[0];
        assert_eq!(c.name, "Pole");
        assert_eq!(c.control.as_deref(), Some("poleWidget"));
        assert_eq!(c.presentation.as_deref(), Some("pointFormat"));
        assert_eq!(c.instances.len(), 3);

        let comp = &c.instances[0];
        assert_eq!(comp.attribute, "pole_composition");
        assert_eq!(comp.display, AttrDisplay::Widget("composed_text".into()));
        assert_eq!(comp.from.len(), 3);
        assert_eq!(
            comp.from[0],
            Source::Path("pole_composition.pole_material".into())
        );
        assert_eq!(comp.using.as_deref(), Some("composed_text.notify"));

        let sup = &c.instances[1];
        assert_eq!(
            sup.from[0],
            Source::MethodCall {
                method: "get_supplier_name".into(),
                args: vec!["pole_supplier".into()]
            }
        );

        let loc = &c.instances[2];
        assert_eq!(loc.display, AttrDisplay::Null);
        assert!(loc.from.is_empty());
        assert!(loc.using.is_none());
    }

    #[test]
    fn generic_context_parses() {
        let prog = parse("for schema s display as default class C display").unwrap();
        assert!(prog.directives[0].context.is_generic());
        assert_eq!(prog.directives[0].schema.mode, SchemaMode::Default);
    }

    #[test]
    fn all_schema_modes_parse() {
        for (txt, mode) in [
            ("default", SchemaMode::Default),
            ("hierarchy", SchemaMode::Hierarchy),
            ("user-defined", SchemaMode::UserDefined),
            ("Null", SchemaMode::Null),
        ] {
            let src = format!("for user u schema s display as {txt} class C display");
            assert_eq!(parse(&src).unwrap().directives[0].schema.mode, mode);
        }
    }

    #[test]
    fn multiple_directives_and_classes() {
        let src = "
            for user a schema s display as default
              class C1 display control as w1
              class C2 display presentation as f1
            for category ops application maint schema s display as hierarchy
              class C3 display
        ";
        let prog = parse(src).unwrap();
        assert_eq!(prog.directives.len(), 2);
        assert_eq!(prog.directives[0].classes.len(), 2);
        assert_eq!(prog.directives[1].context.category.as_deref(), Some("ops"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("for user u\nschema s display as bogus\nclass C display").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("display mode"));

        let err = parse("for user u schema s display as default").unwrap_err();
        assert!(err.message.contains("at least one `class`"));
    }

    #[test]
    fn duplicate_context_binding_rejected() {
        let err =
            parse("for user a user b schema s display as default class C display").unwrap_err();
        assert!(err.message.contains("duplicate `user`"));
    }

    #[test]
    fn empty_instances_rejected() {
        let err =
            parse("for user u schema s display as default class C display instances").unwrap_err();
        assert!(err.message.contains("display attribute"));
    }

    #[test]
    fn from_without_sources_rejected() {
        let err = parse(
            "for user u schema s display as default class C display instances display attribute a from using cb",
        )
        .unwrap_err();
        assert!(err.message.contains("at least one source"));
    }

    #[test]
    fn method_call_with_multiple_args() {
        let src = "for user u schema s display as default class C display \
                   instances display attribute a from f(x, y.z)";
        let prog = parse(src).unwrap();
        let attr = &prog.directives[0].classes[0].instances[0];
        assert_eq!(
            attr.from[0],
            Source::MethodCall {
                method: "f".into(),
                args: vec!["x".into(), "y.z".into()]
            }
        );
    }

    #[test]
    fn using_without_parens_or_dot() {
        let src = "for user u schema s display as default class C display \
                   instances display attribute a using refresh";
        let prog = parse(src).unwrap();
        assert_eq!(
            prog.directives[0].classes[0].instances[0].using.as_deref(),
            Some("refresh")
        );
    }

    #[test]
    fn empty_program_is_valid() {
        assert_eq!(parse("").unwrap().directives.len(), 0);
        assert_eq!(parse("# just a comment\n").unwrap().directives.len(), 0);
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn scale_and_time_context_dimensions() {
        let prog = parse(
            "for user juliano application pole_manager scale 1:1000 time 1997 \
             schema phone_net display as default class Pole display",
        )
        .unwrap();
        let ctx = &prog.directives[0].context;
        assert_eq!(
            ctx.extras,
            vec![
                ("scale".to_string(), "1:1000".to_string()),
                ("time".to_string(), "1997".to_string())
            ]
        );
        assert_eq!(ctx.slug(), "juliano:*:pole_manager:scale=1:1000:time=1997");
    }

    #[test]
    fn duplicate_scale_rejected() {
        let err = parse("for scale 1:10 scale 1:20 schema s display as default class C display")
            .unwrap_err();
        assert!(err.message.contains("duplicate `scale`"));
    }

    #[test]
    fn extras_round_trip_through_pretty() {
        let src = "for category planner scale 1:500 \
                   schema s display as default class C display";
        let prog = parse(src).unwrap();
        let printed = crate::pretty::pretty(&prog);
        assert_eq!(parse(&printed).unwrap(), prog);
    }
}
