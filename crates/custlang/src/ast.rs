//! Abstract syntax of customization programs (paper Fig. 3).

use serde::{Deserialize, Serialize};

/// A whole customization program: one or more directives.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Program {
    pub directives: Vec<Directive>,
}

/// One `For … schema … {class …}+` directive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Directive {
    pub context: ContextClause,
    pub schema: SchemaClause,
    pub classes: Vec<ClassClause>,
}

/// The `For [user] [category] [application]` clause — "the context
/// (Condition component of the rule) is specified by the directive in the
/// For clause".
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ContextClause {
    pub user: Option<String>,
    pub category: Option<String>,
    pub application: Option<String>,
    /// Extension dimensions the paper anticipates: "this context
    /// information can conceivably be extended to other contextual data
    /// (e.g., geographic scale, time framework)". Keys are `scale`,
    /// `time`, … with free-form values (`1:1000`, `1997`).
    pub extras: Vec<(String, String)>,
}

impl ContextClause {
    /// True when no dimension is bound (matches everyone).
    pub fn is_generic(&self) -> bool {
        self.user.is_none()
            && self.category.is_none()
            && self.application.is_none()
            && self.extras.is_empty()
    }

    /// Compact form used in generated rule names.
    pub fn slug(&self) -> String {
        let mut s = format!(
            "{}:{}:{}",
            self.user.as_deref().unwrap_or("*"),
            self.category.as_deref().unwrap_or("*"),
            self.application.as_deref().unwrap_or("*")
        );
        for (k, v) in &self.extras {
            s.push_str(&format!(":{k}={v}"));
        }
        s
    }
}

/// `schema <name> display as <mode>`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaClause {
    pub name: String,
    pub mode: SchemaMode,
}

/// Display modes of the Schema window (Fig. 3): `default | hierarchy |
/// user-defined | Null`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemaMode {
    Default,
    Hierarchy,
    UserDefined,
    Null,
}

impl std::fmt::Display for SchemaMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchemaMode::Default => "default",
            SchemaMode::Hierarchy => "hierarchy",
            SchemaMode::UserDefined => "user-defined",
            SchemaMode::Null => "Null",
        };
        f.write_str(s)
    }
}

/// `class <name> display [control as …] [presentation as …]
/// [instances …]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassClause {
    pub name: String,
    /// Widget class for the control area.
    pub control: Option<String>,
    /// Presentation format for the display area (`pointFormat`, …).
    pub presentation: Option<String>,
    /// Per-attribute customizations of the Instance window.
    pub instances: Vec<AttrClause>,
}

/// `display attribute <attr> [as <widget>|Null] [from <source>+]
/// [using <callback>]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrClause {
    pub attribute: String,
    pub display: AttrDisplay,
    pub from: Vec<Source>,
    /// Callback bound via `using`, e.g. `composed_text.notify`.
    pub using: Option<String>,
}

/// How an attribute displays in the Instance window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrDisplay {
    /// Omitted `as`: keep the generic presentation.
    Default,
    /// `as Null`: hide the attribute.
    Null,
    /// `as <widget-class>`: display with this library widget.
    Widget(String),
}

/// A data source in a `from` list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Source {
    /// Dotted attribute path, e.g. `pole_composition.pole_height`.
    Path(String),
    /// Method call, e.g. `get_supplier_name(pole_supplier)`.
    MethodCall { method: String, args: Vec<String> },
}

impl std::fmt::Display for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Source::Path(p) => f.write_str(p),
            Source::MethodCall { method, args } => {
                write!(f, "{method}({})", args.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_slug_and_genericity() {
        let generic = ContextClause::default();
        assert!(generic.is_generic());
        assert_eq!(generic.slug(), "*:*:*");

        let juliano = ContextClause {
            user: Some("juliano".into()),
            category: None,
            application: Some("pole_manager".into()),
            extras: vec![],
        };
        assert!(!juliano.is_generic());
        assert_eq!(juliano.slug(), "juliano:*:pole_manager");
    }

    #[test]
    fn schema_mode_displays() {
        assert_eq!(SchemaMode::UserDefined.to_string(), "user-defined");
        assert_eq!(SchemaMode::Null.to_string(), "Null");
    }

    #[test]
    fn source_displays() {
        assert_eq!(Source::Path("a.b".into()).to_string(), "a.b");
        assert_eq!(
            Source::MethodCall {
                method: "get_supplier_name".into(),
                args: vec!["pole_supplier".into()]
            }
            .to_string(),
            "get_supplier_name(pole_supplier)"
        );
    }
}
