//! # custlang — the customization language
//!
//! "The customization language is the means for specifying customization
//! rules in a declarative way. A customization directive defined in this
//! language may spawn several customization rules." This crate implements
//! the full pipeline the paper describes (and, for the compiler, lists as
//! future work):
//!
//! 1. [`lexer`] / [`parser`] — the Fig. 3 grammar, with line-numbered
//!    errors;
//! 2. [`analyze`] — semantic checks against the database catalog and the
//!    interface-objects library ("the target user … has knowledge about
//!    the database schema", and the analyzer keeps them honest);
//! 3. [`compile`] — directives → E-C-A rules, one rule per
//!    `Get_Schema` / `Get_Class` / `Get_Value` window level;
//! 4. [`pretty`] — canonical formatting (round-trip safe).
//!
//! The verbatim Fig. 6 program ships as [`parser::FIG6_PROGRAM`].
//!
//! ```
//! use custlang::{compile, parse};
//!
//! let program = parse(custlang::FIG6_PROGRAM).unwrap();
//! let rules = compile(&program, "fig6");
//! assert_eq!(rules.len(), 3); // R1 (schema), R2 (class), R3 (instances)
//! ```

pub mod analyze;
pub mod ast;
pub mod compile;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod store;

pub use analyze::{analyze, is_clean, AnalysisEnv, Diagnostic, Severity, BUILTIN_FORMATS};
pub use ast::{
    AttrClause, AttrDisplay, ClassClause, ContextClause, Directive, Program, SchemaClause,
    SchemaMode, Source,
};
pub use compile::{compile, Customization};
pub use parser::{parse, ParseError, FIG6_PROGRAM};
pub use pretty::pretty;
pub use store::{delete_program, load_programs, load_programs_snap, save_program, RULES_SCHEMA};
