//! Map scenes: the cartographic content of DrawingArea widgets.
//!
//! A scene is a set of labelled shapes in world coordinates plus a
//! viewport; renderers project it into the drawing area's cells (ASCII)
//! or coordinates (SVG).

use std::collections::HashMap;

use geodb::geometry::{Geometry, Rect};
use geodb::instance::Oid;

use crate::widget::WidgetId;

/// One displayed feature.
#[derive(Debug, Clone, PartialEq)]
pub struct MapShape {
    /// Backing database object, when the shape is selectable.
    pub oid: Option<Oid>,
    pub geometry: Geometry,
    pub label: String,
    /// Symbol used by point presentation formats ('•', 'P', …).
    pub symbol: char,
    pub selected: bool,
}

impl MapShape {
    pub fn new(geometry: Geometry) -> MapShape {
        MapShape {
            oid: None,
            geometry,
            label: String::new(),
            symbol: '*',
            selected: false,
        }
    }

    pub fn with_oid(mut self, oid: Oid) -> Self {
        self.oid = Some(oid);
        self
    }

    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    pub fn with_symbol(mut self, symbol: char) -> Self {
        self.symbol = symbol;
        self
    }
}

/// The content of one DrawingArea.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MapScene {
    pub shapes: Vec<MapShape>,
    /// World-coordinate window shown by the area; `None` = fit contents.
    pub viewport: Option<Rect>,
}

impl MapScene {
    pub fn new() -> MapScene {
        MapScene::default()
    }

    pub fn add(&mut self, shape: MapShape) {
        self.shapes.push(shape);
    }

    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// The effective viewport: explicit, else the bbox of the contents
    /// (slightly inflated so edge shapes stay visible), else a unit box.
    pub fn effective_viewport(&self) -> Rect {
        if let Some(v) = self.viewport {
            return v;
        }
        let bbox = self
            .shapes
            .iter()
            .fold(Rect::empty(), |acc, s| acc.union(&s.geometry.bbox()));
        if bbox.is_empty() {
            Rect::new(0.0, 0.0, 1.0, 1.0)
        } else {
            // Degenerate (single point) boxes still need extent.
            let pad = (bbox.width().max(bbox.height()) * 0.05).max(1.0);
            bbox.inflate(pad)
        }
    }

    /// Shape nearest to a world point within `max_dist` — hit-testing for
    /// the "user selects an instance in the graphical area" interaction.
    pub fn hit_test(&self, p: &geodb::geometry::Point, max_dist: f64) -> Option<&MapShape> {
        self.shapes
            .iter()
            .map(|s| (s.geometry.distance_to_point(p), s))
            .filter(|(d, _)| *d <= max_dist)
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, s)| s)
    }
}

/// Scenes attached to DrawingArea widgets of one tree.
pub type SceneMap = HashMap<WidgetId, MapScene>;

#[cfg(test)]
mod tests {
    use super::*;
    use geodb::geometry::{Point, Polyline};

    fn pt(x: f64, y: f64) -> Geometry {
        Geometry::Point(Point::new(x, y))
    }

    #[test]
    fn viewport_fits_contents() {
        let mut scene = MapScene::new();
        scene.add(MapShape::new(pt(0.0, 0.0)));
        scene.add(MapShape::new(pt(100.0, 50.0)));
        let v = scene.effective_viewport();
        assert!(v.contains_point(&Point::new(0.0, 0.0)));
        assert!(v.contains_point(&Point::new(100.0, 50.0)));
    }

    #[test]
    fn explicit_viewport_wins() {
        let mut scene = MapScene::new();
        scene.add(MapShape::new(pt(1000.0, 1000.0)));
        scene.viewport = Some(Rect::new(0.0, 0.0, 10.0, 10.0));
        assert_eq!(scene.effective_viewport(), Rect::new(0.0, 0.0, 10.0, 10.0));
    }

    #[test]
    fn empty_scene_has_unit_viewport() {
        assert_eq!(
            MapScene::new().effective_viewport(),
            Rect::new(0.0, 0.0, 1.0, 1.0)
        );
    }

    #[test]
    fn single_point_viewport_is_not_degenerate() {
        let mut scene = MapScene::new();
        scene.add(MapShape::new(pt(5.0, 5.0)));
        let v = scene.effective_viewport();
        assert!(v.width() > 0.0 && v.height() > 0.0);
    }

    #[test]
    fn hit_test_picks_nearest_within_radius() {
        let mut scene = MapScene::new();
        scene.add(MapShape::new(pt(0.0, 0.0)).with_oid(Oid(1)));
        scene.add(MapShape::new(pt(10.0, 0.0)).with_oid(Oid(2)));
        let hit = scene.hit_test(&Point::new(9.0, 0.5), 2.0).unwrap();
        assert_eq!(hit.oid, Some(Oid(2)));
        assert!(scene.hit_test(&Point::new(5.0, 50.0), 2.0).is_none());
    }

    #[test]
    fn hit_test_works_on_lines() {
        let mut scene = MapScene::new();
        let line = Geometry::Polyline(
            Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]).unwrap(),
        );
        scene.add(MapShape::new(line).with_oid(Oid(7)));
        let hit = scene.hit_test(&Point::new(5.0, 0.4), 1.0).unwrap();
        assert_eq!(hit.oid, Some(Oid(7)));
    }
}
