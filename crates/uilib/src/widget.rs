//! Widget nodes and the kernel kinds of paper Fig. 2.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Identifier of a widget within one [`crate::tree::WidgetTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WidgetId(pub u32);

impl std::fmt::Display for WidgetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// The eight kernel classes of interface objects (paper Fig. 2):
/// "Window … Panel … Text, Drawing Area, List, Button, Menu, Menu Item."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WidgetKind {
    /// Root of every interface: "every visual interface uses some kind of
    /// window to interact with the user".
    Window,
    /// Groups "functionally related interface components"; recursive.
    Panel,
    /// Text field.
    Text,
    /// Cartographic display area.
    DrawingArea,
    /// Selection list.
    List,
    /// Push button.
    Button,
    /// Menu bar / popup menu.
    Menu,
    /// Entry within a menu.
    MenuItem,
}

impl WidgetKind {
    pub const ALL: [WidgetKind; 8] = [
        WidgetKind::Window,
        WidgetKind::Panel,
        WidgetKind::Text,
        WidgetKind::DrawingArea,
        WidgetKind::List,
        WidgetKind::Button,
        WidgetKind::Menu,
        WidgetKind::MenuItem,
    ];

    /// May a child of kind `child` be composed under `self`?
    ///
    /// Encodes the aggregation arrows of Fig. 2: a Window aggregates
    /// Panels; Panels aggregate every basic class *and other Panels*
    /// (the recursive relationship); Menus aggregate MenuItems.
    pub fn accepts_child(&self, child: WidgetKind) -> bool {
        match self {
            WidgetKind::Window => matches!(child, WidgetKind::Panel | WidgetKind::Menu),
            WidgetKind::Panel => !matches!(child, WidgetKind::Window | WidgetKind::MenuItem),
            WidgetKind::Menu => matches!(child, WidgetKind::MenuItem),
            _ => false,
        }
    }

    /// Kernel class name as the library registers it.
    pub fn class_name(&self) -> &'static str {
        match self {
            WidgetKind::Window => "Window",
            WidgetKind::Panel => "Panel",
            WidgetKind::Text => "Text",
            WidgetKind::DrawingArea => "DrawingArea",
            WidgetKind::List => "List",
            WidgetKind::Button => "Button",
            WidgetKind::Menu => "Menu",
            WidgetKind::MenuItem => "MenuItem",
        }
    }
}

impl std::fmt::Display for WidgetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.class_name())
    }
}

/// A widget property value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Prop {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    /// Items of a List widget.
    Items(Vec<String>),
}

impl Prop {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Prop::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Prop::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Prop::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_items(&self) -> Option<&[String]> {
        match self {
            Prop::Items(v) => Some(v),
            _ => None,
        }
    }
}

impl From<&str> for Prop {
    fn from(s: &str) -> Prop {
        Prop::Str(s.to_string())
    }
}
impl From<String> for Prop {
    fn from(s: String) -> Prop {
        Prop::Str(s)
    }
}
impl From<i64> for Prop {
    fn from(i: i64) -> Prop {
        Prop::Int(i)
    }
}
impl From<f64> for Prop {
    fn from(x: f64) -> Prop {
        Prop::Float(x)
    }
}
impl From<bool> for Prop {
    fn from(b: bool) -> Prop {
        Prop::Bool(b)
    }
}
impl From<Vec<String>> for Prop {
    fn from(v: Vec<String>) -> Prop {
        Prop::Items(v)
    }
}

/// A widget instance: one node of the composition tree.
///
/// `class` names the library class it was instantiated from (kernel or
/// user-defined specialization); `kind` is the kernel kind it bottoms out
/// in. Event bindings map gesture names ("click", "select") to callback
/// names resolved by the [`crate::callback::CallbackTable`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Widget {
    pub id: WidgetId,
    /// Stable name within its parent (used in paths).
    pub name: String,
    pub class: String,
    pub kind: WidgetKind,
    pub props: BTreeMap<String, Prop>,
    pub callbacks: BTreeMap<String, String>,
    pub children: Vec<WidgetId>,
}

impl Widget {
    pub fn prop(&self, key: &str) -> Option<&Prop> {
        self.props.get(key)
    }

    /// String property, with "" default.
    pub fn text(&self, key: &str) -> &str {
        self.props.get(key).and_then(Prop::as_str).unwrap_or("")
    }

    pub fn set_prop(&mut self, key: impl Into<String>, value: impl Into<Prop>) {
        self.props.insert(key.into(), value.into());
    }

    /// Bind a gesture to a named callback.
    pub fn on(&mut self, gesture: impl Into<String>, callback: impl Into<String>) {
        self.callbacks.insert(gesture.into(), callback.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_rules_match_fig2() {
        use WidgetKind::*;
        assert!(Window.accepts_child(Panel));
        assert!(Window.accepts_child(Menu));
        assert!(!Window.accepts_child(Button)); // buttons live in panels
        assert!(Panel.accepts_child(Panel)); // the recursive relationship
        assert!(Panel.accepts_child(Button));
        assert!(Panel.accepts_child(DrawingArea));
        assert!(!Panel.accepts_child(Window));
        assert!(!Panel.accepts_child(MenuItem));
        assert!(Menu.accepts_child(MenuItem));
        assert!(!Menu.accepts_child(Button));
        assert!(!Button.accepts_child(Text)); // leaves accept nothing
    }

    #[test]
    fn kernel_has_eight_classes() {
        assert_eq!(WidgetKind::ALL.len(), 8);
        let names: Vec<&str> = WidgetKind::ALL.iter().map(|k| k.class_name()).collect();
        assert_eq!(
            names,
            vec![
                "Window",
                "Panel",
                "Text",
                "DrawingArea",
                "List",
                "Button",
                "Menu",
                "MenuItem"
            ]
        );
    }

    #[test]
    fn prop_conversions_and_accessors() {
        let mut w = Widget {
            id: WidgetId(1),
            name: "b".into(),
            class: "Button".into(),
            kind: WidgetKind::Button,
            props: BTreeMap::new(),
            callbacks: BTreeMap::new(),
            children: vec![],
        };
        w.set_prop("label", "OK");
        w.set_prop("width", 12i64);
        w.set_prop("enabled", true);
        w.set_prop("items", vec!["a".to_string(), "b".to_string()]);
        assert_eq!(w.text("label"), "OK");
        assert_eq!(w.prop("width").unwrap().as_int(), Some(12));
        assert_eq!(w.prop("enabled").unwrap().as_bool(), Some(true));
        assert_eq!(w.prop("items").unwrap().as_items().unwrap().len(), 2);
        assert_eq!(w.text("missing"), "");
        assert_eq!(w.prop("label").unwrap().as_int(), None);
    }

    #[test]
    fn callback_binding() {
        let mut w = Widget {
            id: WidgetId(1),
            name: "b".into(),
            class: "Button".into(),
            kind: WidgetKind::Button,
            props: BTreeMap::new(),
            callbacks: BTreeMap::new(),
            children: vec![],
        };
        w.on("click", "open_schema");
        assert_eq!(
            w.callbacks.get("click").map(String::as_str),
            Some("open_schema")
        );
    }
}
