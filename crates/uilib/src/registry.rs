//! The interface-objects library: a registry of widget classes.
//!
//! "The library contains the definition and generic behavior of interface
//! objects … it is possible to add classes to it, which corresponds to the
//! incorporation of new interface elements. Alternatively, it is possible
//! to specialize existing classes, redefining and customizing their
//! elements." Classes added here are what the customization language
//! refers to by name (`poleWidget`, `composed_text`, `pointFormat`).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::widget::{Prop, Widget, WidgetId, WidgetKind};

/// Errors from library operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LibraryError {
    UnknownClass(String),
    DuplicateClass(String),
    /// Specialization parent does not exist.
    UnknownParent {
        class: String,
        parent: String,
    },
}

impl std::fmt::Display for LibraryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LibraryError::UnknownClass(c) => write!(f, "unknown widget class `{c}`"),
            LibraryError::DuplicateClass(c) => write!(f, "duplicate widget class `{c}`"),
            LibraryError::UnknownParent { class, parent } => {
                write!(f, "class `{class}` extends unknown parent `{parent}`")
            }
        }
    }
}

impl std::error::Error for LibraryError {}

/// A widget class: kernel or user-defined specialization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WidgetClass {
    pub name: String,
    /// Parent class (kernel classes have none).
    pub parent: Option<String>,
    /// Kernel kind this class bottoms out in.
    pub kind: WidgetKind,
    /// Default property values (override the parent's).
    pub defaults: BTreeMap<String, Prop>,
    /// Default callback bindings (override the parent's).
    pub callbacks: BTreeMap<String, String>,
    pub doc: String,
}

/// The widget class registry.
#[derive(Debug, Clone)]
pub struct Library {
    classes: BTreeMap<String, WidgetClass>,
}

impl Default for Library {
    fn default() -> Self {
        Library::with_kernel()
    }
}

impl Library {
    /// An empty library (no kernel classes) — used by the persistence
    /// loader.
    pub fn empty() -> Library {
        Library {
            classes: BTreeMap::new(),
        }
    }

    /// A library pre-populated with the eight kernel classes of Fig. 2.
    pub fn with_kernel() -> Library {
        let mut lib = Library::empty();
        for kind in WidgetKind::ALL {
            lib.classes.insert(
                kind.class_name().to_string(),
                WidgetClass {
                    name: kind.class_name().to_string(),
                    parent: None,
                    kind,
                    defaults: BTreeMap::new(),
                    callbacks: BTreeMap::new(),
                    doc: format!("kernel class {kind}"),
                },
            );
        }
        lib
    }

    pub fn len(&self) -> usize {
        self.classes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    pub fn contains(&self, name: &str) -> bool {
        self.classes.contains_key(name)
    }

    pub fn get(&self, name: &str) -> Result<&WidgetClass, LibraryError> {
        self.classes
            .get(name)
            .ok_or_else(|| LibraryError::UnknownClass(name.to_string()))
    }

    /// Iterate classes in name order.
    pub fn classes(&self) -> impl Iterator<Item = &WidgetClass> {
        self.classes.values()
    }

    /// Register a brand-new class (must specialize an existing one).
    pub fn define(&mut self, class: WidgetClass) -> Result<(), LibraryError> {
        if self.classes.contains_key(&class.name) {
            return Err(LibraryError::DuplicateClass(class.name));
        }
        if let Some(p) = &class.parent {
            if !self.classes.contains_key(p) {
                return Err(LibraryError::UnknownParent {
                    class: class.name.clone(),
                    parent: p.clone(),
                });
            }
        }
        self.classes.insert(class.name.clone(), class);
        Ok(())
    }

    /// Convenience: specialize `parent` under a new name with extra
    /// defaults (the common customization-language path).
    pub fn specialize(
        &mut self,
        name: impl Into<String>,
        parent: &str,
        defaults: Vec<(String, Prop)>,
    ) -> Result<(), LibraryError> {
        let name = name.into();
        let parent_class = self.get(parent)?.clone();
        self.define(WidgetClass {
            name,
            parent: Some(parent_class.name),
            kind: parent_class.kind,
            defaults: defaults.into_iter().collect(),
            callbacks: BTreeMap::new(),
            doc: String::new(),
        })
    }

    /// Remove a user-defined class (kernel classes cannot be removed).
    pub fn remove(&mut self, name: &str) -> Result<WidgetClass, LibraryError> {
        let is_kernel = WidgetKind::ALL.iter().any(|k| k.class_name() == name);
        if is_kernel {
            return Err(LibraryError::DuplicateClass(format!(
                "kernel class `{name}` cannot be removed"
            )));
        }
        self.classes
            .remove(name)
            .ok_or_else(|| LibraryError::UnknownClass(name.to_string()))
    }

    /// The class and its ancestors, most-derived first.
    pub fn ancestry(&self, name: &str) -> Result<Vec<&WidgetClass>, LibraryError> {
        let mut out = Vec::new();
        let mut cur = self.get(name)?;
        out.push(cur);
        while let Some(p) = &cur.parent {
            cur = self.get(p)?;
            out.push(cur);
            if out.len() > self.classes.len() {
                // Defensive: define() prevents cycles, but belt-and-braces.
                return Err(LibraryError::UnknownClass(format!("cycle at `{name}`")));
            }
        }
        Ok(out)
    }

    /// Effective defaults with inheritance applied (derived overrides base).
    #[allow(clippy::type_complexity)]
    pub fn effective_defaults(
        &self,
        name: &str,
    ) -> Result<(BTreeMap<String, Prop>, BTreeMap<String, String>), LibraryError> {
        let chain = self.ancestry(name)?;
        let mut props = BTreeMap::new();
        let mut callbacks = BTreeMap::new();
        for class in chain.iter().rev() {
            props.extend(class.defaults.clone());
            callbacks.extend(class.callbacks.clone());
        }
        Ok((props, callbacks))
    }

    /// Instantiate a class as a widget node (the tree assigns real ids).
    pub fn instantiate(
        &self,
        class: &str,
        id: WidgetId,
        name: impl Into<String>,
    ) -> Result<Widget, LibraryError> {
        let def = self.get(class)?;
        let (props, callbacks) = self.effective_defaults(class)?;
        Ok(Widget {
            id,
            name: name.into(),
            class: def.name.clone(),
            kind: def.kind,
            props,
            callbacks,
            children: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_library_has_eight_classes() {
        let lib = Library::with_kernel();
        assert_eq!(lib.len(), 8);
        assert!(lib.contains("Window"));
        assert!(lib.contains("MenuItem"));
    }

    #[test]
    fn define_and_instantiate_specialization() {
        let mut lib = Library::with_kernel();
        // The paper's poleWidget, "defined as a slider": a specialized
        // Panel rendered as a slider control.
        lib.specialize("slider", "Panel", vec![("style".into(), "slider".into())])
            .unwrap();
        lib.specialize("poleWidget", "slider", vec![("range".into(), Prop::Int(4))])
            .unwrap();

        let w = lib
            .instantiate("poleWidget", WidgetId(1), "pole_ctl")
            .unwrap();
        assert_eq!(w.kind, WidgetKind::Panel);
        assert_eq!(w.class, "poleWidget");
        // Inherited default from `slider` plus its own.
        assert_eq!(w.text("style"), "slider");
        assert_eq!(w.prop("range").unwrap().as_int(), Some(4));
    }

    #[test]
    fn derived_defaults_override_base() {
        let mut lib = Library::with_kernel();
        lib.specialize("base", "Button", vec![("label".into(), "base".into())])
            .unwrap();
        lib.specialize("derived", "base", vec![("label".into(), "derived".into())])
            .unwrap();
        let w = lib.instantiate("derived", WidgetId(1), "b").unwrap();
        assert_eq!(w.text("label"), "derived");
    }

    #[test]
    fn errors_are_reported() {
        let mut lib = Library::with_kernel();
        assert!(matches!(
            lib.get("nope"),
            Err(LibraryError::UnknownClass(_))
        ));
        assert!(matches!(
            lib.specialize("x", "nope", vec![]),
            Err(LibraryError::UnknownClass(_))
        ));
        lib.specialize("x", "Panel", vec![]).unwrap();
        assert!(matches!(
            lib.specialize("x", "Panel", vec![]),
            Err(LibraryError::DuplicateClass(_))
        ));
        let orphan = WidgetClass {
            name: "orphan".into(),
            parent: Some("ghost".into()),
            kind: WidgetKind::Panel,
            defaults: BTreeMap::new(),
            callbacks: BTreeMap::new(),
            doc: String::new(),
        };
        assert!(matches!(
            lib.define(orphan),
            Err(LibraryError::UnknownParent { .. })
        ));
    }

    #[test]
    fn kernel_classes_cannot_be_removed() {
        let mut lib = Library::with_kernel();
        assert!(lib.remove("Window").is_err());
        lib.specialize("mine", "Panel", vec![]).unwrap();
        assert!(lib.remove("mine").is_ok());
        assert!(!lib.contains("mine"));
    }

    #[test]
    fn ancestry_walks_to_kernel() {
        let mut lib = Library::with_kernel();
        lib.specialize("a", "Panel", vec![]).unwrap();
        lib.specialize("b", "a", vec![]).unwrap();
        let names: Vec<&str> = lib
            .ancestry("b")
            .unwrap()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, vec!["b", "a", "Panel"]);
    }

    #[test]
    fn callback_defaults_inherit() {
        let mut lib = Library::with_kernel();
        let mut class = WidgetClass {
            name: "actionButton".into(),
            parent: Some("Button".into()),
            kind: WidgetKind::Button,
            defaults: BTreeMap::new(),
            callbacks: BTreeMap::new(),
            doc: String::new(),
        };
        class.callbacks.insert("click".into(), "do_action".into());
        lib.define(class).unwrap();
        let w = lib.instantiate("actionButton", WidgetId(9), "go").unwrap();
        assert_eq!(
            w.callbacks.get("click").map(String::as_str),
            Some("do_action")
        );
    }
}
