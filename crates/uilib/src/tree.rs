//! The widget composition tree.
//!
//! An arena of [`Widget`] nodes rooted at a Window, enforcing the
//! composition rules of Fig. 2. Paths like `class_window/control/show`
//! address widgets by their names along the tree.

use std::collections::HashMap;

use crate::registry::{Library, LibraryError};
use crate::widget::{Widget, WidgetId, WidgetKind};

/// Errors from tree manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    UnknownWidget(WidgetId),
    UnknownPath(String),
    /// Composition rule violation (e.g. Button under Window).
    BadComposition {
        parent: WidgetKind,
        child: WidgetKind,
    },
    /// The root must be a Window.
    BadRoot(WidgetKind),
    /// Sibling names must be unique for paths to be unambiguous.
    DuplicateName {
        parent: WidgetId,
        name: String,
    },
    Library(LibraryError),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::UnknownWidget(id) => write!(f, "unknown widget {id}"),
            TreeError::UnknownPath(p) => write!(f, "unknown widget path `{p}`"),
            TreeError::BadComposition { parent, child } => {
                write!(f, "a {parent} cannot contain a {child}")
            }
            TreeError::BadRoot(k) => write!(f, "tree root must be a Window, got {k}"),
            TreeError::DuplicateName { parent, name } => {
                write!(f, "widget {parent} already has a child named `{name}`")
            }
            TreeError::Library(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TreeError {}

impl From<LibraryError> for TreeError {
    fn from(e: LibraryError) -> TreeError {
        TreeError::Library(e)
    }
}

/// A tree of widgets rooted at a Window.
#[derive(Debug, Clone)]
pub struct WidgetTree {
    nodes: HashMap<WidgetId, Widget>,
    parent: HashMap<WidgetId, WidgetId>,
    root: WidgetId,
    next_id: u32,
}

impl WidgetTree {
    /// Create a tree whose root is an instance of `window_class`.
    pub fn new(
        library: &Library,
        window_class: &str,
        name: impl Into<String>,
    ) -> Result<WidgetTree, TreeError> {
        let root_id = WidgetId(0);
        let root = library.instantiate(window_class, root_id, name)?;
        if root.kind != WidgetKind::Window {
            return Err(TreeError::BadRoot(root.kind));
        }
        let mut nodes = HashMap::new();
        nodes.insert(root_id, root);
        Ok(WidgetTree {
            nodes,
            parent: HashMap::new(),
            root: root_id,
            next_id: 1,
        })
    }

    pub fn root(&self) -> WidgetId {
        self.root
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn get(&self, id: WidgetId) -> Result<&Widget, TreeError> {
        self.nodes.get(&id).ok_or(TreeError::UnknownWidget(id))
    }

    pub fn get_mut(&mut self, id: WidgetId) -> Result<&mut Widget, TreeError> {
        self.nodes.get_mut(&id).ok_or(TreeError::UnknownWidget(id))
    }

    pub fn parent_of(&self, id: WidgetId) -> Option<WidgetId> {
        self.parent.get(&id).copied()
    }

    /// Instantiate `class` from the library and attach it under `parent`.
    pub fn add(
        &mut self,
        library: &Library,
        parent: WidgetId,
        class: &str,
        name: impl Into<String>,
    ) -> Result<WidgetId, TreeError> {
        let name = name.into();
        let id = WidgetId(self.next_id);
        let child = library.instantiate(class, id, name.clone())?;
        let parent_widget = self.get(parent)?;
        if !parent_widget.kind.accepts_child(child.kind) {
            return Err(TreeError::BadComposition {
                parent: parent_widget.kind,
                child: child.kind,
            });
        }
        if parent_widget
            .children
            .iter()
            .any(|&c| self.nodes[&c].name == name)
        {
            return Err(TreeError::DuplicateName { parent, name });
        }
        self.next_id += 1;
        self.nodes.insert(id, child);
        self.nodes
            .get_mut(&parent)
            .expect("parent checked")
            .children
            .push(id);
        self.parent.insert(id, parent);
        Ok(id)
    }

    /// Remove a widget and its whole subtree; returns removed count.
    ///
    /// "they can be inserted, updated and removed dynamically."
    pub fn remove(&mut self, id: WidgetId) -> Result<usize, TreeError> {
        if id == self.root {
            return Err(TreeError::BadRoot(WidgetKind::Window));
        }
        self.get(id)?;
        // Detach from parent.
        if let Some(p) = self.parent.remove(&id) {
            if let Some(pw) = self.nodes.get_mut(&p) {
                pw.children.retain(|&c| c != id);
            }
        }
        // Collect the subtree.
        let mut stack = vec![id];
        let mut removed = 0;
        while let Some(cur) = stack.pop() {
            if let Some(w) = self.nodes.remove(&cur) {
                removed += 1;
                stack.extend(w.children);
                self.parent.remove(&cur);
            }
        }
        Ok(removed)
    }

    /// Slash-separated path from the root, e.g.
    /// `class_window/control/show` (root's own name is excluded).
    pub fn path_of(&self, id: WidgetId) -> Result<String, TreeError> {
        self.get(id)?;
        let mut parts = Vec::new();
        let mut cur = id;
        while cur != self.root {
            parts.push(self.nodes[&cur].name.clone());
            cur = *self.parent.get(&cur).ok_or(TreeError::UnknownWidget(cur))?;
        }
        parts.push(self.nodes[&self.root].name.clone());
        parts.reverse();
        Ok(parts.join("/"))
    }

    /// Resolve a path produced by [`Self::path_of`].
    pub fn find(&self, path: &str) -> Result<WidgetId, TreeError> {
        let mut parts = path.split('/');
        let root_name = parts
            .next()
            .ok_or_else(|| TreeError::UnknownPath(path.to_string()))?;
        if self.nodes[&self.root].name != root_name {
            return Err(TreeError::UnknownPath(path.to_string()));
        }
        let mut cur = self.root;
        for part in parts {
            let next = self.nodes[&cur]
                .children
                .iter()
                .copied()
                .find(|c| self.nodes[c].name == part)
                .ok_or_else(|| TreeError::UnknownPath(path.to_string()))?;
            cur = next;
        }
        Ok(cur)
    }

    /// Depth-first pre-order traversal.
    pub fn walk(&self) -> Vec<WidgetId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            out.push(id);
            // Push in reverse so children visit in declaration order.
            for &c in self.nodes[&id].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All widgets of a kernel kind, in traversal order.
    pub fn of_kind(&self, kind: WidgetKind) -> Vec<WidgetId> {
        self.walk()
            .into_iter()
            .filter(|id| self.nodes[id].kind == kind)
            .collect()
    }

    /// Indented structural dump (used in tests and the quickstart demo).
    pub fn outline(&self) -> String {
        fn rec(tree: &WidgetTree, id: WidgetId, depth: usize, out: &mut String) {
            let w = &tree.nodes[&id];
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("{} [{}] \"{}\"\n", w.kind, w.class, w.name));
            for &c in &w.children {
                rec(tree, c, depth + 1, out);
            }
        }
        let mut s = String::new();
        rec(self, self.root, 0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> Library {
        Library::with_kernel()
    }

    fn sample_tree() -> (Library, WidgetTree) {
        let lib = lib();
        let mut t = WidgetTree::new(&lib, "Window", "class_window").unwrap();
        let control = t.add(&lib, t.root(), "Panel", "control").unwrap();
        let display = t.add(&lib, t.root(), "Panel", "display").unwrap();
        t.add(&lib, control, "Button", "show").unwrap();
        t.add(&lib, control, "Button", "close").unwrap();
        t.add(&lib, display, "DrawingArea", "map").unwrap();
        (lib, t)
    }

    #[test]
    fn root_must_be_window() {
        let lib = lib();
        assert!(matches!(
            WidgetTree::new(&lib, "Button", "x"),
            Err(TreeError::BadRoot(WidgetKind::Button))
        ));
    }

    #[test]
    fn composition_rules_enforced() {
        let lib = lib();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        // Button directly under Window violates Fig. 2.
        assert!(matches!(
            t.add(&lib, t.root(), "Button", "b"),
            Err(TreeError::BadComposition { .. })
        ));
        let menu = t.add(&lib, t.root(), "Menu", "menu").unwrap();
        t.add(&lib, menu, "MenuItem", "open").unwrap();
        assert!(t.add(&lib, menu, "Button", "b").is_err());
    }

    #[test]
    fn sibling_names_must_be_unique() {
        let lib = lib();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        let p = t.add(&lib, t.root(), "Panel", "p").unwrap();
        t.add(&lib, p, "Button", "b").unwrap();
        assert!(matches!(
            t.add(&lib, p, "Button", "b"),
            Err(TreeError::DuplicateName { .. })
        ));
        // Same name under a different parent is fine.
        let p2 = t.add(&lib, t.root(), "Panel", "p2").unwrap();
        t.add(&lib, p2, "Button", "b").unwrap();
    }

    #[test]
    fn paths_round_trip() {
        let (_, t) = sample_tree();
        for id in t.walk() {
            let path = t.path_of(id).unwrap();
            assert_eq!(t.find(&path).unwrap(), id, "path `{path}`");
        }
        assert!(t.find("class_window/control/missing").is_err());
        assert!(t.find("wrong_root").is_err());
    }

    #[test]
    fn walk_is_preorder_in_declaration_order() {
        let (_, t) = sample_tree();
        let names: Vec<String> = t
            .walk()
            .iter()
            .map(|&id| t.get(id).unwrap().name.clone())
            .collect();
        assert_eq!(
            names,
            vec!["class_window", "control", "show", "close", "display", "map"]
        );
    }

    #[test]
    fn remove_subtree() {
        let (_, mut t) = sample_tree();
        let control = t.find("class_window/control").unwrap();
        let removed = t.remove(control).unwrap();
        assert_eq!(removed, 3); // panel + two buttons
        assert_eq!(t.len(), 3);
        assert!(t.find("class_window/control/show").is_err());
        // Root cannot be removed.
        assert!(t.remove(t.root()).is_err());
        // Removing twice fails.
        assert!(t.remove(control).is_err());
    }

    #[test]
    fn of_kind_filters() {
        let (_, t) = sample_tree();
        assert_eq!(t.of_kind(WidgetKind::Button).len(), 2);
        assert_eq!(t.of_kind(WidgetKind::DrawingArea).len(), 1);
        assert_eq!(t.of_kind(WidgetKind::Menu).len(), 0);
    }

    #[test]
    fn nested_panels_compose() {
        // "The recursive relationship allows the specification of complex
        // control panels using other panels" — the map-selection panel
        // example from Section 3.2.
        let lib = lib();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        let outer = t.add(&lib, t.root(), "Panel", "map_selection").unwrap();
        let lists = t.add(&lib, outer, "Panel", "lists").unwrap();
        t.add(&lib, lists, "List", "maps").unwrap();
        t.add(&lib, lists, "Text", "region_name").unwrap();
        let ops = t.add(&lib, outer, "Panel", "ops").unwrap();
        t.add(&lib, ops, "Button", "load").unwrap();
        assert_eq!(t.len(), 7);
        let outline = t.outline();
        assert!(outline.contains("Panel [Panel] \"map_selection\""));
        assert!(outline.contains("    List [List] \"maps\""));
    }
}
