//! Library persistence *inside the geographic database*.
//!
//! "This mechanism is based on the active database paradigm, associated
//! with a **database library of interface objects**" — the widget classes
//! are themselves rows in the DBMS. This module maps a [`Library`] to a
//! `ui_library` schema and back.

use std::collections::BTreeMap;

use geodb::db::Database;
use geodb::error::{GeoDbError, Result};
use geodb::schema::{ClassDef, SchemaDef};
use geodb::value::{AttrType, Value};

use crate::registry::{Library, WidgetClass};
use crate::widget::WidgetKind;

/// Name of the schema holding the interface objects library.
pub const LIBRARY_SCHEMA: &str = "ui_library";
const CLASS: &str = "InterfaceObject";

/// The catalog schema for stored widget classes.
pub fn library_schema() -> SchemaDef {
    SchemaDef::new(LIBRARY_SCHEMA).class(
        ClassDef::new(CLASS)
            .attr("name", AttrType::Text)
            .attr("kind", AttrType::Text)
            .optional_attr("parent", AttrType::Text)
            .attr("defaults_json", AttrType::Text)
            .attr("callbacks_json", AttrType::Text)
            .optional_attr("doc", AttrType::Text)
            .doc("A widget class of the interface objects library"),
    )
}

fn kind_from_str(s: &str) -> Result<WidgetKind> {
    WidgetKind::ALL
        .iter()
        .copied()
        .find(|k| k.class_name() == s)
        .ok_or_else(|| GeoDbError::InvalidQuery(format!("unknown widget kind `{s}`")))
}

/// Store every class of `library` into `db` (registering the schema on
/// first use; the previous stored library is replaced).
pub fn save_library(db: &mut Database, library: &Library) -> Result<()> {
    if db.catalog().schema(LIBRARY_SCHEMA).is_err() {
        db.register_schema(library_schema())?;
    } else {
        // Replace: delete existing stored classes.
        let existing = db.get_class(LIBRARY_SCHEMA, CLASS, false)?;
        for inst in existing {
            db.delete(inst.oid)?;
        }
    }
    for class in library.classes() {
        let defaults = serde_json::to_string(&class.defaults)
            .map_err(|e| GeoDbError::Snapshot(e.to_string()))?;
        let callbacks = serde_json::to_string(&class.callbacks)
            .map_err(|e| GeoDbError::Snapshot(e.to_string()))?;
        let mut values = vec![
            ("name".into(), class.name.clone().into()),
            ("kind".into(), class.kind.class_name().into()),
            ("defaults_json".into(), defaults.into()),
            ("callbacks_json".into(), callbacks.into()),
            ("doc".into(), class.doc.clone().into()),
        ];
        if let Some(p) = &class.parent {
            values.push(("parent".into(), p.clone().into()));
        }
        db.insert(LIBRARY_SCHEMA, CLASS, values)?;
    }
    db.drain_events();
    Ok(())
}

/// Load the stored library from `db`.
///
/// Classes are inserted parents-first so `define`'s referential check
/// holds regardless of storage order.
pub fn load_library(db: &mut Database) -> Result<Library> {
    let rows = db.get_class(LIBRARY_SCHEMA, CLASS, false)?;
    let mut pending: Vec<WidgetClass> = rows
        .iter()
        .map(|inst| {
            let get_text = |attr: &str| -> String {
                match inst.get(attr) {
                    Value::Text(s) => s.clone(),
                    _ => String::new(),
                }
            };
            let defaults: BTreeMap<String, crate::widget::Prop> =
                serde_json::from_str(&get_text("defaults_json"))
                    .map_err(|e| GeoDbError::Snapshot(e.to_string()))?;
            let callbacks: BTreeMap<String, String> =
                serde_json::from_str(&get_text("callbacks_json"))
                    .map_err(|e| GeoDbError::Snapshot(e.to_string()))?;
            let parent = match inst.get("parent") {
                Value::Text(s) => Some(s.clone()),
                _ => None,
            };
            Ok(WidgetClass {
                name: get_text("name"),
                parent,
                kind: kind_from_str(&get_text("kind"))?,
                defaults,
                callbacks,
                doc: get_text("doc"),
            })
        })
        .collect::<Result<_>>()?;

    let mut library = Library::empty();
    // Topological insertion: repeatedly add classes whose parent exists.
    while !pending.is_empty() {
        let before = pending.len();
        pending.retain(|class| {
            let ready = class
                .parent
                .as_ref()
                .map(|p| library.contains(p))
                .unwrap_or(true);
            if ready {
                library
                    .define(class.clone())
                    .expect("parent present and names unique in storage");
                false
            } else {
                true
            }
        });
        if pending.len() == before {
            return Err(GeoDbError::Snapshot(format!(
                "stored library has dangling parents: {:?}",
                pending.iter().map(|c| c.name.clone()).collect::<Vec<_>>()
            )));
        }
    }
    db.drain_events();
    Ok(library)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::widget::Prop;

    #[test]
    fn round_trip_preserves_classes() {
        let mut lib = Library::with_kernel();
        lib.specialize("slider", "Panel", vec![("style".into(), "slider".into())])
            .unwrap();
        lib.specialize("poleWidget", "slider", vec![("range".into(), Prop::Int(4))])
            .unwrap();

        let mut db = Database::new("GEO");
        save_library(&mut db, &lib).unwrap();
        let loaded = load_library(&mut db).unwrap();

        assert_eq!(loaded.len(), lib.len());
        let pw = loaded.get("poleWidget").unwrap();
        assert_eq!(pw.parent.as_deref(), Some("slider"));
        assert_eq!(pw.kind, WidgetKind::Panel);
        let (defaults, _) = loaded.effective_defaults("poleWidget").unwrap();
        assert_eq!(defaults.get("style"), Some(&Prop::Str("slider".into())));
        assert_eq!(defaults.get("range"), Some(&Prop::Int(4)));
    }

    #[test]
    fn save_replaces_previous_library() {
        let mut db = Database::new("GEO");
        let mut lib = Library::with_kernel();
        lib.specialize("v1_only", "Panel", vec![]).unwrap();
        save_library(&mut db, &lib).unwrap();

        let mut lib2 = Library::with_kernel();
        lib2.specialize("v2_only", "Panel", vec![]).unwrap();
        save_library(&mut db, &lib2).unwrap();

        let loaded = load_library(&mut db).unwrap();
        assert!(loaded.contains("v2_only"));
        assert!(!loaded.contains("v1_only"));
        assert_eq!(db.extent_size(LIBRARY_SCHEMA, CLASS), lib2.len());
    }

    #[test]
    fn load_handles_any_storage_order() {
        // Build a 3-deep chain; storage iterates instances in OID order,
        // which here equals alphabetical-insertion order of the library's
        // BTreeMap — "a_child" sorts before its parent "z_base".
        let mut lib = Library::with_kernel();
        lib.specialize("z_base", "Panel", vec![]).unwrap();
        lib.specialize("a_child", "z_base", vec![]).unwrap();
        let mut db = Database::new("GEO");
        save_library(&mut db, &lib).unwrap();
        let loaded = load_library(&mut db).unwrap();
        assert!(loaded.contains("a_child"));
        let names: Vec<&str> = loaded
            .ancestry("a_child")
            .unwrap()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, vec!["a_child", "z_base", "Panel"]);
    }
}
