//! Character-cell box layout.
//!
//! The renderers are headless (see DESIGN.md): widgets lay out on a
//! character grid. Containers stack children vertically or horizontally
//! (`layout` property `"v"` / `"h"`), draw a one-cell border, and size to
//! content unless `width`/`height` properties pin them.

use std::collections::HashMap;

use crate::tree::{TreeError, WidgetTree};
use crate::widget::{Prop, WidgetId, WidgetKind};

/// A placed rectangle in character cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    pub x: i32,
    pub y: i32,
    pub w: i32,
    pub h: i32,
}

impl Bounds {
    pub fn right(&self) -> i32 {
        self.x + self.w
    }

    pub fn bottom(&self) -> i32 {
        self.y + self.h
    }

    pub fn contains(&self, x: i32, y: i32) -> bool {
        x >= self.x && x < self.right() && y >= self.y && y < self.bottom()
    }
}

/// Computed layout: widget id → bounds.
pub type LayoutMap = HashMap<WidgetId, Bounds>;

/// Stacking direction of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    V,
    H,
}

fn dir_of(tree: &WidgetTree, id: WidgetId) -> Dir {
    match tree
        .get(id)
        .ok()
        .and_then(|w| w.prop("layout"))
        .and_then(Prop::as_str)
    {
        Some("h") => Dir::H,
        _ => Dir::V,
    }
}

/// Preferred content size of a leaf widget.
fn leaf_size(tree: &WidgetTree, id: WidgetId) -> (i32, i32) {
    let w = tree.get(id).expect("walked id");
    match w.kind {
        WidgetKind::Button => ((w.text("label").chars().count() as i32 + 4).max(8), 3),
        WidgetKind::Text => {
            let label = w.text("label").chars().count() as i32;
            let value = w.text("value").chars().count() as i32;
            ((label + value + 4).max(20), 3)
        }
        WidgetKind::List => {
            let items = w.prop("items").and_then(Prop::as_items).unwrap_or(&[]);
            let widest = items
                .iter()
                .map(|s| s.chars().count() as i32)
                .max()
                .unwrap_or(0)
                .max(w.text("title").chars().count() as i32);
            ((widest + 4).max(16), items.len() as i32 + 2)
        }
        WidgetKind::DrawingArea => (42, 16),
        WidgetKind::MenuItem => (w.text("label").chars().count() as i32 + 2, 1),
        WidgetKind::Menu => {
            // Horizontal bar of its items.
            let total: i32 = w.children.iter().map(|&c| leaf_size(tree, c).0 + 1).sum();
            (total.max(10), 3)
        }
        // Containers are measured by `measure`, not here.
        WidgetKind::Window | WidgetKind::Panel => (10, 3),
    }
}

/// Bottom-up preferred sizes, honouring explicit width/height props.
fn measure(
    tree: &WidgetTree,
    id: WidgetId,
    sizes: &mut HashMap<WidgetId, (i32, i32)>,
) -> (i32, i32) {
    let widget = tree.get(id).expect("walked id");
    let mut size = match widget.kind {
        WidgetKind::Window | WidgetKind::Panel => {
            let dir = dir_of(tree, id);
            let (mut w, mut h) = (0, 0);
            for &c in &widget.children {
                let (cw, ch) = measure(tree, c, sizes);
                match dir {
                    Dir::V => {
                        w = w.max(cw);
                        h += ch;
                    }
                    Dir::H => {
                        w += cw;
                        h = h.max(ch);
                    }
                }
            }
            // Border + title row for windows and titled panels. Windows
            // fall back to their name as the title (as the renderer does).
            let title_text = if widget.text("title").is_empty() && widget.kind == WidgetKind::Window
            {
                widget.name.as_str()
            } else {
                widget.text("title")
            };
            let title = title_text.chars().count() as i32;
            ((w + 2).max(title + 4).max(12), h + 2)
        }
        WidgetKind::Menu => {
            for &c in &widget.children {
                measure(tree, c, sizes);
            }
            let (w, _) = leaf_size(tree, id);
            (w + 2, 3)
        }
        _ => leaf_size(tree, id),
    };
    if let Some(w) = widget.prop("width").and_then(Prop::as_int) {
        size.0 = w as i32;
    }
    if let Some(h) = widget.prop("height").and_then(Prop::as_int) {
        size.1 = h as i32;
    }
    sizes.insert(id, size);
    size
}

fn place(
    tree: &WidgetTree,
    id: WidgetId,
    x: i32,
    y: i32,
    sizes: &HashMap<WidgetId, (i32, i32)>,
    out: &mut LayoutMap,
) {
    let (w, h) = sizes[&id];
    out.insert(id, Bounds { x, y, w, h });
    let widget = tree.get(id).expect("walked id");
    match widget.kind {
        WidgetKind::Window | WidgetKind::Panel => {
            let dir = dir_of(tree, id);
            let mut cx = x + 1;
            let mut cy = y + 1;
            for &c in &widget.children {
                place(tree, c, cx, cy, sizes, out);
                let (cw, ch) = sizes[&c];
                match dir {
                    Dir::V => cy += ch,
                    Dir::H => cx += cw,
                }
            }
        }
        WidgetKind::Menu => {
            let mut cx = x + 1;
            for &c in &widget.children {
                let (cw, _) = sizes[&c];
                out.insert(
                    c,
                    Bounds {
                        x: cx,
                        y: y + 1,
                        w: cw,
                        h: 1,
                    },
                );
                cx += cw + 1;
            }
        }
        _ => {}
    }
}

/// Lay out the whole tree starting at the origin.
pub fn layout(tree: &WidgetTree) -> Result<LayoutMap, TreeError> {
    let mut sizes = HashMap::new();
    measure(tree, tree.root(), &mut sizes);
    let mut map = LayoutMap::new();
    place(tree, tree.root(), 0, 0, &sizes, &mut map);
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Library;

    fn lib() -> Library {
        Library::with_kernel()
    }

    #[test]
    fn children_nest_inside_parents() {
        let lib = lib();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        let p = t.add(&lib, t.root(), "Panel", "p").unwrap();
        let b = t.add(&lib, p, "Button", "b").unwrap();
        t.get_mut(b).unwrap().set_prop("label", "OK");
        let map = layout(&t).unwrap();
        let (wb, pb, bb) = (map[&t.root()], map[&p], map[&b]);
        assert!(wb.contains(pb.x, pb.y));
        assert!(wb.contains(pb.right() - 1, pb.bottom() - 1));
        assert!(pb.contains(bb.x, bb.y));
        assert!(pb.contains(bb.right() - 1, bb.bottom() - 1));
    }

    #[test]
    fn vertical_stacking_is_default() {
        let lib = lib();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        let p = t.add(&lib, t.root(), "Panel", "p").unwrap();
        let b1 = t.add(&lib, p, "Button", "b1").unwrap();
        let b2 = t.add(&lib, p, "Button", "b2").unwrap();
        let map = layout(&t).unwrap();
        assert_eq!(map[&b1].x, map[&b2].x);
        assert_eq!(map[&b2].y, map[&b1].bottom());
    }

    #[test]
    fn horizontal_layout_property() {
        let lib = lib();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        let p = t.add(&lib, t.root(), "Panel", "p").unwrap();
        t.get_mut(p).unwrap().set_prop("layout", "h");
        let b1 = t.add(&lib, p, "Button", "b1").unwrap();
        let b2 = t.add(&lib, p, "Button", "b2").unwrap();
        let map = layout(&t).unwrap();
        assert_eq!(map[&b1].y, map[&b2].y);
        assert_eq!(map[&b2].x, map[&b1].right());
    }

    #[test]
    fn explicit_size_pins_widgets() {
        let lib = lib();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        let p = t.add(&lib, t.root(), "Panel", "p").unwrap();
        let d = t.add(&lib, p, "DrawingArea", "map").unwrap();
        t.get_mut(d).unwrap().set_prop("width", 60i64);
        t.get_mut(d).unwrap().set_prop("height", 24i64);
        let map = layout(&t).unwrap();
        assert_eq!((map[&d].w, map[&d].h), (60, 24));
    }

    #[test]
    fn list_sizes_with_items() {
        let lib = lib();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        let p = t.add(&lib, t.root(), "Panel", "p").unwrap();
        let l = t.add(&lib, p, "List", "classes").unwrap();
        t.get_mut(l).unwrap().set_prop(
            "items",
            vec![
                "Pole".to_string(),
                "Duct".to_string(),
                "District".to_string(),
            ],
        );
        let map = layout(&t).unwrap();
        assert_eq!(map[&l].h, 5); // 3 items + border rows
    }

    #[test]
    fn menu_lays_items_horizontally() {
        let lib = lib();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        let m = t.add(&lib, t.root(), "Menu", "menu").unwrap();
        let i1 = t.add(&lib, m, "MenuItem", "File").unwrap();
        let i2 = t.add(&lib, m, "MenuItem", "Edit").unwrap();
        t.get_mut(i1).unwrap().set_prop("label", "File");
        t.get_mut(i2).unwrap().set_prop("label", "Edit");
        let map = layout(&t).unwrap();
        assert_eq!(map[&i1].y, map[&i2].y);
        assert!(map[&i2].x > map[&i1].x);
    }

    #[test]
    fn window_grows_to_fit_title() {
        let lib = lib();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        t.get_mut(t.root())
            .unwrap()
            .set_prop("title", "A very long window title indeed");
        let map = layout(&t).unwrap();
        assert!(map[&t.root()].w >= 35);
    }
}
