//! SVG renderer: the vector twin of the ASCII renderer, for inspecting
//! generated windows in a browser (`examples/pole_manager.rs --svg`).

use geodb::geometry::Geometry;

use crate::layout::{layout, Bounds};
use crate::scene::{MapScene, SceneMap};
use crate::tree::{TreeError, WidgetTree};
use crate::widget::{Prop, Widget, WidgetKind};

/// Pixels per character cell.
const CELL_W: i32 = 9;
const CELL_H: i32 = 18;

fn px(b: &Bounds) -> (i32, i32, i32, i32) {
    (b.x * CELL_W, b.y * CELL_H, b.w * CELL_W, b.h * CELL_H)
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn rect_el(b: &Bounds, fill: &str, stroke: &str, out: &mut String) {
    let (x, y, w, h) = px(b);
    out.push_str(&format!(
        "<rect x=\"{x}\" y=\"{y}\" width=\"{w}\" height=\"{h}\" fill=\"{fill}\" stroke=\"{stroke}\"/>\n"
    ));
}

fn text_el(x: i32, y: i32, s: &str, out: &mut String) {
    out.push_str(&format!(
        "<text x=\"{x}\" y=\"{y}\" font-family=\"monospace\" font-size=\"13\">{}</text>\n",
        esc(s)
    ));
}

fn draw_scene(scene: &MapScene, area: &Bounds, out: &mut String) {
    let (ax, ay, aw, ah) = px(&Bounds {
        x: area.x + 1,
        y: area.y + 1,
        w: (area.w - 2).max(1),
        h: (area.h - 2).max(1),
    });
    let world = scene.effective_viewport();
    let to_px = |p: &geodb::geometry::Point| -> (f64, f64) {
        let fx = (p.x - world.min.x) / world.width().max(f64::MIN_POSITIVE);
        let fy = (p.y - world.min.y) / world.height().max(f64::MIN_POSITIVE);
        (
            ax as f64 + fx * aw as f64,
            ay as f64 + (1.0 - fy) * ah as f64,
        )
    };
    for shape in &scene.shapes {
        let color = if shape.selected { "#d62728" } else { "#1f77b4" };
        match &shape.geometry {
            Geometry::Point(p) => {
                let (x, y) = to_px(p);
                out.push_str(&format!(
                    "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"3\" fill=\"{color}\"/>\n"
                ));
                if !shape.label.is_empty() {
                    text_el(x as i32 + 5, y as i32 + 4, &shape.label, out);
                }
            }
            Geometry::Polyline(l) => {
                let pts: Vec<String> = l
                    .points()
                    .iter()
                    .map(|p| {
                        let (x, y) = to_px(p);
                        format!("{x:.1},{y:.1}")
                    })
                    .collect();
                out.push_str(&format!(
                    "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>\n",
                    pts.join(" ")
                ));
            }
            Geometry::Polygon(poly) => {
                let pts: Vec<String> = poly
                    .ring()
                    .iter()
                    .map(|p| {
                        let (x, y) = to_px(p);
                        format!("{x:.1},{y:.1}")
                    })
                    .collect();
                out.push_str(&format!(
                    "<polygon points=\"{}\" fill=\"{color}\" fill-opacity=\"0.15\" stroke=\"{color}\"/>\n",
                    pts.join(" ")
                ));
            }
        }
    }
}

fn draw_widget(w: &Widget, b: &Bounds, scenes: &SceneMap, out: &mut String) {
    let (x, y, wpx, _) = px(b);
    match w.kind {
        WidgetKind::Window => {
            rect_el(b, "#fafafa", "#333", out);
            let title = if w.text("title").is_empty() {
                w.name.as_str()
            } else {
                w.text("title")
            };
            text_el(x + 8, y + 14, title, out);
        }
        WidgetKind::Panel => {
            rect_el(b, "none", "#999", out);
            if !w.text("title").is_empty() {
                text_el(x + 8, y + 12, w.text("title"), out);
            }
            if w.text("style") == "slider" {
                let (sx, sy, sw, sh) = px(b);
                let cy = sy + sh / 2;
                out.push_str(&format!(
                    "<line x1=\"{}\" y1=\"{cy}\" x2=\"{}\" y2=\"{cy}\" stroke=\"#666\" stroke-width=\"3\"/>\n",
                    sx + 8,
                    sx + sw - 8
                ));
                let pos = w.prop("slider_pos").and_then(Prop::as_int).unwrap_or(50) as f64 / 100.0;
                let kx = sx as f64 + 8.0 + pos * (sw - 16) as f64;
                out.push_str(&format!(
                    "<circle cx=\"{kx:.0}\" cy=\"{cy}\" r=\"5\" fill=\"#1f77b4\"/>\n"
                ));
            }
        }
        WidgetKind::Button => {
            rect_el(b, "#e8e8e8", "#555", out);
            text_el(x + 8, y + (b.h * CELL_H) / 2 + 5, w.text("label"), out);
        }
        WidgetKind::Text => {
            let s = format!("{}: {}", w.text("label"), w.text("value"));
            text_el(x + 4, y + (b.h * CELL_H) / 2 + 5, &s, out);
        }
        WidgetKind::List => {
            rect_el(b, "#ffffff", "#777", out);
            if !w.text("title").is_empty() {
                text_el(x + 8, y + 12, w.text("title"), out);
            }
            let selected = w.prop("selected").and_then(Prop::as_int).unwrap_or(-1);
            if let Some(items) = w.prop("items").and_then(Prop::as_items) {
                for (i, item) in items.iter().enumerate() {
                    let iy = y + CELL_H * (1 + i as i32) + 12;
                    if i as i64 == selected {
                        out.push_str(&format!(
                            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{CELL_H}\" fill=\"#cce5ff\"/>\n",
                            x + 2,
                            iy - 13,
                            wpx - 4
                        ));
                    }
                    text_el(x + 8, iy, item, out);
                }
            }
        }
        WidgetKind::Menu => {
            rect_el(b, "#f0f0f0", "#888", out);
        }
        WidgetKind::MenuItem => {
            text_el(x + 2, y + 13, w.text("label"), out);
        }
        WidgetKind::DrawingArea => {
            rect_el(b, "#ffffff", "#333", out);
            if let Some(scene) = scenes.get(&w.id) {
                draw_scene(scene, b, out);
            }
        }
    }
}

/// Render a tree (plus scenes) to an SVG document.
pub fn render(tree: &WidgetTree, scenes: &SceneMap) -> Result<String, TreeError> {
    let map = layout(tree)?;
    let root = map[&tree.root()];
    let (_, _, w, h) = px(&root);
    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\">\n"
    );
    for id in tree.walk() {
        let widget = tree.get(id)?;
        if let Some(b) = map.get(&id) {
            draw_widget(widget, b, scenes, &mut out);
        }
    }
    out.push_str("</svg>\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Library;
    use crate::scene::MapShape;
    use geodb::geometry::Point;

    #[test]
    fn produces_valid_looking_svg() {
        let lib = Library::with_kernel();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        t.get_mut(t.root())
            .unwrap()
            .set_prop("title", "Map & Tools");
        let p = t.add(&lib, t.root(), "Panel", "p").unwrap();
        let b = t.add(&lib, p, "Button", "ok").unwrap();
        t.get_mut(b).unwrap().set_prop("label", "OK");
        let out = render(&t, &SceneMap::new()).unwrap();
        assert!(out.starts_with("<svg"));
        assert!(out.ends_with("</svg>\n"));
        assert!(out.contains("<rect"));
        // Title is XML-escaped.
        assert!(out.contains("Map &amp; Tools"));
    }

    #[test]
    fn scene_shapes_appear() {
        let lib = Library::with_kernel();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        let p = t.add(&lib, t.root(), "Panel", "p").unwrap();
        let d = t.add(&lib, p, "DrawingArea", "map").unwrap();
        let mut scenes = SceneMap::new();
        let mut scene = MapScene::new();
        scene.add(MapShape::new(Geometry::Point(Point::new(1.0, 1.0))).with_label("P-1"));
        scenes.insert(d, scene);
        let out = render(&t, &scenes).unwrap();
        assert!(out.contains("<circle"));
        assert!(out.contains("P-1"));
    }

    #[test]
    fn selected_shapes_change_color() {
        let lib = Library::with_kernel();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        let p = t.add(&lib, t.root(), "Panel", "p").unwrap();
        let d = t.add(&lib, p, "DrawingArea", "map").unwrap();
        let mut scenes = SceneMap::new();
        let mut scene = MapScene::new();
        let mut shape = MapShape::new(Geometry::Point(Point::new(1.0, 1.0)));
        shape.selected = true;
        scene.add(shape);
        scenes.insert(d, scene);
        let out = render(&t, &scenes).unwrap();
        assert!(out.contains("#d62728"));
    }
}
