//! ASCII renderer: draws a laid-out widget tree onto a character grid.
//!
//! This is the headless stand-in for the 1997 Motif screens (paper
//! Figs. 4 and 7): every window the system builds can be printed, asserted
//! in tests, and diffed between the default and customized interfaces.

use geodb::geometry::{Geometry, Point};

use crate::layout::{layout, Bounds, LayoutMap};
use crate::scene::{MapScene, SceneMap};
use crate::tree::{TreeError, WidgetTree};
use crate::widget::{Prop, Widget, WidgetKind};

/// A mutable character grid.
pub struct Canvas {
    w: i32,
    h: i32,
    cells: Vec<char>,
}

impl Canvas {
    pub fn new(w: i32, h: i32) -> Canvas {
        Canvas {
            w: w.max(0),
            h: h.max(0),
            cells: vec![' '; (w.max(0) * h.max(0)) as usize],
        }
    }

    pub fn set(&mut self, x: i32, y: i32, c: char) {
        if x >= 0 && x < self.w && y >= 0 && y < self.h {
            self.cells[(y * self.w + x) as usize] = c;
        }
    }

    pub fn get(&self, x: i32, y: i32) -> char {
        if x >= 0 && x < self.w && y >= 0 && y < self.h {
            self.cells[(y * self.w + x) as usize]
        } else {
            ' '
        }
    }

    pub fn text(&mut self, x: i32, y: i32, s: &str) {
        for (i, c) in s.chars().enumerate() {
            self.set(x + i as i32, y, c);
        }
    }

    /// Box-drawing border around `b` (inclusive of its outer cells).
    pub fn border(&mut self, b: &Bounds) {
        if b.w < 2 || b.h < 2 {
            return;
        }
        for x in b.x..b.right() {
            self.set(x, b.y, '-');
            self.set(x, b.bottom() - 1, '-');
        }
        for y in b.y..b.bottom() {
            self.set(b.x, y, '|');
            self.set(b.right() - 1, y, '|');
        }
        self.set(b.x, b.y, '+');
        self.set(b.right() - 1, b.y, '+');
        self.set(b.x, b.bottom() - 1, '+');
        self.set(b.right() - 1, b.bottom() - 1, '+');
    }

    /// Bresenham line.
    pub fn line(&mut self, x0: i32, y0: i32, x1: i32, y1: i32, c: char) {
        let (mut x, mut y) = (x0, y0);
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            self.set(x, y, c);
            if x == x1 && y == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x += sx;
            }
            if e2 <= dx {
                err += dx;
                y += sy;
            }
        }
    }

    /// Render to a string, trimming trailing whitespace per row.
    pub fn to_string_trimmed(&self) -> String {
        let mut out = String::with_capacity((self.w * self.h) as usize);
        for y in 0..self.h {
            let row: String = (0..self.w).map(|x| self.get(x, y)).collect();
            out.push_str(row.trim_end());
            out.push('\n');
        }
        out
    }
}

/// Project world coordinates into the inner cells of a drawing area.
struct Projection {
    world: geodb::geometry::Rect,
    inner: Bounds,
}

impl Projection {
    fn to_cell(&self, p: &Point) -> (i32, i32) {
        let fx = (p.x - self.world.min.x) / self.world.width().max(f64::MIN_POSITIVE);
        let fy = (p.y - self.world.min.y) / self.world.height().max(f64::MIN_POSITIVE);
        let x = self.inner.x + (fx * (self.inner.w - 1) as f64).round() as i32;
        // Screen y grows downward; world y grows upward.
        let y = self.inner.y + ((1.0 - fy) * (self.inner.h - 1) as f64).round() as i32;
        (x, y)
    }
}

fn draw_scene(canvas: &mut Canvas, scene: &MapScene, area: &Bounds) {
    let inner = Bounds {
        x: area.x + 1,
        y: area.y + 1,
        w: (area.w - 2).max(1),
        h: (area.h - 2).max(1),
    };
    let proj = Projection {
        world: scene.effective_viewport(),
        inner,
    };
    for shape in &scene.shapes {
        let symbol = if shape.selected { '#' } else { shape.symbol };
        match &shape.geometry {
            Geometry::Point(p) => {
                let (x, y) = proj.to_cell(p);
                canvas.set(x, y, symbol);
            }
            Geometry::Polyline(l) => {
                for (a, b) in l.segments() {
                    let (x0, y0) = proj.to_cell(a);
                    let (x1, y1) = proj.to_cell(b);
                    canvas.line(x0, y0, x1, y1, symbol);
                }
            }
            Geometry::Polygon(poly) => {
                for (a, b) in poly.edges() {
                    let (x0, y0) = proj.to_cell(a);
                    let (x1, y1) = proj.to_cell(b);
                    canvas.line(x0, y0, x1, y1, symbol);
                }
            }
        }
    }
}

fn draw_widget(canvas: &mut Canvas, w: &Widget, b: &Bounds, scenes: &SceneMap) {
    match w.kind {
        WidgetKind::Window => {
            canvas.border(b);
            let title = if w.text("title").is_empty() {
                w.name.clone()
            } else {
                w.text("title").to_string()
            };
            canvas.text(b.x + 2, b.y, &format!(" {title} "));
        }
        WidgetKind::Panel => {
            canvas.border(b);
            let title = w.text("title");
            if !title.is_empty() {
                canvas.text(b.x + 2, b.y, &format!(" {title} "));
            }
            if w.text("style") == "slider" {
                // The paper's poleWidget "defined as a slider".
                let y = b.y + b.h / 2;
                let track_w = (b.w - 4).max(3);
                for i in 0..track_w {
                    canvas.set(b.x + 2 + i, y, '=');
                }
                let pos = w
                    .prop("slider_pos")
                    .and_then(Prop::as_int)
                    .unwrap_or(50)
                    .clamp(0, 100);
                let knob = b.x + 2 + (pos as i32 * (track_w - 1) / 100);
                canvas.set(knob, y, 'O');
            }
        }
        WidgetKind::Button => {
            let label = format!("[ {} ]", w.text("label"));
            let y = b.y + b.h / 2;
            canvas.text(
                b.x + (b.w - label.chars().count() as i32).max(0) / 2,
                y,
                &label,
            );
        }
        WidgetKind::Text => {
            let label = w.text("label");
            let value = w.text("value");
            let s = if label.is_empty() {
                value.to_string()
            } else {
                format!("{label}: {value}")
            };
            canvas.text(b.x + 1, b.y + b.h / 2, &s);
        }
        WidgetKind::List => {
            canvas.border(b);
            let title = w.text("title");
            if !title.is_empty() {
                canvas.text(b.x + 2, b.y, &format!(" {title} "));
            }
            let selected = w.prop("selected").and_then(Prop::as_int).unwrap_or(-1);
            if let Some(items) = w.prop("items").and_then(Prop::as_items) {
                for (i, item) in items.iter().enumerate() {
                    let marker = if i as i64 == selected { '>' } else { ' ' };
                    canvas.set(b.x + 1, b.y + 1 + i as i32, marker);
                    canvas.text(b.x + 2, b.y + 1 + i as i32, item);
                }
            }
        }
        WidgetKind::Menu => {
            canvas.border(b);
        }
        WidgetKind::MenuItem => {
            canvas.text(b.x, b.y, w.text("label"));
        }
        WidgetKind::DrawingArea => {
            canvas.border(b);
            if let Some(scene) = scenes.get(&w.id) {
                draw_scene(canvas, scene, b);
            }
        }
    }
}

/// Render a tree (with scenes for its drawing areas) to ASCII art.
pub fn render(tree: &WidgetTree, scenes: &SceneMap) -> Result<String, TreeError> {
    let map: LayoutMap = layout(tree)?;
    let root_bounds = map[&tree.root()];
    let mut canvas = Canvas::new(root_bounds.right(), root_bounds.bottom());
    // Parents first: children draw over their parents' interiors.
    for id in tree.walk() {
        let w = tree.get(id)?;
        if let Some(b) = map.get(&id) {
            draw_widget(&mut canvas, w, b, scenes);
        }
    }
    Ok(canvas.to_string_trimmed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Library;
    use crate::scene::MapShape;
    use geodb::geometry::Rect;

    fn lib() -> Library {
        Library::with_kernel()
    }

    #[test]
    fn canvas_primitives() {
        let mut c = Canvas::new(10, 4);
        c.text(1, 1, "hi");
        c.set(0, 0, '#');
        c.set(-5, 99, 'X'); // out of bounds: ignored
        let s = c.to_string_trimmed();
        assert!(s.starts_with("#\n"));
        assert!(s.contains(" hi"));
        assert_eq!(c.get(1, 1), 'h');
        assert_eq!(c.get(-1, 0), ' ');
    }

    #[test]
    fn window_renders_border_and_title() {
        let lib = lib();
        let mut t = WidgetTree::new(&lib, "Window", "schema_window").unwrap();
        t.get_mut(t.root())
            .unwrap()
            .set_prop("title", "Schema: phone_net");
        let out = render(&t, &SceneMap::new()).unwrap();
        assert!(out.contains("Schema: phone_net"));
        assert!(out.contains("+--"));
        assert!(out.lines().next().unwrap().starts_with("+-"));
    }

    #[test]
    fn button_list_text_render() {
        let lib = lib();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        let p = t.add(&lib, t.root(), "Panel", "p").unwrap();
        let b = t.add(&lib, p, "Button", "ok").unwrap();
        t.get_mut(b).unwrap().set_prop("label", "Show");
        let l = t.add(&lib, p, "List", "classes").unwrap();
        t.get_mut(l)
            .unwrap()
            .set_prop("items", vec!["Pole".to_string(), "Duct".to_string()]);
        t.get_mut(l).unwrap().set_prop("selected", 0i64);
        let txt = t.add(&lib, p, "Text", "region").unwrap();
        t.get_mut(txt).unwrap().set_prop("label", "Region");
        t.get_mut(txt).unwrap().set_prop("value", "Centro");

        let out = render(&t, &SceneMap::new()).unwrap();
        assert!(out.contains("[ Show ]"));
        assert!(out.contains(">Pole"));
        assert!(out.contains(" Duct"));
        assert!(out.contains("Region: Centro"));
    }

    #[test]
    fn slider_panel_renders_track_and_knob() {
        let lib = lib();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        let p = t.add(&lib, t.root(), "Panel", "pole_ctl").unwrap();
        t.get_mut(p).unwrap().set_prop("style", "slider");
        t.get_mut(p).unwrap().set_prop("width", 30i64);
        t.get_mut(p).unwrap().set_prop("height", 3i64);
        t.get_mut(p).unwrap().set_prop("slider_pos", 0i64);
        let out = render(&t, &SceneMap::new()).unwrap();
        assert!(out.contains("O=")); // knob at the left end of the track
        assert!(out.contains("==="));
    }

    #[test]
    fn drawing_area_projects_points() {
        let lib = lib();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        let p = t.add(&lib, t.root(), "Panel", "p").unwrap();
        let d = t.add(&lib, p, "DrawingArea", "map").unwrap();
        let mut scenes = SceneMap::new();
        let mut scene = MapScene::new();
        scene.viewport = Some(Rect::new(0.0, 0.0, 10.0, 10.0));
        scene.add(MapShape::new(Geometry::Point(Point::new(0.0, 0.0))).with_symbol('A'));
        scene.add(MapShape::new(Geometry::Point(Point::new(10.0, 10.0))).with_symbol('B'));
        scenes.insert(d, scene);
        let out = render(&t, &scenes).unwrap();
        assert!(out.contains('A'));
        assert!(out.contains('B'));
        // A is bottom-left of B on screen: A's row is below B's row.
        let row_of = |c: char| out.lines().position(|l| l.contains(c)).unwrap();
        assert!(row_of('A') > row_of('B'));
    }

    #[test]
    fn selected_shape_renders_highlighted() {
        let lib = lib();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        let p = t.add(&lib, t.root(), "Panel", "p").unwrap();
        let d = t.add(&lib, p, "DrawingArea", "map").unwrap();
        let mut scenes = SceneMap::new();
        let mut scene = MapScene::new();
        let mut shape = MapShape::new(Geometry::Point(Point::new(5.0, 5.0))).with_symbol('o');
        shape.selected = true;
        scene.add(shape);
        scenes.insert(d, scene);
        let out = render(&t, &scenes).unwrap();
        assert!(out.contains('#'));
        assert!(!out.contains('o'));
    }

    #[test]
    fn polyline_draws_connected_cells() {
        use geodb::geometry::Polyline;
        let lib = lib();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        let p = t.add(&lib, t.root(), "Panel", "p").unwrap();
        let d = t.add(&lib, p, "DrawingArea", "map").unwrap();
        let mut scenes = SceneMap::new();
        let mut scene = MapScene::new();
        scene.viewport = Some(Rect::new(0.0, 0.0, 10.0, 10.0));
        scene.add(
            MapShape::new(Geometry::Polyline(
                Polyline::new(vec![Point::new(0.0, 5.0), Point::new(10.0, 5.0)]).unwrap(),
            ))
            .with_symbol('~'),
        );
        scenes.insert(d, scene);
        let out = render(&t, &scenes).unwrap();
        let tildes = out.chars().filter(|&c| c == '~').count();
        assert!(tildes >= 10, "line should span the area, got {tildes}");
    }
}
