//! Headless renderers for the widget tree.

pub mod ascii;
pub mod svg;
