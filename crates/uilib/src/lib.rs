//! # uilib — the library of interface objects
//!
//! Implements the paper's Fig. 2 kernel and everything around it:
//!
//! * the eight kernel widget classes and their composition rules
//!   ([`widget`]);
//! * the extensible class [`registry`] — new classes and specializations
//!   can be added at run time, which is what the customization language's
//!   `display control as poleWidget` resolves against;
//! * the composition [`tree`] with path addressing;
//! * named [`callback`]s ("generic behavior can be dynamically customized
//!   by callback functions");
//! * a character-cell [`layout`] engine and two headless renderers
//!   ([`render::ascii`], [`render::svg`]) standing in for the 1997 Motif
//!   toolkit (see DESIGN.md, substitution table);
//! * cartographic [`scene`]s for DrawingArea widgets;
//! * [`persist`]ence of the class library *inside* the geographic
//!   database, as the paper's architecture requires.
//!
//! ```
//! use uilib::{Library, WidgetTree};
//!
//! let mut lib = Library::with_kernel();
//! lib.specialize("slider", "Panel", vec![("style".into(), "slider".into())])
//!     .unwrap();
//! let mut tree = WidgetTree::new(&lib, "Window", "class_window").unwrap();
//! let panel = tree.add(&lib, tree.root(), "Panel", "control").unwrap();
//! tree.add(&lib, panel, "Button", "show").unwrap();
//! let art = uilib::render::ascii::render(&tree, &Default::default()).unwrap();
//! assert!(art.contains("class_window"));
//! ```

pub mod callback;
pub mod diff;
pub mod layout;
pub mod persist;
pub mod registry;
pub mod render;
pub mod scene;
pub mod tree;
pub mod widget;

pub use callback::{CallbackFn, CallbackTable, Signal, UiEvent};
pub use diff::{diff, DiffOp};
pub use layout::{layout, Bounds, LayoutMap};
pub use registry::{Library, LibraryError, WidgetClass};
pub use scene::{MapScene, MapShape, SceneMap};
pub use tree::{TreeError, WidgetTree};
pub use widget::{Prop, Widget, WidgetId, WidgetKind};
