//! Structural diffing of widget trees.
//!
//! When the dispatcher refreshes a window (data changed underneath it),
//! sending the whole tree over the weak-integration protocol is wasteful:
//! most refreshes touch a few property values. `diff` computes the
//! minimal edit script between two trees, keyed by widget *path* (paths
//! are stable across rebuilds because the builder names widgets after
//! schema elements).

use std::collections::BTreeMap;

use crate::tree::WidgetTree;
use crate::widget::Prop;

/// One edit turning the old tree into the new one.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffOp {
    /// A widget path exists only in the new tree.
    Added { path: String, class: String },
    /// A widget path exists only in the old tree.
    Removed { path: String },
    /// Same path, different widget class (replace wholesale).
    Replaced {
        path: String,
        old_class: String,
        new_class: String,
    },
    /// A property changed (or appeared/disappeared) on a kept widget.
    PropChanged {
        path: String,
        key: String,
        old: Option<Prop>,
        new: Option<Prop>,
    },
    /// A callback binding changed on a kept widget.
    CallbackChanged {
        path: String,
        gesture: String,
        old: Option<String>,
        new: Option<String>,
    },
}

impl DiffOp {
    /// The widget path the op applies to.
    pub fn path(&self) -> &str {
        match self {
            DiffOp::Added { path, .. }
            | DiffOp::Removed { path }
            | DiffOp::Replaced { path, .. }
            | DiffOp::PropChanged { path, .. }
            | DiffOp::CallbackChanged { path, .. } => path,
        }
    }
}

fn index_by_path(tree: &WidgetTree) -> BTreeMap<String, crate::widget::WidgetId> {
    tree.walk()
        .into_iter()
        .map(|id| (tree.path_of(id).expect("walked id has a path"), id))
        .collect()
}

/// Compute the edit script from `old` to `new`.
pub fn diff(old: &WidgetTree, new: &WidgetTree) -> Vec<DiffOp> {
    let old_index = index_by_path(old);
    let new_index = index_by_path(new);
    let mut ops = Vec::new();

    for (path, &old_id) in &old_index {
        match new_index.get(path) {
            None => ops.push(DiffOp::Removed { path: path.clone() }),
            Some(&new_id) => {
                let ow = old.get(old_id).expect("indexed");
                let nw = new.get(new_id).expect("indexed");
                if ow.class != nw.class {
                    ops.push(DiffOp::Replaced {
                        path: path.clone(),
                        old_class: ow.class.clone(),
                        new_class: nw.class.clone(),
                    });
                    continue;
                }
                // Property changes in both directions.
                let keys: std::collections::BTreeSet<&String> =
                    ow.props.keys().chain(nw.props.keys()).collect();
                for key in keys {
                    let (o, n) = (ow.props.get(key), nw.props.get(key));
                    if o != n {
                        ops.push(DiffOp::PropChanged {
                            path: path.clone(),
                            key: key.clone(),
                            old: o.cloned(),
                            new: n.cloned(),
                        });
                    }
                }
                let gestures: std::collections::BTreeSet<&String> =
                    ow.callbacks.keys().chain(nw.callbacks.keys()).collect();
                for gesture in gestures {
                    let (o, n) = (ow.callbacks.get(gesture), nw.callbacks.get(gesture));
                    if o != n {
                        ops.push(DiffOp::CallbackChanged {
                            path: path.clone(),
                            gesture: gesture.clone(),
                            old: o.cloned(),
                            new: n.cloned(),
                        });
                    }
                }
            }
        }
    }
    for (path, &new_id) in &new_index {
        if !old_index.contains_key(path) {
            ops.push(DiffOp::Added {
                path: path.clone(),
                class: new.get(new_id).expect("indexed").class.clone(),
            });
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Library;

    fn base() -> (Library, WidgetTree) {
        let lib = Library::with_kernel();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        let p = t.add(&lib, t.root(), "Panel", "body").unwrap();
        let b = t.add(&lib, p, "Button", "go").unwrap();
        t.get_mut(b).unwrap().set_prop("label", "Go");
        (lib, t)
    }

    #[test]
    fn identical_trees_have_empty_diff() {
        let (_, a) = base();
        let (_, b) = base();
        assert!(diff(&a, &b).is_empty());
    }

    #[test]
    fn prop_change_is_minimal() {
        let (_, a) = base();
        let (_, mut b) = base();
        let go = b.find("w/body/go").unwrap();
        b.get_mut(go).unwrap().set_prop("label", "Stop");
        let ops = diff(&a, &b);
        assert_eq!(ops.len(), 1);
        assert!(matches!(
            &ops[0],
            DiffOp::PropChanged { path, key, new: Some(Prop::Str(v)), .. }
                if path == "w/body/go" && key == "label" && v == "Stop"
        ));
    }

    #[test]
    fn additions_and_removals() {
        let (lib, a) = base();
        let (_, mut b) = base();
        let body = b.find("w/body").unwrap();
        b.add(&lib, body, "Text", "status").unwrap();
        let go = b.find("w/body/go").unwrap();
        b.remove(go).unwrap();
        let ops = diff(&a, &b);
        assert_eq!(ops.len(), 2);
        assert!(ops
            .iter()
            .any(|o| matches!(o, DiffOp::Removed { path } if path == "w/body/go")));
        assert!(ops.iter().any(
            |o| matches!(o, DiffOp::Added { path, class } if path == "w/body/status" && class == "Text")
        ));
    }

    #[test]
    fn class_change_is_a_replace_not_prop_noise() {
        let (mut lib, a) = base();
        lib.specialize(
            "fancyButton",
            "Button",
            vec![("style".into(), "fancy".into())],
        )
        .unwrap();
        let mut b = WidgetTree::new(&lib, "Window", "w").unwrap();
        let p = b.add(&lib, b.root(), "Panel", "body").unwrap();
        b.add(&lib, p, "fancyButton", "go").unwrap();
        let ops = diff(&a, &b);
        assert_eq!(ops.len(), 1);
        assert!(matches!(
            &ops[0],
            DiffOp::Replaced { new_class, .. } if new_class == "fancyButton"
        ));
    }

    #[test]
    fn callback_rebinding_is_detected() {
        let (_, a) = base();
        let (_, mut b) = base();
        let go = b.find("w/body/go").unwrap();
        b.get_mut(go).unwrap().on("click", "new_handler");
        let ops = diff(&a, &b);
        assert_eq!(ops.len(), 1);
        assert!(matches!(
            &ops[0],
            DiffOp::CallbackChanged { gesture, new: Some(n), old: None, .. }
                if gesture == "click" && n == "new_handler"
        ));
    }

    #[test]
    fn refresh_scale_diff_is_small() {
        // A "refresh" that only changes the instance count label should
        // produce exactly one op even on a large window.
        let lib = Library::with_kernel();
        let build = |count: i64| {
            let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
            let p = t.add(&lib, t.root(), "Panel", "body").unwrap();
            for i in 0..50 {
                let b = t.add(&lib, p, "Button", format!("b{i}")).unwrap();
                t.get_mut(b).unwrap().set_prop("label", format!("B{i}"));
            }
            let c = t.add(&lib, p, "Text", "count").unwrap();
            t.get_mut(c).unwrap().set_prop("value", count.to_string());
            t
        };
        let ops = diff(&build(100), &build(101));
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].path(), "w/body/count");
    }
}
