//! Callbacks: "every object can be associated with several events, each of
//! which can be linked to a callback function (special functions triggered
//! by events on interface objects). Generic behavior can be dynamically
//! customized by callback functions."
//!
//! Callbacks are *named* and resolved through a [`CallbackTable`], so the
//! customization language can bind new behaviour by name
//! (`using composed_text.notify()`) without compiling code into the tree.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::tree::WidgetTree;
use crate::widget::WidgetId;

/// A user gesture on a widget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UiEvent {
    pub widget: WidgetId,
    /// Tree path of the widget at fire time.
    pub path: String,
    /// Gesture name: "click", "select", "key", …
    pub gesture: String,
    /// Gesture payload (selected item, typed key, …).
    pub detail: Option<String>,
}

impl UiEvent {
    pub fn new(widget: WidgetId, path: impl Into<String>, gesture: impl Into<String>) -> UiEvent {
        UiEvent {
            widget,
            path: path.into(),
            gesture: gesture.into(),
            detail: None,
        }
    }

    pub fn with_detail(mut self, detail: impl Into<String>) -> UiEvent {
        self.detail = Some(detail.into());
        self
    }
}

/// What a callback asks the surrounding system to do. The paper's example:
/// a Schema-button callback contains "Perform Get_Schema(GEO) for
/// Context (U,A)" — here that is a signal named `get_schema` with a
/// `schema` argument; the dispatcher turns signals into database events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signal {
    pub name: String,
    pub args: BTreeMap<String, String>,
}

impl Signal {
    pub fn new(name: impl Into<String>) -> Signal {
        Signal {
            name: name.into(),
            args: BTreeMap::new(),
        }
    }

    pub fn arg(mut self, key: impl Into<String>, value: impl Into<String>) -> Signal {
        self.args.insert(key.into(), value.into());
        self
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.args.get(key).map(String::as_str)
    }
}

/// A callback body: read-only view of the tree plus the triggering event.
pub type CallbackFn = Arc<dyn Fn(&WidgetTree, &UiEvent) -> Vec<Signal> + Send + Sync>;

/// Named callback registry.
#[derive(Default, Clone)]
pub struct CallbackTable {
    callbacks: BTreeMap<String, CallbackFn>,
}

impl CallbackTable {
    pub fn new() -> CallbackTable {
        CallbackTable::default()
    }

    /// Register (or override — "the coding of new callback functions to
    /// override their default behavior") a named callback.
    pub fn register(&mut self, name: impl Into<String>, f: CallbackFn) {
        self.callbacks.insert(name.into(), f);
    }

    pub fn contains(&self, name: &str) -> bool {
        self.callbacks.contains_key(name)
    }

    pub fn len(&self) -> usize {
        self.callbacks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.callbacks.is_empty()
    }

    /// Deliver a gesture to a widget: resolve its binding for the gesture
    /// and run the callback. Unbound gestures produce no signals.
    pub fn fire(&self, tree: &WidgetTree, event: &UiEvent) -> Vec<Signal> {
        let Ok(widget) = tree.get(event.widget) else {
            return Vec::new();
        };
        let Some(cb_name) = widget.callbacks.get(&event.gesture) else {
            return Vec::new();
        };
        match self.callbacks.get(cb_name) {
            Some(f) => f(tree, event),
            None => Vec::new(),
        }
    }
}

impl std::fmt::Debug for CallbackTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CallbackTable")
            .field("names", &self.callbacks.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Library;

    fn tree_with_button() -> (WidgetTree, WidgetId) {
        let lib = Library::with_kernel();
        let mut t = WidgetTree::new(&lib, "Window", "w").unwrap();
        let p = t.add(&lib, t.root(), "Panel", "p").unwrap();
        let b = t.add(&lib, p, "Button", "schema").unwrap();
        t.get_mut(b).unwrap().on("click", "open_schema");
        (t, b)
    }

    #[test]
    fn fire_runs_bound_callback() {
        let (tree, button) = tree_with_button();
        let mut table = CallbackTable::new();
        table.register(
            "open_schema",
            Arc::new(|_, ev| {
                vec![Signal::new("get_schema")
                    .arg("schema", "GEO")
                    .arg("source", ev.path.clone())]
            }),
        );
        let ev = UiEvent::new(button, "w/p/schema", "click");
        let signals = table.fire(&tree, &ev);
        assert_eq!(signals.len(), 1);
        assert_eq!(signals[0].name, "get_schema");
        assert_eq!(signals[0].get("schema"), Some("GEO"));
        assert_eq!(signals[0].get("source"), Some("w/p/schema"));
    }

    #[test]
    fn unbound_gesture_is_silent() {
        let (tree, button) = tree_with_button();
        let table = CallbackTable::new();
        // Bound name not registered in the table.
        assert!(table
            .fire(&tree, &UiEvent::new(button, "w/p/schema", "click"))
            .is_empty());
        // Gesture with no binding at all.
        let mut table = CallbackTable::new();
        table.register("open_schema", Arc::new(|_, _| vec![Signal::new("x")]));
        assert!(table
            .fire(&tree, &UiEvent::new(button, "w/p/schema", "hover"))
            .is_empty());
    }

    #[test]
    fn override_replaces_behavior() {
        let (tree, button) = tree_with_button();
        let mut table = CallbackTable::new();
        table.register("open_schema", Arc::new(|_, _| vec![Signal::new("old")]));
        table.register("open_schema", Arc::new(|_, _| vec![Signal::new("new")]));
        let out = table.fire(&tree, &UiEvent::new(button, "w/p/schema", "click"));
        assert_eq!(out[0].name, "new");
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn callback_can_read_tree_state() {
        let (mut tree, button) = tree_with_button();
        tree.get_mut(button).unwrap().set_prop("label", "Schema");
        let mut table = CallbackTable::new();
        table.register(
            "open_schema",
            Arc::new(|tree, ev| {
                let label = tree.get(ev.widget).map(|w| w.text("label").to_string());
                vec![Signal::new("echo").arg("label", label.unwrap_or_default())]
            }),
        );
        let out = table.fire(&tree, &UiEvent::new(button, "w/p/schema", "click"));
        assert_eq!(out[0].get("label"), Some("Schema"));
    }

    #[test]
    fn detail_travels_with_event() {
        let ev = UiEvent::new(WidgetId(3), "w/list", "select").with_detail("Pole");
        assert_eq!(ev.detail.as_deref(), Some("Pole"));
    }

    #[test]
    fn fire_on_missing_widget_is_silent() {
        let (tree, _) = tree_with_button();
        let table = CallbackTable::new();
        assert!(table
            .fire(&tree, &UiEvent::new(WidgetId(999), "ghost", "click"))
            .is_empty());
    }
}
