//! Declarative SLOs with multi-window burn rates.
//!
//! An [`SloSpec`] names a latency objective ("p99 of `engine.dispatch`
//! ≤ 50µs") and an availability objective ("99.9% of `server.requests`
//! succeed") over a request/error counter pair. The [`SloEngine`] is
//! fed periodic registry snapshots ([`SloEngine::tick`]); from the
//! counter deltas it computes the error rate over a fast and a slow
//! window and turns each into a **burn rate** — the multiple of the
//! error budget being consumed:
//!
//! ```text
//! burn = error_rate / (1 − availability_target)
//! ```
//!
//! At exactly the availability target, burn = 1. Burn 10 on a 99.9%
//! objective means 1% of requests are failing — the classic Google
//! SRE multi-window multi-burn alert fires when *both* windows burn
//! above 1: the fast window proves the problem is live, the slow one
//! proves it is sustained. Fault storms from `faultsim` spike both;
//! quarantine drives the fast window back under 1 first, and the slow
//! window drains as the storm ages out of it.
//!
//! A process-global engine (see [`install_default`]) backs the `:slo`
//! REPL command and the bench's `slo` report section.

use std::collections::VecDeque;
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::Mutex;
use serde::Serialize;

use crate::{snapshot, MetricsSnapshot};

/// One declarative service-level objective.
#[derive(Debug, Clone, Serialize)]
pub struct SloSpec {
    /// Objective name, e.g. `dispatch`.
    pub name: String,
    /// Latency histogram whose p99 is checked (a span name).
    pub latency_metric: String,
    /// p99 latency objective in microseconds.
    pub latency_p99_us: f64,
    /// Counter family counting attempted requests.
    pub requests_metric: String,
    /// Counter family counting failed requests.
    pub errors_metric: String,
    /// Availability target in (0, 1), e.g. 0.999.
    pub availability: f64,
    /// Fast burn-rate window in seconds (default 1).
    pub fast_window_s: f64,
    /// Slow burn-rate window in seconds (default 60).
    pub slow_window_s: f64,
}

impl SloSpec {
    /// The serving stack's default objective: p99 engine dispatch ≤ 50µs,
    /// 99.9% of server requests succeed; 1s fast / 60s slow windows.
    pub fn dispatch_default() -> SloSpec {
        SloSpec {
            name: "dispatch".to_string(),
            latency_metric: "engine.dispatch".to_string(),
            latency_p99_us: 50.0,
            requests_metric: "server.requests".to_string(),
            errors_metric: "server.request_errors".to_string(),
            availability: 0.999,
            fast_window_s: 1.0,
            slow_window_s: 60.0,
        }
    }
}

/// Availability over one burn-rate window.
#[derive(Debug, Clone, Serialize)]
pub struct SloWindow {
    pub window_s: f64,
    pub requests: u64,
    pub errors: u64,
    /// 1.0 when the window saw no requests (no evidence of failure).
    pub availability: f64,
    /// Error budget consumption multiple; 1.0 = exactly at target.
    pub burn_rate: f64,
}

/// Evaluation of one [`SloSpec`] at a point in time.
#[derive(Debug, Clone, Serialize)]
pub struct SloStatus {
    pub spec: SloSpec,
    /// Observed p99 of the latency metric, µs (0 when never recorded).
    pub latency_observed_us: f64,
    pub latency_ok: bool,
    pub fast: SloWindow,
    pub slow: SloWindow,
    /// Both windows burn above 1 — the page-worthy condition.
    pub burning: bool,
    /// Cumulative availability since the engine started is below target.
    pub breached: bool,
    /// Cumulative counts since the engine started.
    pub total_requests: u64,
    pub total_errors: u64,
    pub total_availability: f64,
}

/// Full report across every installed objective.
#[derive(Debug, Clone, Serialize)]
pub struct SloReport {
    pub elapsed_s: f64,
    pub slos: Vec<SloStatus>,
}

impl SloReport {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("slo report serializes")
    }

    /// Did any objective breach its cumulative availability target?
    pub fn availability_breached(&self) -> bool {
        self.slos.iter().any(|s| s.breached)
    }

    /// Is any objective currently burning (both windows above 1)?
    pub fn burning(&self) -> bool {
        self.slos.iter().any(|s| s.burning)
    }

    /// Compact text rendering for the `:slo` REPL command.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("slo report (t={:.1}s)\n", self.elapsed_s);
        for s in &self.slos {
            let _ = writeln!(
                out,
                "  {}: p99 {:.1}us (target {:.1}us, {}) | avail {:.5} (target {:.3}, {}) \
                 | burn fast[{:.0}s]={:.2} slow[{:.0}s]={:.2}{}",
                s.spec.name,
                s.latency_observed_us,
                s.spec.latency_p99_us,
                if s.latency_ok { "ok" } else { "OVER" },
                s.total_availability,
                s.spec.availability,
                if s.breached { "BREACHED" } else { "ok" },
                s.fast.window_s,
                s.fast.burn_rate,
                s.slow.window_s,
                s.slow.burn_rate,
                if s.burning { " BURNING" } else { "" },
            );
        }
        out
    }
}

/// One periodic observation: `(requests, errors)` per spec at time `t`.
struct Sample {
    t: f64,
    counts: Vec<(u64, u64)>,
}

/// Evaluates a set of [`SloSpec`]s from periodic registry snapshots.
pub struct SloEngine {
    specs: Vec<SloSpec>,
    origin: Instant,
    /// Ring of samples, oldest first; trimmed past the slowest window.
    samples: VecDeque<Sample>,
    last_snapshot: Option<MetricsSnapshot>,
}

/// Sum of a counter family — unlabeled plus all labeled series — so the
/// SLO sees `server.requests{shard="0"}` + `{shard="1"}` + ….
fn counter_sum(snap: &MetricsSnapshot, base: &str) -> u64 {
    snap.counter_family(base)
}

fn window_over(samples: &VecDeque<Sample>, spec_idx: usize, now: f64, window_s: f64) -> (u64, u64) {
    let cutoff = now - window_s;
    let mut oldest: Option<(u64, u64)> = None;
    let mut newest: Option<(u64, u64)> = None;
    for s in samples.iter() {
        if s.t < cutoff {
            // The youngest pre-window sample is the window's baseline.
            oldest = Some(s.counts[spec_idx]);
            continue;
        }
        if oldest.is_none() {
            oldest = Some(s.counts[spec_idx]);
        }
        newest = Some(s.counts[spec_idx]);
    }
    match (oldest, newest) {
        (Some((r0, e0)), Some((r1, e1))) => (r1.saturating_sub(r0), e1.saturating_sub(e0)),
        _ => (0, 0),
    }
}

impl SloEngine {
    pub fn new(specs: Vec<SloSpec>) -> SloEngine {
        SloEngine {
            specs,
            origin: Instant::now(),
            samples: VecDeque::new(),
            last_snapshot: None,
        }
    }

    /// Take a registry snapshot and record it at the current time.
    pub fn tick(&mut self) {
        let t = self.origin.elapsed().as_secs_f64();
        self.observe(snapshot(), t);
    }

    /// Record an externally supplied snapshot at time `t` seconds —
    /// the deterministic entry point the tests drive directly.
    pub fn observe(&mut self, snap: MetricsSnapshot, t: f64) {
        let counts = self
            .specs
            .iter()
            .map(|spec| {
                (
                    counter_sum(&snap, &spec.requests_metric),
                    counter_sum(&snap, &spec.errors_metric),
                )
            })
            .collect();
        self.samples.push_back(Sample { t, counts });
        // Keep one sample beyond the slowest window as the baseline.
        let horizon = self
            .specs
            .iter()
            .map(|s| s.slow_window_s)
            .fold(60.0, f64::max);
        while self.samples.len() > 2 && self.samples[1].t < t - horizon {
            self.samples.pop_front();
        }
        self.last_snapshot = Some(snap);
    }

    fn window(&self, spec: &SloSpec, spec_idx: usize, now: f64, window_s: f64) -> SloWindow {
        let (requests, errors) = window_over(&self.samples, spec_idx, now, window_s);
        let availability = if requests == 0 {
            1.0
        } else {
            1.0 - errors as f64 / requests as f64
        };
        let budget = (1.0 - spec.availability).max(f64::EPSILON);
        SloWindow {
            window_s,
            requests,
            errors,
            availability,
            burn_rate: (1.0 - availability) / budget,
        }
    }

    /// Evaluate every objective against the latest sample.
    pub fn report(&self) -> SloReport {
        let now = self.samples.back().map_or(0.0, |s| s.t);
        let empty_counts: Vec<(u64, u64)> = vec![(0, 0); self.specs.len()];
        let latest = self
            .samples
            .back()
            .map_or(&empty_counts[..], |s| &s.counts[..]);
        let slos = self
            .specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let latency_observed_us = self
                    .last_snapshot
                    .as_ref()
                    .and_then(|s| s.histograms.get(&spec.latency_metric))
                    .map_or(0.0, |h| h.p99 / 1e3);
                let latency_ok =
                    latency_observed_us == 0.0 || latency_observed_us <= spec.latency_p99_us;
                let fast = self.window(spec, i, now, spec.fast_window_s);
                let slow = self.window(spec, i, now, spec.slow_window_s);
                let (total_requests, total_errors) = latest.get(i).copied().unwrap_or((0, 0));
                let total_availability = if total_requests == 0 {
                    1.0
                } else {
                    1.0 - total_errors as f64 / total_requests as f64
                };
                SloStatus {
                    burning: fast.burn_rate > 1.0 && slow.burn_rate > 1.0,
                    breached: total_availability < spec.availability,
                    latency_observed_us,
                    latency_ok,
                    fast,
                    slow,
                    total_requests,
                    total_errors,
                    total_availability,
                    spec: spec.clone(),
                }
            })
            .collect();
        SloReport {
            elapsed_s: now,
            slos,
        }
    }
}

// ---------------------------------------------------------------------------
// Process-global engine
// ---------------------------------------------------------------------------

fn global() -> &'static Mutex<Option<SloEngine>> {
    static GLOBAL: OnceLock<Mutex<Option<SloEngine>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(None))
}

/// Install (replacing any previous) the process-global SLO engine.
pub fn install(specs: Vec<SloSpec>) {
    *global().lock() = Some(SloEngine::new(specs));
}

/// Install the default dispatch objective ([`SloSpec::dispatch_default`]).
pub fn install_default() {
    install(vec![SloSpec::dispatch_default()]);
}

/// Remove the global engine (tests, bench teardown).
pub fn uninstall() {
    *global().lock() = None;
}

/// Feed the global engine one snapshot now. No-op when not installed.
pub fn tick() {
    if let Some(e) = global().lock().as_mut() {
        e.tick();
    }
}

/// Report from the global engine, if installed.
pub fn report() -> Option<SloReport> {
    global().lock().as_ref().map(|e| e.report())
}

/// Convenience: tick then report. `None` when no engine is installed.
pub fn tick_and_report() -> Option<SloReport> {
    let mut g = global().lock();
    g.as_mut().map(|e| {
        e.tick();
        e.report()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn snap(requests: u64, errors: u64) -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        // Split across labeled series to prove family summation.
        counters.insert("server.requests{shard=\"0\"}".to_string(), requests / 2);
        counters.insert(
            "server.requests{shard=\"1\"}".to_string(),
            requests - requests / 2,
        );
        counters.insert("server.request_errors".to_string(), errors);
        MetricsSnapshot {
            enabled: true,
            counters,
            histograms: BTreeMap::new(),
            spans: BTreeMap::new(),
            gauges: BTreeMap::new(),
        }
    }

    #[test]
    fn burn_rate_is_error_rate_over_budget() {
        let mut e = SloEngine::new(vec![SloSpec::dispatch_default()]);
        e.observe(snap(0, 0), 0.0);
        // 1000 requests, 10 errors in 1s: 1% error rate on a 0.1%
        // budget → burn 10 in both windows.
        e.observe(snap(1000, 10), 1.0);
        let r = e.report();
        let s = &r.slos[0];
        assert_eq!(s.fast.requests, 1000);
        assert_eq!(s.fast.errors, 10);
        assert!((s.fast.burn_rate - 10.0).abs() < 0.1, "{:?}", s.fast);
        assert!((s.slow.burn_rate - 10.0).abs() < 0.1);
        assert!(s.burning);
        assert!(s.breached, "0.99 cumulative < 0.999 target");
        assert!(r.availability_breached());
        assert!(r.to_json().contains("\"burning\": true"));
        assert!(r.render().contains("BURNING"));
    }

    #[test]
    fn recovery_drains_the_fast_window_first() {
        let mut e = SloEngine::new(vec![SloSpec::dispatch_default()]);
        e.observe(snap(0, 0), 0.0);
        // Storm at t=1, then two clean seconds.
        e.observe(snap(1000, 10), 1.0);
        e.observe(snap(2000, 10), 2.0);
        e.observe(snap(3000, 10), 3.0);
        let r = e.report();
        let s = &r.slos[0];
        // Fast window (1s) sees only clean traffic; the 60s slow
        // window still carries the storm's errors.
        assert!(s.fast.burn_rate < 1.0, "fast recovered: {:?}", s.fast);
        assert!(s.slow.burn_rate > 1.0, "slow still burning: {:?}", s.slow);
        assert!(!s.burning, "multi-window alert cleared on recovery");
    }

    #[test]
    fn clean_traffic_never_burns_or_breaches() {
        let mut e = SloEngine::new(vec![SloSpec::dispatch_default()]);
        for t in 0..5 {
            e.observe(snap(t * 1000, 0), t as f64);
        }
        let r = e.report();
        let s = &r.slos[0];
        assert_eq!(s.fast.burn_rate, 0.0);
        assert_eq!(s.slow.burn_rate, 0.0);
        assert!(!s.burning && !s.breached);
        assert_eq!(s.total_availability, 1.0);
        assert!(!r.availability_breached());
    }

    #[test]
    fn idle_windows_report_full_availability() {
        let e = SloEngine::new(vec![SloSpec::dispatch_default()]);
        let r = e.report();
        let s = &r.slos[0];
        assert_eq!(s.fast.availability, 1.0);
        assert!(!s.breached);
        assert_eq!(s.total_requests, 0);
    }

    #[test]
    fn global_engine_round_trips() {
        install_default();
        tick();
        let r = tick_and_report().expect("installed");
        assert_eq!(r.slos.len(), 1);
        assert_eq!(r.slos[0].spec.name, "dispatch");
        uninstall();
        assert!(report().is_none());
    }

    #[test]
    fn latency_objective_checks_p99() {
        use crate::{HistogramSummary, Unit};
        let mut e = SloEngine::new(vec![SloSpec::dispatch_default()]);
        let mut s = snap(100, 0);
        s.histograms.insert(
            "engine.dispatch".to_string(),
            HistogramSummary {
                unit: Unit::Nanos,
                count: 100,
                p50: 10_000.0,
                p95: 40_000.0,
                p99: 120_000.0, // 120µs > 50µs objective
                max: 150_000.0,
                mean: 15_000.0,
                sum: 1_500_000.0,
                exemplar: None,
            },
        );
        e.observe(s, 1.0);
        let r = e.report();
        assert!((r.slos[0].latency_observed_us - 120.0).abs() < 1e-6);
        assert!(!r.slos[0].latency_ok);
    }
}
