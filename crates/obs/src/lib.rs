//! Observability: spans, metrics and exporters.
//!
//! The paper's *explanation* interaction mode ("users want to know why
//! and how the system presented a specific answer to a query") is an
//! observability requirement, and the performance roadmap needs to know
//! where dispatch time goes. This crate is the shared substrate: a
//! process-wide registry of named counters and log-scale latency
//! histograms, a lightweight hierarchical span API, and two exporters
//! (a serde JSON snapshot and Prometheus text exposition).
//!
//! Metric names are dotted paths whose first segment is the subsystem:
//! `engine.rules_fired`, `geodb.queries`, `builder.windows_built`,
//! `render.ascii_frames`, `dispatcher.events`. Span names follow the
//! same scheme; every span doubles as a latency histogram under its own
//! name, and the registry remembers each span's observed parents so the
//! hierarchy survives into the snapshot.
//!
//! Everything is gated on a single process-wide switch
//! ([`set_enabled`]); when off, every hook collapses to one relaxed
//! atomic load, so instrumented code stays within noise of the
//! uninstrumented path.
//!
//! No external tracing dependency: `std::time::Instant` + `parking_lot`.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};
use serde::Serialize;

/// Number of power-of-two histogram buckets. Bucket `i` covers values
/// in `[2^i, 2^(i+1))`; 40 buckets span 1 ns .. ~18 minutes.
const BUCKETS: usize = 40;

/// Unit of the values a histogram records, carried into the exporters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Unit {
    /// Durations in nanoseconds (spans, timers).
    Nanos,
    /// Dimensionless values (cascade depth, queue length, …).
    Count,
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Fixed log-scale bucket histogram: cheap to record, good enough for
/// p50/p95/p99 at the ~2x resolution the roadmap needs.
#[derive(Debug)]
struct Histogram {
    unit: Unit,
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    fn new(unit: Unit) -> Histogram {
        Histogram {
            unit,
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        // 0 and 1 land in bucket 0; otherwise floor(log2(v)).
        (63 - v.max(1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Representative value of a bucket (geometric midpoint).
    fn bucket_mid(i: usize) -> f64 {
        let lo = (1u64 << i) as f64;
        lo * 1.5
    }

    fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Estimated value at quantile `q` (0..=1).
    fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_mid(i).min(self.max as f64);
            }
        }
        self.max as f64
    }

    fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            unit: self.unit,
            count: self.count,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max as f64,
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum as f64 / self.count as f64
            },
            sum: self.sum as f64,
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct SpanStat {
    count: u64,
    parents: BTreeSet<String>,
}

struct Registry {
    enabled: AtomicBool,
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Mutex<Histogram>>>>,
    spans: RwLock<BTreeMap<String, SpanStat>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        enabled: AtomicBool::new(true),
        counters: RwLock::new(BTreeMap::new()),
        histograms: RwLock::new(BTreeMap::new()),
        spans: RwLock::new(BTreeMap::new()),
    })
}

thread_local! {
    /// Stack of currently open span names on this thread — the source
    /// of the parent links reported in the snapshot.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Is metric collection on? One relaxed atomic load — the whole cost of
/// every hook when collection is off.
#[inline]
pub fn enabled() -> bool {
    registry().enabled.load(Ordering::Relaxed)
}

/// Turn collection on or off process-wide.
pub fn set_enabled(on: bool) {
    registry().enabled.store(on, Ordering::Relaxed);
}

/// Drop every recorded metric and span (tests, bench warm-up).
pub fn reset() {
    let r = registry();
    r.counters.write().clear();
    r.histograms.write().clear();
    r.spans.write().clear();
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// A registered counter handle. Cloning is cheap; hot paths should
/// resolve the handle once and call [`Counter::add`] thereafter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    #[inline]
    pub fn add(&self, delta: u64) {
        if enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Resolve (registering on first use) a counter handle by name.
pub fn counter(name: &str) -> Counter {
    let r = registry();
    if let Some(c) = r.counters.read().get(name) {
        return Counter(c.clone());
    }
    let mut w = r.counters.write();
    Counter(w.entry(name.to_string()).or_default().clone())
}

/// One-shot counter increment for cold call sites.
pub fn counter_add(name: &str, delta: u64) {
    if enabled() {
        counter(name).0.fetch_add(delta, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Histograms & spans
// ---------------------------------------------------------------------------

/// A registered histogram handle.
#[derive(Clone)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.0.lock().record(v);
        }
    }
}

/// Resolve (registering on first use) a histogram handle by name.
pub fn histogram(name: &str, unit: Unit) -> HistogramHandle {
    let r = registry();
    if let Some(h) = r.histograms.read().get(name) {
        return HistogramHandle(h.clone());
    }
    let mut w = r.histograms.write();
    HistogramHandle(
        w.entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(Histogram::new(unit))))
            .clone(),
    )
}

/// One-shot dimensionless observation (cascade depth, queue length…).
pub fn record_value(name: &str, v: u64) {
    if enabled() {
        histogram(name, Unit::Count).0.lock().record(v);
    }
}

/// One-shot duration observation in nanoseconds.
pub fn record_nanos(name: &str, ns: u64) {
    if enabled() {
        histogram(name, Unit::Nanos).0.lock().record(ns);
    }
}

/// An open span: times the enclosed region and records it as a latency
/// histogram under the span's name when dropped. Spans nest — while
/// open, the span sits on a thread-local stack and the parent link is
/// remembered in the registry.
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

/// Open a span. When collection is disabled the guard is inert.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name, start: None };
    }
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
    {
        let r = registry();
        let mut spans = r.spans.write();
        let stat = spans.entry(name.to_string()).or_default();
        stat.count += 1;
        if let Some(p) = parent {
            stat.parents.insert(p.to_string());
        }
    }
    SpanGuard {
        name,
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            SPAN_STACK.with(|s| {
                let mut st = s.borrow_mut();
                if let Some(pos) = st.iter().rposition(|&n| n == self.name) {
                    st.remove(pos);
                }
            });
            record_nanos(self.name, ns);
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot & exporters
// ---------------------------------------------------------------------------

/// Percentile summary of one histogram, in the histogram's own unit.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSummary {
    pub unit: Unit,
    pub count: u64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
    pub mean: f64,
    pub sum: f64,
}

/// One span's registry entry: how often it opened and under which
/// parent spans it was observed.
#[derive(Debug, Clone, Serialize)]
pub struct SpanSummary {
    pub count: u64,
    pub parents: Vec<String>,
}

/// Point-in-time copy of the whole registry, `serde::Serialize`.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSnapshot {
    pub enabled: bool,
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
    pub spans: BTreeMap<String, SpanSummary>,
}

impl MetricsSnapshot {
    /// Counter value, 0 when never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Does any counter or histogram under `subsystem.` have activity?
    pub fn subsystem_active(&self, subsystem: &str) -> bool {
        let prefix = format!("{subsystem}.");
        self.counters
            .iter()
            .any(|(k, &v)| k.starts_with(&prefix) && v > 0)
            || self
                .histograms
                .iter()
                .any(|(k, h)| k.starts_with(&prefix) && h.count > 0)
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Prometheus text exposition format (version 0.0.4). Counters
    /// export as `_total` counters, nanosecond histograms as
    /// `_seconds` summaries, dimensionless ones as plain summaries.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (name, &v) in &self.counters {
            let n = format!("activegis_{}_total", sanitize(name));
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let (n, scale) = match h.unit {
                Unit::Nanos => (format!("activegis_{}_seconds", sanitize(name)), 1e-9),
                Unit::Count => (format!("activegis_{}", sanitize(name)), 1.0),
            };
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, v) in [(0.5, h.p50), (0.95, h.p95), (0.99, h.p99)] {
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {}\n", v * scale));
            }
            out.push_str(&format!("{n}_sum {}\n", h.sum * scale));
            out.push_str(&format!("{n}_count {}\n", h.count));
        }
        out
    }
}

/// Copy the registry into an exportable snapshot.
pub fn snapshot() -> MetricsSnapshot {
    let r = registry();
    let counters = r
        .counters
        .read()
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    let histograms = r
        .histograms
        .read()
        .iter()
        .map(|(k, h)| (k.clone(), h.lock().summary()))
        .collect();
    let spans = r
        .spans
        .read()
        .iter()
        .map(|(k, s)| {
            (
                k.clone(),
                SpanSummary {
                    count: s.count,
                    parents: s.parents.iter().cloned().collect(),
                },
            )
        })
        .collect();
    MetricsSnapshot {
        enabled: enabled(),
        counters,
        histograms,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry (and the enabled switch) is process-global, so the
    /// tests serialize on one lock and each uses its own metric names.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_accumulate_and_snapshot() {
        let _g = TEST_LOCK.lock();
        let c = counter("test.hits");
        c.add(2);
        c.incr();
        counter_add("test.hits", 1);
        let snap = snapshot();
        assert!(snap.counter("test.hits") >= 4);
        assert_eq!(snap.counter("test.never"), 0);
        assert!(snap.subsystem_active("test"));
        assert!(!snap.subsystem_active("no_such_subsystem"));
    }

    #[test]
    fn histogram_quantiles_are_ordered() {
        let _g = TEST_LOCK.lock();
        let h = histogram("test.latency", Unit::Nanos);
        for i in 1..=1000u64 {
            h.record(i * 100);
        }
        let snap = snapshot();
        let s = &snap.histograms["test.latency"];
        assert_eq!(s.count, 1000);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!((s.max - 100_000.0).abs() < 1.0);
        assert!(s.mean > 0.0);
    }

    #[test]
    fn spans_record_latency_and_hierarchy() {
        let _g = TEST_LOCK.lock();
        {
            let _outer = span("test_span.outer");
            let _inner = span("test_span.inner");
        }
        let snap = snapshot();
        assert!(snap.histograms["test_span.outer"].count >= 1);
        assert!(snap.histograms["test_span.inner"].count >= 1);
        assert!(snap.spans["test_span.inner"]
            .parents
            .contains(&"test_span.outer".to_string()));
    }

    #[test]
    fn disabled_hooks_are_inert() {
        let _g = TEST_LOCK.lock();
        let c = counter("test.gated");
        set_enabled(false);
        c.add(10);
        record_value("test.gated_hist", 5);
        {
            let _s = span("test.gated_span");
        }
        set_enabled(true);
        let snap = snapshot();
        assert_eq!(snap.counter("test.gated"), 0);
        assert!(snap
            .histograms
            .get("test.gated_hist")
            .is_none_or(|h| h.count == 0));
    }

    #[test]
    fn prometheus_export_is_line_parseable() {
        let _g = TEST_LOCK.lock();
        counter_add("test.prom_hits", 3);
        record_nanos("test.prom_latency", 1500);
        let text = snapshot().to_prometheus();
        assert!(text.contains("activegis_test_prom_hits_total 3"));
        assert!(text.contains("activegis_test_prom_latency_seconds{quantile=\"0.5\"}"));
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name value pair");
            assert!(!name.is_empty());
            value.parse::<f64>().expect("numeric sample value");
        }
    }

    #[test]
    fn json_snapshot_round_trips() {
        let _g = TEST_LOCK.lock();
        counter_add("test.json_hits", 1);
        let json = snapshot().to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(v["counters"]["test.json_hits"].as_u64().unwrap() >= 1);
    }
}
