//! Observability: spans, metrics, request traces and exporters.
//!
//! The paper's *explanation* interaction mode ("users want to know why
//! and how the system presented a specific answer to a query") is an
//! observability requirement, and the performance roadmap needs to know
//! where dispatch time goes. This crate is the shared substrate:
//!
//! * a process-wide registry of named **counters** and log-scale latency
//!   **histograms**, optionally dimensioned with a small fixed-cardinality
//!   label scheme (`shard`, `event_kind`, `arm`, `degraded`);
//! * a lightweight hierarchical **span** API;
//! * causal **request traces**: sampled trace trees with splitmix64 ids,
//!   collected into bounded per-shard rings (see [`trace_root`]);
//! * a declarative **SLO engine** with multi-window burn rates ([`slo`]);
//! * two exporters — a serde JSON snapshot and Prometheus text
//!   exposition with `{label="value"}` series and trace-id exemplars.
//!
//! Metric names are dotted paths whose first segment is the subsystem:
//! `engine.rules_fired`, `geodb.queries`, `builder.windows_built`,
//! `render.ascii_frames`, `dispatcher.events`. Span names follow the
//! same scheme; every span doubles as a latency histogram under its own
//! name, and the registry remembers each span's observed parents so the
//! hierarchy survives into the snapshot. While a request trace is being
//! recorded on a thread, every span additionally becomes a node of the
//! trace tree, so the causal structure of one request (server → dispatcher
//! → engine → db) is captured without a second instrumentation pass.
//!
//! Everything is gated on one process-wide flags word: when both metric
//! collection ([`set_enabled`]) and trace sampling ([`set_trace_sampling`])
//! are off, every hook collapses to a single relaxed atomic load and
//! performs no allocation.
//!
//! No external tracing dependency: `std::time::Instant` + `parking_lot`.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};
use serde::Serialize;

pub mod slo;

/// Number of power-of-two histogram buckets. Bucket `i` covers values
/// in `[2^i, 2^(i+1))`; 40 buckets span 1 ns .. ~18 minutes.
const BUCKETS: usize = 40;

/// Bit 0 of the registry flags word: metric collection is on.
const FLAG_METRICS: u64 = 1;
/// Bit 1 of the registry flags word: trace sampling is armed.
const FLAG_TRACING: u64 = 2;

/// Default per-shard capacity of the completed-trace ring.
const DEFAULT_TRACE_RING_CAP: u64 = 64;

/// Unit of the values a histogram records, carried into the exporters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Unit {
    /// Durations in nanoseconds (spans, timers).
    Nanos,
    /// Dimensionless values (cascade depth, queue length, …).
    Count,
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Fixed log-scale bucket histogram: cheap to record, good enough for
/// p50/p95/p99 at the ~2x resolution the roadmap needs.
#[derive(Debug)]
struct Histogram {
    unit: Unit,
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    max: u64,
    /// `(value, trace_id)` of the highest-valued observation made while
    /// a sampled trace was being recorded — the exemplar attached to the
    /// p99 quantile in the Prometheus export.
    exemplar: Option<(u64, u64)>,
}

impl Histogram {
    fn new(unit: Unit) -> Histogram {
        Histogram {
            unit,
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            exemplar: None,
        }
    }

    fn bucket_of(v: u64) -> usize {
        // 0 and 1 land in bucket 0; otherwise floor(log2(v)).
        (63 - v.max(1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Representative value of a bucket (geometric midpoint).
    fn bucket_mid(i: usize) -> f64 {
        let lo = (1u64 << i) as f64;
        lo * 1.5
    }

    fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    fn record_exemplar(&mut self, v: u64, trace_id: u64) {
        if trace_id != 0 && self.exemplar.is_none_or(|(ev, _)| v >= ev) {
            self.exemplar = Some((v, trace_id));
        }
    }

    /// Estimated value at quantile `q` (0..=1).
    fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_mid(i).min(self.max as f64);
            }
        }
        self.max as f64
    }

    fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            unit: self.unit,
            count: self.count,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max as f64,
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum as f64 / self.count as f64
            },
            sum: self.sum as f64,
            exemplar: self.exemplar.map(|(v, id)| Exemplar {
                value: v as f64,
                trace_id: trace_id_hex(id),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct SpanStat {
    count: u64,
    parents: BTreeSet<String>,
}

struct Registry {
    /// `FLAG_METRICS | FLAG_TRACING` — the single word every hook loads.
    flags: AtomicU64,
    /// Trace sampling rate: 0 = tracing off, N = record 1 in N requests.
    trace_sample: AtomicU64,
    /// Per-shard bound of the completed-trace ring.
    trace_ring_cap: AtomicU64,
    /// Monotone source for trace/span ids (finalized through splitmix64).
    next_trace: AtomicU64,
    /// Commit order of completed traces (newest-first queries sort on it).
    trace_commits: AtomicU64,
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    /// Last-write-wins level metrics (queue depths, retained epochs).
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Mutex<Histogram>>>>,
    spans: RwLock<BTreeMap<String, SpanStat>>,
    /// Completed trace trees, one bounded ring per shard.
    traces: Mutex<BTreeMap<u64, VecDeque<TraceTree>>>,
    /// Recycled span buffers from evicted / discarded traces. At full
    /// sampling every batch retires one tree and starts another, so
    /// reusing the grown `Vec` keeps the steady state free of large
    /// allocations and reallocation copies.
    span_pool: Mutex<Vec<Vec<TraceSpan>>>,
}

/// Upper bound on pooled span buffers (they can be ~100 KiB each).
const SPAN_POOL_CAP: usize = 32;

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        flags: AtomicU64::new(FLAG_METRICS),
        trace_sample: AtomicU64::new(0),
        trace_ring_cap: AtomicU64::new(DEFAULT_TRACE_RING_CAP),
        next_trace: AtomicU64::new(1),
        trace_commits: AtomicU64::new(0),
        counters: RwLock::new(BTreeMap::new()),
        gauges: RwLock::new(BTreeMap::new()),
        histograms: RwLock::new(BTreeMap::new()),
        spans: RwLock::new(BTreeMap::new()),
        traces: Mutex::new(BTreeMap::new()),
        span_pool: Mutex::new(Vec::new()),
    })
}

#[inline]
fn flags() -> u64 {
    registry().flags.load(Ordering::Relaxed)
}

thread_local! {
    /// Stack of currently open span names on this thread — the source
    /// of the parent links reported in the snapshot.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// The request trace currently being recorded on this thread.
    static TRACE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
    /// Cached id of the current trace when it passed sampling, else 0.
    /// A plain `Cell` copy of what `TRACE` knows, so the exemplar probe
    /// on every histogram record is a load instead of a `RefCell` borrow.
    static SAMPLED_ID: Cell<u64> = const { Cell::new(0) };
    /// `Cell` mirror of `TRACE.is_some()`, for the hot-path gates
    /// ([`trace_recording`], nested [`trace_root`] detection).
    static TRACE_ACTIVE: Cell<bool> = const { Cell::new(false) };
    /// The serving shard this thread belongs to (0 outside the server).
    static SHARD: Cell<u64> = const { Cell::new(0) };
}

/// Is metric collection on? One relaxed atomic load — the whole cost of
/// every hook when collection is off.
#[inline]
pub fn enabled() -> bool {
    flags() & FLAG_METRICS != 0
}

/// Turn collection on or off process-wide.
pub fn set_enabled(on: bool) {
    if on {
        registry().flags.fetch_or(FLAG_METRICS, Ordering::Relaxed);
    } else {
        registry().flags.fetch_and(!FLAG_METRICS, Ordering::Relaxed);
    }
}

/// Drop every recorded metric, span and completed trace, and disarm
/// trace sampling (tests, bench warm-up).
pub fn reset() {
    let r = registry();
    r.counters.write().clear();
    r.gauges.write().clear();
    r.histograms.write().clear();
    r.spans.write().clear();
    r.traces.lock().clear();
    r.span_pool.lock().clear();
    r.trace_sample.store(0, Ordering::Relaxed);
    r.flags.fetch_and(!FLAG_TRACING, Ordering::Relaxed);
    r.trace_ring_cap
        .store(DEFAULT_TRACE_RING_CAP, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Labels
// ---------------------------------------------------------------------------

/// Canonical series key for a labeled metric: `name{k="v",…}` with label
/// keys sorted. Label values are restricted to a fixed-cardinality
/// vocabulary (shard numbers, event kinds, dispatch arms, booleans) —
/// any character outside `[A-Za-z0-9_.-]` is replaced with `_` so the
/// key stays parseable by the exporters.
fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_by_key(|&(k, _)| k);
    let mut key = String::with_capacity(name.len() + 16 * sorted.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push_str("=\"");
        for c in v.chars() {
            key.push(if c.is_ascii_alphanumeric() || "_.-".contains(c) {
                c
            } else {
                '_'
            });
        }
        key.push('"');
    }
    key.push('}');
    key
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// A registered counter handle. Cloning is cheap; hot paths should
/// resolve the handle once and call [`Counter::add`] thereafter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    #[inline]
    pub fn add(&self, delta: u64) {
        if enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Resolve (registering on first use) a counter handle by name.
pub fn counter(name: &str) -> Counter {
    let r = registry();
    if let Some(c) = r.counters.read().get(name) {
        return Counter(c.clone());
    }
    let mut w = r.counters.write();
    Counter(w.entry(name.to_string()).or_default().clone())
}

/// Resolve a counter handle for a labeled series, e.g.
/// `counter_labeled("server.requests", &[("shard", "3")])`.
pub fn counter_labeled(name: &str, labels: &[(&str, &str)]) -> Counter {
    counter(&series_key(name, labels))
}

/// One-shot counter increment for cold call sites.
/// Set a gauge to an absolute value (last write wins). Gauges model
/// *levels* — retained epochs, queue depths — where a monotone counter
/// would be meaningless.
pub fn gauge_set(name: &str, v: u64) {
    let r = registry();
    if let Some(g) = r.gauges.read().get(name) {
        g.store(v, Ordering::Relaxed);
        return;
    }
    r.gauges
        .write()
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(AtomicU64::new(0)))
        .store(v, Ordering::Relaxed);
}

/// Current value of a gauge, 0 when never set.
pub fn gauge_get(name: &str) -> u64 {
    registry()
        .gauges
        .read()
        .get(name)
        .map(|g| g.load(Ordering::Relaxed))
        .unwrap_or(0)
}

pub fn counter_add(name: &str, delta: u64) {
    if enabled() {
        counter(name).0.fetch_add(delta, Ordering::Relaxed);
    }
}

/// One-shot labeled counter increment.
pub fn counter_add_labeled(name: &str, labels: &[(&str, &str)], delta: u64) {
    if enabled() {
        counter_labeled(name, labels)
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Histograms & spans
// ---------------------------------------------------------------------------

/// A registered histogram handle.
#[derive(Clone)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            let exemplar = sampled_trace_id();
            let mut h = self.0.lock();
            h.record(v);
            h.record_exemplar(v, exemplar);
        }
    }
}

/// Resolve (registering on first use) a histogram handle by name.
pub fn histogram(name: &str, unit: Unit) -> HistogramHandle {
    let r = registry();
    if let Some(h) = r.histograms.read().get(name) {
        return HistogramHandle(h.clone());
    }
    let mut w = r.histograms.write();
    HistogramHandle(
        w.entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(Histogram::new(unit))))
            .clone(),
    )
}

/// Resolve a histogram handle for a labeled series.
pub fn histogram_labeled(name: &str, unit: Unit, labels: &[(&str, &str)]) -> HistogramHandle {
    histogram(&series_key(name, labels), unit)
}

/// One-shot dimensionless observation (cascade depth, queue length…).
pub fn record_value(name: &str, v: u64) {
    if enabled() {
        histogram(name, Unit::Count).record(v);
    }
}

/// One-shot duration observation in nanoseconds.
pub fn record_nanos(name: &str, ns: u64) {
    if enabled() {
        histogram(name, Unit::Nanos).record(ns);
    }
}

/// One-shot labeled duration observation in nanoseconds.
pub fn record_nanos_labeled(name: &str, labels: &[(&str, &str)], ns: u64) {
    if enabled() {
        histogram_labeled(name, Unit::Nanos, labels).record(ns);
    }
}

/// An open span: times the enclosed region and records it as a latency
/// histogram under the span's name when dropped. Spans nest — while
/// open, the span sits on a thread-local stack and the parent link is
/// remembered in the registry. While a request trace is being recorded
/// on this thread, the span also becomes a node of the trace tree.
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    traced: bool,
}

/// Open a span. When collection is disabled (and no trace is being
/// recorded) the guard is inert: one relaxed atomic load, no allocation.
pub fn span(name: &'static str) -> SpanGuard {
    let f = flags();
    if f == 0 {
        return SpanGuard {
            name,
            start: None,
            traced: false,
        };
    }
    if f & FLAG_METRICS == 0 {
        let traced = f & FLAG_TRACING != 0 && trace_open_span(name, None);
        return SpanGuard {
            name,
            start: None,
            traced,
        };
    }
    let mut g = metrics_span(name);
    if f & FLAG_TRACING != 0 {
        g.traced = trace_open_span(name, g.start);
    }
    g
}

/// The metrics half of [`span`]: stack bookkeeping, registry stat,
/// timer — no trace join. Assumes `FLAG_METRICS` is set.
fn metrics_span(name: &'static str) -> SpanGuard {
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
    {
        let r = registry();
        let mut spans = r.spans.write();
        let stat = spans.entry(name.to_string()).or_default();
        stat.count += 1;
        if let Some(p) = parent {
            stat.parents.insert(p.to_string());
        }
    }
    SpanGuard {
        name,
        start: Some(Instant::now()),
        traced: false,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let mut dur = None;
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            SPAN_STACK.with(|s| {
                let mut st = s.borrow_mut();
                if let Some(pos) = st.iter().rposition(|&n| n == self.name) {
                    st.remove(pos);
                }
            });
            record_nanos(self.name, ns);
            dur = Some(ns);
        }
        // Close the trace node after the histogram record so the
        // exemplar capture still sees the open (sampled) trace; reuse
        // the duration the histogram just recorded.
        if self.traced {
            trace_close_span(self.name, dur);
        }
    }
}

// ---------------------------------------------------------------------------
// Request traces
// ---------------------------------------------------------------------------

/// SplitMix64 finalizer — the id generator for traces and spans.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn next_id() -> u64 {
    let id = splitmix64(registry().next_trace.fetch_add(1, Ordering::Relaxed));
    if id == 0 {
        1
    } else {
        id
    }
}

/// Canonical hex rendering of a trace id (16 lowercase hex digits).
pub fn trace_id_hex(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse a trace id as produced by [`trace_id_hex`] (decimal accepted).
pub fn parse_trace_id(s: &str) -> Option<u64> {
    let s = s.trim().trim_start_matches("0x");
    u64::from_str_radix(s, 16)
        .ok()
        .or_else(|| s.parse::<u64>().ok())
}

/// One annotation on a trace span (`key=value`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Annotation {
    pub key: String,
    pub value: String,
}

/// One node of a completed trace tree.
#[derive(Debug, Clone, Serialize)]
pub struct TraceSpan {
    /// Span id (splitmix64; unique within the trace).
    pub id: u64,
    /// Parent span id; 0 for the root.
    pub parent: u64,
    pub name: &'static str,
    /// Nanoseconds since the trace started.
    pub start_ns: u64,
    /// Span duration; 0 for instantaneous events ([`trace_event`]).
    pub dur_ns: u64,
    pub annotations: Vec<Annotation>,
}

/// A completed request trace: the causal tree of every span that ran on
/// the request's thread between [`trace_root`] open and close.
#[derive(Debug, Clone, Serialize)]
pub struct TraceTree {
    pub trace_id: u64,
    /// Hex form of the id, as cross-linked from explanation records and
    /// Prometheus exemplars.
    pub trace_id_hex: String,
    pub shard: u64,
    /// Whether the 1-in-N sampler picked the request (false means the
    /// trace was retained by the fault/degrade override).
    pub sampled: bool,
    /// A fault or degradation was observed during the request.
    pub fault: bool,
    pub total_ns: u64,
    /// Commit order across all shards (monotone).
    pub seq: u64,
    pub spans: Vec<TraceSpan>,
}

impl TraceTree {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serializes")
    }

    /// Indented tree rendering for the REPL `:trace` view.
    pub fn render(&self) -> String {
        let mut out = format!(
            "trace {} shard={} {:.1}us{}{}\n",
            self.trace_id_hex,
            self.shard,
            self.total_ns as f64 / 1e3,
            if self.sampled {
                ""
            } else {
                " (fault-retained)"
            },
            if self.fault { " FAULT" } else { "" },
        );
        fn children(spans: &[TraceSpan], parent: u64) -> Vec<&TraceSpan> {
            spans.iter().filter(|s| s.parent == parent).collect()
        }
        fn walk(out: &mut String, spans: &[TraceSpan], node: &TraceSpan, depth: usize) {
            let mut line = format!("{}{}", "  ".repeat(depth + 1), node.name);
            if node.dur_ns > 0 {
                let _ = write!(line, " {:.1}us", node.dur_ns as f64 / 1e3);
            }
            for a in &node.annotations {
                let _ = write!(line, " {}={}", a.key, a.value);
            }
            out.push_str(&line);
            out.push('\n');
            for c in children(spans, node.id) {
                walk(out, spans, c, depth + 1);
            }
        }
        for root in children(&self.spans, 0) {
            walk(&mut out, &self.spans, root, 0);
        }
        out
    }
}

/// The trace being recorded on this thread. Spans are appended in open
/// order; `open` indexes the currently open ones (a stack).
struct ActiveTrace {
    trace_id: u64,
    sampled: bool,
    fault: bool,
    shard: u64,
    started: Instant,
    /// Local source for span ids: `splitmix64(trace_id + seq)`. Span ids
    /// only need uniqueness within their trace, so the hot path never
    /// touches the (contended) global id counter.
    span_seq: u64,
    spans: Vec<TraceSpan>,
    open: Vec<usize>,
}

impl ActiveTrace {
    #[inline]
    fn next_span_id(&mut self) -> u64 {
        self.span_seq += 1;
        let id = splitmix64(self.trace_id.wrapping_add(self.span_seq));
        if id == 0 {
            1
        } else {
            id
        }
    }
}

/// Pin the calling thread to a serving shard: completed traces commit to
/// this shard's ring and [`current_shard`] reports it for shard labels.
pub fn set_shard(shard: u64) {
    SHARD.with(|s| s.set(shard));
}

/// The shard the calling thread was pinned to (0 by default).
pub fn current_shard() -> u64 {
    SHARD.with(|s| s.get())
}

/// Configure trace sampling: record 1 in `n` requests (`1` = every
/// request, `0` = tracing off). Requests that observe a fault or a
/// degradation are always retained, regardless of the sampling decision.
pub fn set_trace_sampling(n: u64) {
    let r = registry();
    r.trace_sample.store(n, Ordering::Relaxed);
    if n == 0 {
        r.flags.fetch_and(!FLAG_TRACING, Ordering::Relaxed);
    } else {
        r.flags.fetch_or(FLAG_TRACING, Ordering::Relaxed);
    }
}

/// The current sampling rate (0 = tracing off).
pub fn trace_sampling() -> u64 {
    registry().trace_sample.load(Ordering::Relaxed)
}

/// Bound each shard's completed-trace ring to `cap` entries (min 1).
pub fn set_trace_ring_capacity(cap: usize) {
    registry()
        .trace_ring_cap
        .store(cap.max(1) as u64, Ordering::Relaxed);
}

/// Drop every completed trace.
pub fn clear_traces() {
    registry().traces.lock().clear();
}

/// Is a request trace being recorded on this thread right now? Callers
/// use this to gate allocation-heavy annotation work.
pub fn trace_recording() -> bool {
    flags() & FLAG_TRACING != 0 && TRACE_ACTIVE.with(|a| a.get())
}

/// The id of the trace being recorded on this thread, or 0. Recorded
/// into `gisui::TraceRecord` so explanation entries and obs traces
/// cross-link both ways.
pub fn current_trace_id() -> u64 {
    if flags() & FLAG_TRACING == 0 {
        return 0;
    }
    TRACE.with(|t| t.borrow().as_ref().map_or(0, |tr| tr.trace_id))
}

/// The current trace id if the trace passed sampling (exemplar source).
fn sampled_trace_id() -> u64 {
    if flags() & FLAG_TRACING == 0 {
        return 0;
    }
    SAMPLED_ID.with(|s| s.get())
}

/// Mark the current trace as having observed a fault or degradation: it
/// is retained even when the sampler did not pick it.
pub fn trace_mark_fault() {
    if flags() & FLAG_TRACING == 0 {
        return;
    }
    TRACE.with(|t| {
        if let Some(tr) = t.borrow_mut().as_mut() {
            tr.fault = true;
        }
    });
}

/// Attach `key=value` to the innermost open span of the current trace.
pub fn trace_annotate(key: &str, value: impl Into<String>) {
    if flags() & FLAG_TRACING == 0 {
        return;
    }
    TRACE.with(|t| {
        if let Some(tr) = t.borrow_mut().as_mut() {
            if let Some(&i) = tr.open.last() {
                tr.spans[i].annotations.push(Annotation {
                    key: key.to_string(),
                    value: value.into(),
                });
            }
        }
    });
}

/// Record an instantaneous event as a zero-duration child span of the
/// current open span. No-op unless a trace is being recorded here.
pub fn trace_event(name: &'static str, annotations: &[(&str, &str)]) {
    if flags() & FLAG_TRACING == 0 {
        return;
    }
    TRACE.with(|t| {
        if let Some(tr) = t.borrow_mut().as_mut() {
            let parent = tr.open.last().map_or(0, |&i| tr.spans[i].id);
            let start_ns = tr.started.elapsed().as_nanos() as u64;
            let id = tr.next_span_id();
            tr.spans.push(TraceSpan {
                id,
                parent,
                name,
                start_ns,
                dur_ns: 0,
                annotations: annotations
                    .iter()
                    .map(|&(k, v)| Annotation {
                        key: k.to_string(),
                        value: v.to_string(),
                    })
                    .collect(),
            });
        }
    });
}

/// Open a trace node. `at` is the already-taken timestamp of the
/// enclosing [`SpanGuard`], so the metrics and trace paths share one
/// clock read; `None` (metrics off, or trace-only children) reads the
/// clock here.
fn trace_open_span(name: &'static str, at: Option<Instant>) -> bool {
    TRACE.with(|t| {
        let mut t = t.borrow_mut();
        let Some(tr) = t.as_mut() else { return false };
        let parent = tr.open.last().map_or(0, |&i| tr.spans[i].id);
        let start_ns = match at {
            Some(now) => now.saturating_duration_since(tr.started).as_nanos() as u64,
            None => tr.started.elapsed().as_nanos() as u64,
        };
        let id = tr.next_span_id();
        tr.spans.push(TraceSpan {
            id,
            parent,
            name,
            start_ns,
            dur_ns: 0,
            annotations: Vec::new(),
        });
        let i = tr.spans.len() - 1;
        tr.open.push(i);
        true
    })
}

/// Close the innermost open trace node named `name`. `dur_ns` is the
/// duration the enclosing [`SpanGuard`] already measured; `None` derives
/// it from the trace clock.
fn trace_close_span(name: &str, dur_ns: Option<u64>) {
    TRACE.with(|t| {
        if let Some(tr) = t.borrow_mut().as_mut() {
            if let Some(pos) = tr.open.iter().rposition(|&i| tr.spans[i].name == name) {
                let i = tr.open.remove(pos);
                let dur = dur_ns.unwrap_or_else(|| {
                    let now = tr.started.elapsed().as_nanos() as u64;
                    now.saturating_sub(tr.spans[i].start_ns)
                });
                tr.spans[i].dur_ns = dur.max(1);
            }
        }
    });
}

/// A trace-only child span: joins the current trace without recording a
/// metrics histogram (used for per-cascade / per-deferred-firing nodes
/// whose cardinality would pollute the registry).
pub struct TraceChildGuard {
    name: &'static str,
    traced: bool,
}

/// Open a trace-only child span. Inert unless a trace is being recorded.
pub fn trace_child(name: &'static str) -> TraceChildGuard {
    let traced = flags() & FLAG_TRACING != 0 && trace_open_span(name, None);
    TraceChildGuard { name, traced }
}

impl Drop for TraceChildGuard {
    fn drop(&mut self) {
        if self.traced {
            trace_close_span(self.name, None);
        }
    }
}

/// The root guard of a request trace. Field order matters: the span
/// closes before the committer runs, so the root span's duration is in
/// the tree and the exemplar capture still sees the trace.
pub struct TraceGuard {
    span: Option<SpanGuard>,
    owns_trace: bool,
}

/// Open a request-boundary span, starting a new trace when sampling is
/// armed and no trace is active on this thread yet. The guard behaves
/// exactly like [`span`] (metrics histogram included); when it started
/// the trace, dropping it commits the completed tree to the owning
/// shard's ring — if the sampler picked the request or a fault was
/// marked — and discards it otherwise.
///
/// Nested calls (a server batch that drives dispatcher requests) do not
/// start a second trace: the inner guard degrades to a metrics-only
/// span and adds no node to the enclosing tree — the nested boundary
/// *is* the same request, and the layers below it (`dispatcher.*`,
/// `engine.*`, `db.*`) still join as children of the outer root.
pub fn trace_root(name: &'static str) -> TraceGuard {
    let f = flags();
    if f == 0 {
        return TraceGuard {
            span: None,
            owns_trace: false,
        };
    }
    if f & FLAG_TRACING != 0 && TRACE_ACTIVE.with(|a| a.get()) {
        // Nested request boundary under a live trace: metrics only.
        let span = if f & FLAG_METRICS != 0 {
            Some(metrics_span(name))
        } else {
            None
        };
        return TraceGuard {
            span,
            owns_trace: false,
        };
    }
    let mut owns_trace = false;
    if f & FLAG_TRACING != 0 {
        owns_trace = TRACE.with(|t| {
            let mut t = t.borrow_mut();
            if t.is_some() {
                return false;
            }
            let trace_id = next_id();
            let n = registry().trace_sample.load(Ordering::Relaxed);
            let sampled = n <= 1 || trace_id.is_multiple_of(n);
            if sampled {
                SAMPLED_ID.with(|s| s.set(trace_id));
            }
            TRACE_ACTIVE.with(|a| a.set(true));
            let spans = registry()
                .span_pool
                .lock()
                .pop()
                .map(|mut v| {
                    v.clear();
                    v
                })
                .unwrap_or_else(|| Vec::with_capacity(64));
            *t = Some(ActiveTrace {
                trace_id,
                sampled,
                fault: false,
                shard: current_shard(),
                started: Instant::now(),
                span_seq: 0,
                spans,
                open: Vec::with_capacity(8),
            });
            true
        });
    }
    TraceGuard {
        span: Some(span(name)),
        owns_trace,
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        // Close the root span first so its duration lands in the tree.
        self.span.take();
        if self.owns_trace {
            commit_trace();
        }
    }
}

fn commit_trace() {
    let Some(mut tr) = TRACE.with(|t| t.borrow_mut().take()) else {
        return;
    };
    SAMPLED_ID.with(|s| s.set(0));
    TRACE_ACTIVE.with(|a| a.set(false));
    // Close any spans left open by unwinding.
    let now = tr.started.elapsed().as_nanos() as u64;
    for &i in &tr.open {
        tr.spans[i].dur_ns = now.saturating_sub(tr.spans[i].start_ns).max(1);
    }
    tr.open.clear();
    let r = registry();
    if !(tr.sampled || tr.fault) {
        recycle_spans(r, tr.spans);
        return;
    }
    let tree = TraceTree {
        trace_id: tr.trace_id,
        trace_id_hex: trace_id_hex(tr.trace_id),
        shard: tr.shard,
        sampled: tr.sampled,
        fault: tr.fault,
        total_ns: now,
        seq: r.trace_commits.fetch_add(1, Ordering::Relaxed),
        spans: tr.spans,
    };
    let cap = r.trace_ring_cap.load(Ordering::Relaxed) as usize;
    let mut rings = r.traces.lock();
    let ring = rings.entry(tree.shard).or_default();
    ring.push_back(tree);
    while ring.len() > cap {
        if let Some(evicted) = ring.pop_front() {
            recycle_spans(r, evicted.spans);
        }
    }
}

/// Return a retired span buffer to the pool (bounded; excess is freed).
fn recycle_spans(r: &Registry, mut spans: Vec<TraceSpan>) {
    if spans.capacity() == 0 {
        return;
    }
    let mut pool = r.span_pool.lock();
    if pool.len() < SPAN_POOL_CAP {
        spans.clear();
        pool.push(spans);
    }
}

/// The most recent `n` completed traces across all shards, newest first.
pub fn recent_traces(n: usize) -> Vec<TraceTree> {
    let rings = registry().traces.lock();
    let mut all: Vec<TraceTree> = rings.values().flat_map(|r| r.iter().cloned()).collect();
    all.sort_by_key(|t| std::cmp::Reverse(t.seq));
    all.truncate(n);
    all
}

/// Look up a completed trace by id.
pub fn find_trace(id: u64) -> Option<TraceTree> {
    let rings = registry().traces.lock();
    rings
        .values()
        .flat_map(|r| r.iter())
        .find(|t| t.trace_id == id)
        .cloned()
}

/// JSON export of the most recent `n` traces (newest first).
pub fn traces_json(n: usize) -> String {
    serde_json::to_string_pretty(&recent_traces(n)).expect("traces serialize")
}

/// `(shard, retained traces)` per shard ring — the ring-bound invariant
/// the observability tests assert.
pub fn shard_trace_counts() -> Vec<(u64, usize)> {
    registry()
        .traces
        .lock()
        .iter()
        .map(|(&s, r)| (s, r.len()))
        .collect()
}

// ---------------------------------------------------------------------------
// Snapshot & exporters
// ---------------------------------------------------------------------------

/// The exemplar attached to a histogram: the highest-valued observation
/// made while a sampled trace was recording, and that trace's id.
#[derive(Debug, Clone, Serialize)]
pub struct Exemplar {
    /// In the histogram's own unit (nanoseconds for latency series).
    pub value: f64,
    pub trace_id: String,
}

/// Percentile summary of one histogram, in the histogram's own unit.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSummary {
    pub unit: Unit,
    pub count: u64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
    pub mean: f64,
    pub sum: f64,
    pub exemplar: Option<Exemplar>,
}

/// One span's registry entry: how often it opened and under which
/// parent spans it was observed.
#[derive(Debug, Clone, Serialize)]
pub struct SpanSummary {
    pub count: u64,
    pub parents: Vec<String>,
}

/// Point-in-time copy of the whole registry, `serde::Serialize`.
/// Labeled series appear under their canonical key (`name{k="v"}`).
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSnapshot {
    pub enabled: bool,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
    pub spans: BTreeMap<String, SpanSummary>,
}

/// Split a canonical series key into `(base name, label body)`.
fn split_series(key: &str) -> (&str, Option<&str>) {
    match key.find('{') {
        Some(i) => (&key[..i], Some(&key[i + 1..key.len() - 1])),
        None => (key, None),
    }
}

/// Escape a Prometheus label value (`\` → `\\`, `"` → `\"`, newline →
/// `\n`).
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape Prometheus HELP text (`\` → `\\`, newline → `\n`).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Re-emit a canonical label body with values escaped, optionally with
/// an extra label appended (the summary `quantile`).
fn render_labels(body: Option<&str>, extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<(String, String)> = Vec::new();
    if let Some(body) = body {
        for pair in body.split(',') {
            if let Some((k, v)) = pair.split_once("=\"") {
                pairs.push((k.to_string(), v.trim_end_matches('"').to_string()));
            }
        }
    }
    if let Some((k, v)) = extra {
        pairs.push((k.to_string(), v.to_string()));
    }
    if pairs.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

impl MetricsSnapshot {
    /// Counter value, 0 when never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, 0 when never set.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Sum of a counter family: the unlabeled series plus every labeled
    /// series sharing the base name.
    pub fn counter_family(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| split_series(k).0 == name)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Does any counter or histogram under `subsystem.` have activity?
    pub fn subsystem_active(&self, subsystem: &str) -> bool {
        let prefix = format!("{subsystem}.");
        self.counters
            .iter()
            .any(|(k, &v)| k.starts_with(&prefix) && v > 0)
            || self
                .histograms
                .iter()
                .any(|(k, h)| k.starts_with(&prefix) && h.count > 0)
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Prometheus text exposition format (version 0.0.4, with
    /// OpenMetrics-style exemplars). Counters export as `_total`
    /// counters, nanosecond histograms as `_seconds` summaries,
    /// dimensionless ones as plain summaries. Each family gets one
    /// `# HELP` and one `# TYPE` line; labeled series render as
    /// `name{label="value"}` with label values escaped; a histogram's
    /// exemplar rides on its p99 quantile line as
    /// `… # {trace_id="<hex>"} <value>`.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        /// Round away unit-scaling float noise (1.0000000000000002e-6
        /// → `0.000001`) so sample values stay clean.
        fn fmt_sample(v: f64) -> String {
            format!("{}", (v * 1e12).round() / 1e12)
        }
        let mut out = String::new();

        // Group counter series by base name so HELP/TYPE emit once per
        // family even when labeled and unlabeled series coexist.
        let mut counter_families: BTreeMap<&str, Vec<(Option<&str>, u64)>> = BTreeMap::new();
        for (key, &v) in &self.counters {
            let (base, labels) = split_series(key);
            counter_families.entry(base).or_default().push((labels, v));
        }
        for (base, series) in counter_families {
            let n = format!("activegis_{}_total", sanitize(base));
            let _ = writeln!(out, "# HELP {n} {} (counter)", escape_help(base));
            let _ = writeln!(out, "# TYPE {n} counter");
            for (labels, v) in series {
                let _ = writeln!(out, "{n}{} {v}", render_labels(labels, None));
            }
        }

        let mut gauge_families: BTreeMap<&str, Vec<(Option<&str>, u64)>> = BTreeMap::new();
        for (key, &v) in &self.gauges {
            let (base, labels) = split_series(key);
            gauge_families.entry(base).or_default().push((labels, v));
        }
        for (base, series) in gauge_families {
            let n = format!("activegis_{}", sanitize(base));
            let _ = writeln!(out, "# HELP {n} {} (gauge)", escape_help(base));
            let _ = writeln!(out, "# TYPE {n} gauge");
            for (labels, v) in series {
                let _ = writeln!(out, "{n}{} {v}", render_labels(labels, None));
            }
        }

        let mut hist_families: BTreeMap<&str, Vec<(Option<&str>, &HistogramSummary)>> =
            BTreeMap::new();
        for (key, h) in &self.histograms {
            let (base, labels) = split_series(key);
            hist_families.entry(base).or_default().push((labels, h));
        }
        for (base, series) in hist_families {
            let unit = series[0].1.unit;
            let (n, scale) = match unit {
                Unit::Nanos => (format!("activegis_{}_seconds", sanitize(base)), 1e-9),
                Unit::Count => (format!("activegis_{}", sanitize(base)), 1.0),
            };
            let _ = writeln!(out, "# HELP {n} {} (summary)", escape_help(base));
            let _ = writeln!(out, "# TYPE {n} summary");
            for (labels, h) in series {
                for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                    let lbl = render_labels(labels, Some(("quantile", q)));
                    let exemplar = match (&h.exemplar, q) {
                        (Some(e), "0.99") => format!(
                            " # {{trace_id=\"{}\"}} {}",
                            e.trace_id,
                            fmt_sample(e.value * scale)
                        ),
                        _ => String::new(),
                    };
                    let _ = writeln!(out, "{n}{lbl} {}{exemplar}", fmt_sample(v * scale));
                }
                let plain = render_labels(labels, None);
                let _ = writeln!(out, "{n}_sum{plain} {}", fmt_sample(h.sum * scale));
                let _ = writeln!(out, "{n}_count{plain} {}", h.count);
            }
        }
        out
    }
}

/// Copy the registry into an exportable snapshot.
pub fn snapshot() -> MetricsSnapshot {
    let r = registry();
    let counters = r
        .counters
        .read()
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    let gauges = r
        .gauges
        .read()
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    let histograms = r
        .histograms
        .read()
        .iter()
        .map(|(k, h)| (k.clone(), h.lock().summary()))
        .collect();
    let spans = r
        .spans
        .read()
        .iter()
        .map(|(k, s)| {
            (
                k.clone(),
                SpanSummary {
                    count: s.count,
                    parents: s.parents.iter().cloned().collect(),
                },
            )
        })
        .collect();
    MetricsSnapshot {
        enabled: enabled(),
        counters,
        gauges,
        histograms,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry (and the enabled switch) is process-global, so the
    /// tests serialize on one lock and each uses its own metric names.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_accumulate_and_snapshot() {
        let _g = TEST_LOCK.lock();
        let c = counter("test.hits");
        c.add(2);
        c.incr();
        counter_add("test.hits", 1);
        let snap = snapshot();
        assert!(snap.counter("test.hits") >= 4);
        assert_eq!(snap.counter("test.never"), 0);
        assert!(snap.subsystem_active("test"));
        assert!(!snap.subsystem_active("no_such_subsystem"));
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let _g = TEST_LOCK.lock();
        gauge_set("test.level", 5);
        gauge_set("test.level", 3);
        assert_eq!(gauge_get("test.level"), 3);
        let snap = snapshot();
        assert_eq!(snap.gauge("test.level"), 3);
        assert_eq!(snap.gauge("test.unset"), 0);
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE activegis_test_level gauge"));
        assert!(prom.contains("activegis_test_level 3"));
    }

    #[test]
    fn labeled_counters_form_families() {
        let _g = TEST_LOCK.lock();
        counter_add_labeled("testlbl.requests", &[("shard", "0")], 2);
        counter_add_labeled("testlbl.requests", &[("shard", "1")], 3);
        counter_add_labeled(
            "testlbl.requests",
            &[("shard", "0"), ("degraded", "true")],
            1,
        );
        let snap = snapshot();
        assert_eq!(snap.counter("testlbl.requests{shard=\"0\"}"), 2);
        assert_eq!(snap.counter("testlbl.requests{shard=\"1\"}"), 3);
        // Keys canonicalize with sorted label names.
        assert_eq!(
            snap.counter("testlbl.requests{degraded=\"true\",shard=\"0\"}"),
            1
        );
        assert_eq!(snap.counter_family("testlbl.requests"), 6);
    }

    #[test]
    fn histogram_quantiles_are_ordered() {
        let _g = TEST_LOCK.lock();
        let h = histogram("test.latency", Unit::Nanos);
        for i in 1..=1000u64 {
            h.record(i * 100);
        }
        let snap = snapshot();
        let s = &snap.histograms["test.latency"];
        assert_eq!(s.count, 1000);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!((s.max - 100_000.0).abs() < 1.0);
        assert!(s.mean > 0.0);
    }

    #[test]
    fn spans_record_latency_and_hierarchy() {
        let _g = TEST_LOCK.lock();
        {
            let _outer = span("test_span.outer");
            let _inner = span("test_span.inner");
        }
        let snap = snapshot();
        assert!(snap.histograms["test_span.outer"].count >= 1);
        assert!(snap.histograms["test_span.inner"].count >= 1);
        assert!(snap.spans["test_span.inner"]
            .parents
            .contains(&"test_span.outer".to_string()));
    }

    #[test]
    fn disabled_hooks_are_inert() {
        let _g = TEST_LOCK.lock();
        let c = counter("test.gated");
        set_enabled(false);
        c.add(10);
        record_value("test.gated_hist", 5);
        {
            let _s = span("test.gated_span");
        }
        set_enabled(true);
        let snap = snapshot();
        assert_eq!(snap.counter("test.gated"), 0);
        assert!(snap
            .histograms
            .get("test.gated_hist")
            .is_none_or(|h| h.count == 0));
    }

    #[test]
    fn prometheus_export_is_line_parseable() {
        let _g = TEST_LOCK.lock();
        counter_add("test.prom_hits", 3);
        record_nanos("test.prom_latency", 1500);
        let text = snapshot().to_prometheus();
        assert!(text.contains("activegis_test_prom_hits_total 3"));
        assert!(text.contains("activegis_test_prom_latency_seconds{quantile=\"0.5\"}"));
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let sample = line.split(" # ").next().unwrap();
            let (name, value) = sample.rsplit_once(' ').expect("name value pair");
            assert!(!name.is_empty());
            value.parse::<f64>().expect("numeric sample value");
        }
    }

    #[test]
    fn prometheus_golden_output() {
        // Built by hand, not from the global registry, so the expected
        // text is exact: label escaping, one HELP/TYPE per family,
        // `_total` on counters, exemplars on the p99 line.
        let mut counters = BTreeMap::new();
        counters.insert("srv.requests".to_string(), 7u64);
        counters.insert("srv.requests{shard=\"0\"}".to_string(), 4u64);
        counters.insert("srv.requests{shard=\"a\\b\"}".to_string(), 3u64);
        let mut histograms = BTreeMap::new();
        histograms.insert(
            "srv.lat".to_string(),
            HistogramSummary {
                unit: Unit::Nanos,
                count: 2,
                p50: 1000.0,
                p95: 2000.0,
                p99: 2000.0,
                max: 2000.0,
                mean: 1500.0,
                sum: 3000.0,
                exemplar: Some(Exemplar {
                    value: 2000.0,
                    trace_id: "00000000deadbeef".to_string(),
                }),
            },
        );
        let snap = MetricsSnapshot {
            enabled: true,
            counters,
            histograms,
            spans: BTreeMap::new(),
            gauges: BTreeMap::new(),
        };
        let expected = "\
# HELP activegis_srv_requests_total srv.requests (counter)
# TYPE activegis_srv_requests_total counter
activegis_srv_requests_total 7
activegis_srv_requests_total{shard=\"0\"} 4
activegis_srv_requests_total{shard=\"a\\\\b\"} 3
# HELP activegis_srv_lat_seconds srv.lat (summary)
# TYPE activegis_srv_lat_seconds summary
activegis_srv_lat_seconds{quantile=\"0.5\"} 0.000001
activegis_srv_lat_seconds{quantile=\"0.95\"} 0.000002
activegis_srv_lat_seconds{quantile=\"0.99\"} 0.000002 # {trace_id=\"00000000deadbeef\"} 0.000002
activegis_srv_lat_seconds_sum 0.000003
activegis_srv_lat_seconds_count 2
";
        assert_eq!(snap.to_prometheus(), expected);
    }

    #[test]
    fn json_snapshot_round_trips() {
        let _g = TEST_LOCK.lock();
        counter_add("test.json_hits", 1);
        let json = snapshot().to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(v["counters"]["test.json_hits"].as_u64().unwrap() >= 1);
    }

    #[test]
    fn trace_root_records_a_causal_tree() {
        let _g = TEST_LOCK.lock();
        reset();
        set_enabled(true);
        set_trace_sampling(1);
        set_shard(0);
        {
            let _root = trace_root("test_tr.request");
            let _child = span("test_tr.inner");
            trace_annotate("k", "v");
            trace_event("test_tr.leaf", &[("epoch", "3")]);
        }
        let traces = recent_traces(4);
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert!(t.sampled && !t.fault);
        let names: Vec<&str> = t.spans.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["test_tr.request", "test_tr.inner", "test_tr.leaf"]
        );
        // Causal links: exactly one root, every parent id exists.
        let ids: std::collections::BTreeSet<u64> = t.spans.iter().map(|s| s.id).collect();
        assert_eq!(t.spans.iter().filter(|s| s.parent == 0).count(), 1);
        for s in t.spans.iter().filter(|s| s.parent != 0) {
            assert!(ids.contains(&s.parent), "dangling parent in {t:?}");
        }
        assert_eq!(t.spans[1].annotations[0].key, "k");
        assert!(find_trace(t.trace_id).is_some());
        assert!(t.render().contains("test_tr.inner"));
        // JSON export carries the span list.
        let v: serde_json::Value = serde_json::from_str(&t.to_json()).unwrap();
        assert_eq!(v["spans"][0]["name"].as_str(), Some("test_tr.request"));
        set_trace_sampling(0);
    }

    #[test]
    fn unsampled_traces_are_kept_only_on_fault() {
        let _g = TEST_LOCK.lock();
        reset();
        set_enabled(true);
        // Astronomically unlikely to sample anything.
        set_trace_sampling(u64::MAX);
        {
            let _root = trace_root("test_drop.request");
        }
        assert!(recent_traces(8).is_empty(), "unsampled trace dropped");
        {
            let _root = trace_root("test_keep.request");
            trace_mark_fault();
        }
        let traces = recent_traces(8);
        assert_eq!(traces.len(), 1);
        assert!(traces[0].fault && !traces[0].sampled);
        set_trace_sampling(0);
    }

    #[test]
    fn shard_rings_stay_bounded() {
        let _g = TEST_LOCK.lock();
        reset();
        set_enabled(true);
        set_trace_sampling(1);
        set_trace_ring_capacity(3);
        set_shard(7);
        for _ in 0..10 {
            let _root = trace_root("test_ring.request");
        }
        for (shard, len) in shard_trace_counts() {
            assert!(len <= 3, "shard {shard} ring over bound: {len}");
        }
        set_shard(0);
        set_trace_sampling(0);
    }

    #[test]
    fn exemplar_lands_on_histograms_and_export() {
        let _g = TEST_LOCK.lock();
        reset();
        set_enabled(true);
        set_trace_sampling(1);
        let id = {
            let _root = trace_root("test_ex.request");
            record_nanos("test_ex.lat", 5000);
            current_trace_id()
        };
        assert_ne!(id, 0);
        let snap = snapshot();
        let ex = snap.histograms["test_ex.lat"].exemplar.as_ref().unwrap();
        assert_eq!(ex.trace_id, trace_id_hex(id));
        assert!(snap
            .to_prometheus()
            .contains(&format!("# {{trace_id=\"{}\"}}", trace_id_hex(id))));
        set_trace_sampling(0);
    }

    #[test]
    fn trace_ids_parse_back() {
        assert_eq!(parse_trace_id("00000000deadbeef"), Some(0xdead_beef));
        assert_eq!(parse_trace_id("0xdeadbeef"), Some(0xdead_beef));
        assert_eq!(parse_trace_id("not an id"), None);
    }
}
