//! Context specificity across many users.
//!
//! The paper: "we can define progressively more restrictive context
//! conditions such as a rule for generic users, for a particular category
//! of users, and for a particular user within the category" — and per
//! event "only one rule is selected for execution, the one which has the
//! highest priority … the most specific rule."
//!
//! This example installs a three-level program (generic / category /
//! user), logs in three users, and shows that each gets a different
//! Class-set window for the *same* gesture — with the shadowed rules
//! visible in the explanation trace.
//!
//! Run with: `cargo run --example multi_user`

use activegis::{ActiveGis, TelecomConfig};

const LADDER_PROGRAM: &str = "
# Level 1: everyone sees poles as plain points.
For application pole_manager
  schema phone_net display as default
  class Pole display presentation as pointFormat

# Level 2: planners get the class initial as map symbol.
For category planner application pole_manager
  schema phone_net display as default
  class Pole display presentation as symbolFormat

# Level 3: juliano personally gets the slider control and a Null schema.
For user juliano application pole_manager
  schema phone_net display as Null
  class Pole display
    control as poleWidget
    presentation as pointFormat
";

fn main() {
    let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).expect("demo database builds");
    let rules = gis
        .customize(LADDER_PROGRAM, "ladder")
        .expect("ladder program installs");
    println!("installed {rules} rules across three specificity levels\n");

    // Same application, three users of increasing specificity.
    let users = [
        ("guest", "visitor", "matches only the generic rule"),
        (
            "paula",
            "planner",
            "matches generic + category; category wins",
        ),
        ("juliano", "planner", "matches all three; user rule wins"),
    ];
    for (user, category, note) in users {
        println!("=== {user} ({category}) — {note} ===\n");
        let sid = gis.login(user, category, "pole_manager");
        let windows = gis.browse_schema(sid, "phone_net").expect("browses");
        // For juliano the schema window is hidden and Pole auto-opens;
        // for the others, open Pole explicitly.
        let class_win = if windows.len() > 1 {
            windows[1]
        } else {
            gis.browse_class(sid, "phone_net", "Pole").expect("opens")
        };
        println!("{}", gis.render(class_win).unwrap());
    }

    println!("=== explanation: note the `shadowed:` rules ===\n");
    for line in gis.explanation() {
        println!("{line}\n");
    }
}
