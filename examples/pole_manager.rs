//! The paper's Section 4 walkthrough, end to end.
//!
//! Reproduces every artifact of the worked example:
//!
//! * Fig. 5 — the `Pole` class schema (printed from the catalog);
//! * Fig. 6 — the verbatim customization program and the rules it
//!   compiles to (R1, R2, R3);
//! * Fig. 4 — the default Schema / Class-set / Instance windows;
//! * Fig. 7 — the customized Class-set and Instance windows for the
//!   context `<user juliano, application pole_manager>`.
//!
//! Run with:
//!   cargo run --example pole_manager             # full walkthrough
//!   cargo run --example pole_manager -- --rules  # just the rules
//!   cargo run --example pole_manager -- --svg DIR  # also write SVGs

use activegis::{ActiveGis, Oid, TelecomConfig, FIG6_PROGRAM};

fn print_fig5(gis: &mut ActiveGis) {
    println!("--- Fig. 5: database schema for class Pole ---\n");
    let snap = gis.dispatcher().snapshot();
    let pole = snap
        .catalog()
        .class("phone_net", "Pole")
        .expect("Pole exists");
    println!("Class Pole {{");
    for attr in &pole.attrs {
        println!("  {}: {};", attr.name, attr.ty.name());
    }
    for m in &pole.methods {
        let params: Vec<String> = m.params.iter().map(|p| p.name()).collect();
        println!("  Methods: {}({});", m.name, params.join(", "));
    }
    println!("}}\n");
}

fn print_fig6_rules(gis: &mut ActiveGis) {
    println!("--- Fig. 6: customization program ---\n{FIG6_PROGRAM}");
    gis.customize(FIG6_PROGRAM, "fig6")
        .expect("program installs");
    println!("--- generated customization rules ---\n");
    let engine = gis.dispatcher().engine();
    for rule in engine.rules() {
        println!(
            "Rule {}\n  On {}\n  If {}\n  Then apply {} customization\n",
            rule.name,
            rule.event,
            rule.context,
            match &*rule.action {
                active::Action::Customize(c) => c.window_kind(),
                _ => "other",
            }
        );
    }
}

fn first_pole(gis: &mut ActiveGis) -> Oid {
    let poles = gis
        .dispatcher()
        .snapshot()
        .get_class("phone_net", "Pole", false)
        .expect("poles exist");
    poles[0].oid
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).expect("demo database builds");

    if args.first().map(String::as_str) == Some("--rules") {
        print_fig6_rules(&mut gis);
        return;
    }

    print_fig5(&mut gis);

    // --- Fig. 4: the default interface windows ---------------------------
    println!("--- Fig. 4: default interface windows ---\n");
    let guest = gis.login("maria", "operator", "network_browse");
    let schema_win = gis.browse_schema(guest, "phone_net").expect("browses")[0];
    println!("{}", gis.render(schema_win).unwrap());
    let class_win = gis
        .browse_class(guest, "phone_net", "Pole")
        .expect("class browses");
    println!("{}", gis.render(class_win).unwrap());
    let pole = first_pole(&mut gis);
    let inst_win = gis.inspect(guest, pole).expect("instance opens");
    println!("{}", gis.render(inst_win).unwrap());

    // --- Fig. 6: install the customization --------------------------------
    print_fig6_rules(&mut gis);

    // --- Fig. 7: the customized windows -----------------------------------
    println!("--- Fig. 7: customized interface windows (user juliano) ---\n");
    let juliano = gis.login("juliano", "planner", "pole_manager");
    let opened = gis.browse_schema(juliano, "phone_net").expect("browses");
    // opened[0] is the hidden Schema window; opened[1] the Pole window.
    println!("(Schema window hidden by `display as Null`)\n");
    println!("{}", gis.render(opened[1]).unwrap());
    let inst_win = gis.inspect(juliano, pole).expect("instance opens");
    println!("{}", gis.render(inst_win).unwrap());

    // --- optional SVG output ----------------------------------------------
    if args.first().map(String::as_str) == Some("--svg") {
        let dir = args.get(1).cloned().unwrap_or_else(|| "target/svg".into());
        std::fs::create_dir_all(&dir).expect("svg dir");
        for (name, win) in [
            ("fig4_schema", schema_win),
            ("fig4_class", class_win),
            ("fig7_class", opened[1]),
            ("fig7_instance", inst_win),
        ] {
            let svg = gis.render_svg(win).unwrap();
            let path = format!("{dir}/{name}.svg");
            std::fs::write(&path, svg).expect("svg writes");
            println!("wrote {path}");
        }
    }
}
