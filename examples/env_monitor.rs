//! Environmental-control scenario.
//!
//! The paper's introduction: "Applications of gis technologies range from
//! public utilities management to environmental control." This example
//! builds an environmental-monitoring database from scratch (vegetation
//! zones, rivers, monitoring stations), extends the widget library with a
//! gauge control, installs a per-category customization program, and runs
//! an analysis-mode query — the interaction mode the paper describes as
//! "evaluate conditions, usually via query predicates".
//!
//! Run with: `cargo run --example env_monitor`

use activegis::{
    ActiveGis, AttrType, ClassDef, CmpOp, Database, Geometry, InteractionMode, Point, Predicate,
    SchemaDef, Value,
};
use geodb::geometry::{Polygon, Polyline};

/// Build the `env_monitor` schema and a small dataset.
fn build_database() -> Database {
    let mut db = Database::new("ENV");
    db.register_schema(
        SchemaDef::new("env")
            .class(
                ClassDef::new("VegetationZone")
                    .attr("zone_name", AttrType::Text)
                    .attr("vegetation_type", AttrType::Text)
                    .attr("area_boundary", AttrType::Geometry)
                    .doc("Vegetation coverage polygon"),
            )
            .class(
                ClassDef::new("River")
                    .attr("river_name", AttrType::Text)
                    .attr("course", AttrType::Geometry)
                    .doc("Watercourse polyline"),
            )
            .class(
                ClassDef::new("Station")
                    .attr("station_code", AttrType::Text)
                    .attr("pollutant_ppm", AttrType::Float)
                    .attr("position", AttrType::Geometry)
                    .doc("Air/water quality monitoring station"),
            ),
    )
    .expect("schema registers");

    // Vegetation zones.
    for (name, veg, x) in [
        ("Mata Norte", "forest", 0.0),
        ("Cerrado Sul", "savanna", 60.0),
    ] {
        let ring = vec![
            Point::new(x, 0.0),
            Point::new(x + 50.0, 0.0),
            Point::new(x + 50.0, 40.0),
            Point::new(x, 40.0),
        ];
        db.insert(
            "env",
            "VegetationZone",
            vec![
                ("zone_name".into(), name.into()),
                ("vegetation_type".into(), veg.into()),
                (
                    "area_boundary".into(),
                    Geometry::Polygon(Polygon::new(ring).expect("ring valid")).into(),
                ),
            ],
        )
        .expect("zone inserts");
    }
    // A river crossing both zones.
    db.insert(
        "env",
        "River",
        vec![
            ("river_name".into(), "Rio Piracicaba".into()),
            (
                "course".into(),
                Geometry::Polyline(
                    Polyline::new(vec![
                        Point::new(-5.0, 20.0),
                        Point::new(40.0, 25.0),
                        Point::new(80.0, 15.0),
                        Point::new(115.0, 22.0),
                    ])
                    .expect("polyline valid"),
                )
                .into(),
            ),
        ],
    )
    .expect("river inserts");
    // Monitoring stations with varying pollution readings.
    for (code, ppm, x, y) in [
        ("ST-01", 12.0, 10.0, 18.0),
        ("ST-02", 48.5, 45.0, 26.0),
        ("ST-03", 95.2, 70.0, 14.0),
        ("ST-04", 22.1, 100.0, 20.0),
    ] {
        db.insert(
            "env",
            "Station",
            vec![
                ("station_code".into(), code.into()),
                ("pollutant_ppm".into(), Value::Float(ppm)),
                ("position".into(), Geometry::Point(Point::new(x, y)).into()),
            ],
        )
        .expect("station inserts");
    }
    db.drain_events();
    db
}

/// Customization program: field ecologists see zones as polygons and a
/// gauge for stations; lab analysts prefer tabular station listings.
const ENV_PROGRAM: &str = "
For category ecologist application env_monitor
  schema env display as hierarchy
  class VegetationZone display presentation as polygonFormat
  class Station display
    control as gauge
    presentation as symbolFormat

For category analyst application env_monitor
  schema env display as default
  class Station display presentation as tableFormat
    instances
      display attribute position as Null
      display attribute pollutant_ppm as gauge
";

fn main() {
    let mut gis = ActiveGis::open(build_database());
    // Extend the interface-objects library with a gauge widget (a
    // specialized slider panel).
    gis.define_widget(
        "gauge",
        "Panel",
        vec![
            ("style".into(), "slider".into()),
            ("title".into(), "level".into()),
        ],
    )
    .expect("gauge defines");

    let rules = gis.customize(ENV_PROGRAM, "env").expect("program installs");
    println!("installed {rules} customization rules\n");

    // --- An ecologist browsing zones and stations -------------------------
    println!("=== ecologist view ===\n");
    let eco = gis.login("ana", "ecologist", "env_monitor");
    let schema_win = gis.browse_schema(eco, "env").expect("browses")[0];
    println!("{}", gis.render(schema_win).unwrap());
    let zones = gis.browse_class(eco, "env", "VegetationZone").unwrap();
    println!("{}", gis.render(zones).unwrap());
    let stations = gis.browse_class(eco, "env", "Station").unwrap();
    println!("{}", gis.render(stations).unwrap());

    // --- An analyst in analysis mode: which stations exceed 40 ppm? -------
    println!("=== analyst view: stations with pollutant_ppm > 40 ===\n");
    let lab = gis.login("bruno", "analyst", "env_monitor");
    gis.set_mode(lab, InteractionMode::Analysis).unwrap();
    let hot = Predicate::cmp("pollutant_ppm", CmpOp::Gt, 40.0);
    let win = gis
        .dispatcher()
        .analysis_query(lab, "env", "Station", &hot)
        .expect("analysis query runs");
    println!("{}", gis.render(win).unwrap());

    println!("=== explanation ===\n");
    for line in gis.explanation() {
        println!("{line}");
    }
}
