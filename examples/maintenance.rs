//! Network maintenance: updates, constraint rules and live view refresh.
//!
//! The paper confines its prototype to the exploratory mode but points at
//! the rest of the design space: integrity rules "during spatial data
//! entry and updates" (their topological-constraint prototype [11]) and
//! the view-refresh style of active interfaces it contrasts itself with
//! (Diaz et al. [3]). This example exercises both on our substrate:
//!
//! 1. a viewer session keeps a customized Pole window open;
//! 2. a maintenance session (analysis mode) relocates a pole;
//! 3. an integrity rule audits the update event;
//! 4. the viewer's window refreshes — still customized.
//!
//! Run with: `cargo run --example maintenance`

use std::sync::{Arc, Mutex};

use activegis::{
    ActiveGis, EventPattern, Geometry, InteractionMode, Point, Rule, TelecomConfig, Value,
    FIG6_PROGRAM,
};
use geodb::query::DbEventKind;

fn main() {
    let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).expect("demo database builds");
    gis.customize(FIG6_PROGRAM, "fig6")
        .expect("program installs");

    // An audit rule on update events (integrity rule family).
    let audit: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let audit2 = audit.clone();
    gis.dispatcher()
        .engine()
        .add_rule(Rule::integrity(
            "audit_pole_updates",
            EventPattern::db(DbEventKind::Update),
            Arc::new(move |event, ctx| {
                audit2
                    .lock()
                    .unwrap()
                    .push(format!("{} by {}", event.describe(), ctx.user));
                vec![]
            }),
        ))
        .expect("audit rule installs");

    // Viewer: juliano keeps his customized Pole window open.
    let juliano = gis.login("juliano", "planner", "pole_manager");
    let windows = gis.browse_schema(juliano, "phone_net").expect("browses");
    let pole_window = windows[1];
    println!("=== juliano's window before maintenance ===\n");
    println!("{}", gis.render(pole_window).unwrap());

    // Maintenance: relocate the first pole far north-east.
    let maint = gis.login("maria", "technician", "maintenance");
    gis.set_mode(maint, InteractionMode::Analysis).unwrap();
    let poles = gis
        .dispatcher()
        .snapshot()
        .get_class("phone_net", "Pole", false)
        .unwrap();
    let oid = poles[0].oid;
    let refreshed = gis
        .dispatcher()
        .apply_update(
            maint,
            oid,
            vec![
                ("pole_type".into(), Value::Int(4)),
                (
                    "pole_location".into(),
                    Geometry::Point(Point::new(900.0, 900.0)).into(),
                ),
            ],
        )
        .expect("update applies");
    println!(
        "=== maintenance: moved pole {oid}; {} open window(s) refreshed ===\n",
        refreshed.len()
    );

    println!("=== juliano's window after maintenance (auto-refreshed) ===\n");
    println!("{}", gis.render(pole_window).unwrap());

    println!("=== audit log (integrity rules) ===\n");
    for line in audit.lock().unwrap().iter() {
        println!("{line}");
    }
}
