//! Quickstart: the whole system in ~60 lines.
//!
//! Builds the paper's telephone-network database, browses it with the
//! generic interface, installs the Fig. 6 customization program, and
//! shows how the same interaction now produces the customized interface —
//! printing the rule-firing trace that explains why.
//!
//! Run with: `cargo run --example quickstart`

use activegis::{ActiveGis, TelecomConfig, FIG6_PROGRAM};

fn main() {
    let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).expect("demo database builds");

    // --- 1. The generic (default) interface -----------------------------
    println!("=== generic interface: user `guest` ===\n");
    let guest = gis.login("guest", "visitor", "browse");
    let windows = gis
        .browse_schema(guest, "phone_net")
        .expect("schema browses");
    for &w in &windows {
        println!("{}", gis.render(w).expect("window renders"));
    }

    // --- 2. Install the paper's Fig. 6 customization program ------------
    let rules = gis
        .customize(FIG6_PROGRAM, "fig6")
        .expect("Fig. 6 program compiles");
    println!("=== installed Fig. 6 program: {rules} customization rules ===\n");

    // --- 3. The same gesture, customized for <juliano, pole_manager> ----
    println!("=== customized interface: user `juliano` ===\n");
    let juliano = gis.login("juliano", "planner", "pole_manager");
    let windows = gis
        .browse_schema(juliano, "phone_net")
        .expect("schema browses");
    for &w in &windows {
        let art = gis.render(w).expect("window renders");
        if art.is_empty() {
            println!("(Schema window built but hidden — `display as Null`)\n");
        } else {
            println!("{art}");
        }
    }

    // --- 4. Why? The active mechanism explains ---------------------------
    println!("=== explanation trace (rule firings) ===\n");
    for line in gis.explanation() {
        println!("{line}");
    }
}
